//! Collection strategies (`prop::collection`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// The length specification accepted by [`vec()`]: an exact `usize` or a
/// half-open `Range<usize>`, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange(range)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let range = &self.size.0;
        let len = if range.start + 1 >= range.end {
            range.start
        } else {
            rng.usize_in(range.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, 1..40)` — vectors of strategy-generated
/// elements with a length in the given range (or exactly `n` for a plain
/// `usize`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
