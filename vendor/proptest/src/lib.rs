//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map` and `boxed`;
//! * range and tuple strategies, [`Just`], [`any`], `prop::collection::vec`
//!   and `prop::sample::Index`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: generation is driven by a fixed
//! per-test seed (derived from the test name), and failures panic with the
//! case number.  Each test is therefore exactly as deterministic as a
//! table-driven test, which is the property the workspace's CI relies on.
//!
//! # Shrinking
//!
//! Real proptest shrinks through its strategy tree; this shim shrinks the
//! *random stream* instead (the way Hypothesis does internally).  Every
//! `u64` a strategy draws during a case is recorded; when the case fails,
//! the recorded stream is greedily minimized — tail truncation (replaying a
//! short stream pads with zeros) and per-entry halving toward zero — while
//! the test keeps failing.  Because every strategy (including `prop_map`
//! and `prop_flat_map` compositions) derives its values from the stream,
//! and because smaller draws mean smaller integers, shorter collections and
//! range minimums, the minimized stream regenerates a minimized
//! counterexample.  The case is then re-run un-caught so the test fails
//! with the *minimized* inputs in its assertion message.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod collection;
pub mod sample;

/// `use proptest::prelude::*;` — everything a property test needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The source of randomness handed to strategies.
///
/// Either a seeded RNG that records every draw (normal generation) or a
/// replay of a recorded stream (shrinking); exhausted replays yield zeros,
/// which is what makes tail truncation a valid shrink step.
pub struct TestRng(RngSource);

enum RngSource {
    Random { rng: StdRng, record: Vec<u64> },
    Replay { stream: Vec<u64>, pos: usize },
}

impl TestRng {
    /// Creates a generator for one test, deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng(RngSource::Random {
            rng: StdRng::seed_from_u64(seed),
            record: Vec::new(),
        })
    }

    /// Creates a generator replaying a recorded stream (zeros once it is
    /// exhausted).  This is how a shrunk case is regenerated.
    pub fn replay(stream: Vec<u64>) -> Self {
        TestRng(RngSource::Replay { stream, pos: 0 })
    }

    /// One raw draw: every derived generator below goes through here, so
    /// recording and replaying this stream captures all of generation.
    fn raw(&mut self) -> u64 {
        match &mut self.0 {
            RngSource::Random { rng, record } => {
                let value = rng.next_u64();
                record.push(value);
                value
            }
            RngSource::Replay { stream, pos } => {
                let value = stream.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                value
            }
        }
    }

    /// Clears the per-case record (called at the start of each case).
    fn start_case(&mut self) {
        if let RngSource::Random { record, .. } = &mut self.0 {
            record.clear();
        }
    }

    /// The draws recorded since [`TestRng::start_case`].
    fn case_stream(&self) -> Vec<u64> {
        match &self.0 {
            RngSource::Random { record, .. } => record.clone(),
            RngSource::Replay { stream, .. } => stream.clone(),
        }
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty usize range");
        let span = (range.end - range.start) as u128;
        range.start + (((self.raw() as u128) * span) >> 64) as usize
    }

    /// Next raw `u64` from the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.raw()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 mantissa bits of one draw; a zero draw maps to 0.0 so replayed
        // zeros shrink floats toward the range start.
        (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly choosing between several boxed strategies — the result of
/// [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`; each generation picks one arm uniformly.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.usize_in(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical whole-domain strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning sign and magnitude.
        let unit = rng.unit_f64() * 2.0 - 1.0;
        let scale = rng.usize_in(0..60) as i32 - 30;
        unit * 2f64.powi(scale)
    }
}

/// Strategy form of [`Arbitrary`], returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Derives the per-test RNG seed from the test's name, so every run of a
/// given test generates the same cases (proptest persists failing seeds to
/// a file; this shim is deterministic from the start instead).
pub fn seed_for_test(name: &str) -> u64 {
    // FNV-1a.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// True if replaying `stream` through `body` panics.
fn replay_fails(stream: &[u64], case: u32, body: &mut impl FnMut(&mut TestRng, u32)) -> bool {
    let mut rng = TestRng::replay(stream.to_vec());
    catch_unwind(AssertUnwindSafe(|| body(&mut rng, case))).is_err()
}

/// Refcounted suppression of the process-global panic hook.
///
/// Shrinking probes candidates by panicking on purpose, so the default
/// hook would flood the terminal with backtraces.  The hook is process
/// state and libtest runs tests concurrently, so a bare take/set pair
/// races: two shrinking tests could capture each other's silent hook and
/// leave it installed forever.  Instead the first shrinker to arrive
/// stashes the real hook and the last one to leave restores it.
mod panic_hook_guard {
    use std::panic::PanicHookInfo;
    use std::sync::Mutex;

    type Hook = Box<dyn Fn(&PanicHookInfo<'_>) + Sync + Send + 'static>;
    static GUARD: Mutex<(usize, Option<Hook>)> = Mutex::new((0, None));

    /// Installs the silent hook (first caller only) and bumps the count.
    pub fn silence() {
        let mut guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        if guard.0 == 0 {
            guard.1 = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        guard.0 += 1;
    }

    /// Drops the count and restores the real hook (last caller only).
    pub fn restore() {
        let mut guard = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        guard.0 -= 1;
        if guard.0 == 0 {
            if let Some(hook) = guard.1.take() {
                std::panic::set_hook(hook);
            }
        }
    }
}

/// Greedily minimizes a failing random stream: tail truncation (halving the
/// length, then dropping single entries) and per-entry halving toward zero,
/// repeated to a fixpoint or until the attempt budget runs out.  Returns
/// the smallest still-failing stream and the number of attempts spent.
fn shrink_stream(
    stream: Vec<u64>,
    case: u32,
    body: &mut impl FnMut(&mut TestRng, u32),
) -> (Vec<u64>, usize) {
    const BUDGET: usize = 512;
    // Probing candidates panics on purpose; suppress the default hook for
    // the duration (refcounted — see `panic_hook_guard`).
    panic_hook_guard::silence();

    let mut best = stream;
    let mut attempts = 0;
    loop {
        let mut improved = false;

        // Truncation, coarse to fine: replayed streams pad with zeros, so a
        // shorter stream is always a *simpler* case of the same test.
        while best.len() > 1 && attempts < BUDGET {
            let candidate = best[..best.len() / 2].to_vec();
            attempts += 1;
            if replay_fails(&candidate, case, body) {
                best = candidate;
                improved = true;
            } else {
                break;
            }
        }
        while !best.is_empty() && attempts < BUDGET {
            let candidate = best[..best.len() - 1].to_vec();
            attempts += 1;
            if replay_fails(&candidate, case, body) {
                best = candidate;
                improved = true;
            } else {
                break;
            }
        }

        // Halving: walk every entry toward zero while the failure persists.
        for index in 0..best.len() {
            while best[index] != 0 && attempts < BUDGET {
                let mut candidate = best.clone();
                candidate[index] = if candidate[index] < 16 {
                    0
                } else {
                    candidate[index] / 2
                };
                attempts += 1;
                if replay_fails(&candidate, case, body) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
        }

        if !improved || attempts >= BUDGET {
            break;
        }
    }

    panic_hook_guard::restore();
    (best, attempts)
}

/// Runs `cases` generated inputs through a test body, shrinking the first
/// failure to a minimized counterexample.  Used by the [`proptest!`] macro;
/// not part of the public proptest API.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut TestRng, u32)) {
    let mut rng = TestRng::new(seed_for_test(name));
    for case in 0..cases {
        rng.start_case();
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng, case)));
        let Err(payload) = outcome else { continue };

        let recorded = rng.case_stream();
        let original_len = recorded.len();
        let (minimal, attempts) = shrink_stream(recorded, case, &mut body);
        eprintln!(
            "proptest(shim): `{name}` failed at case {case}; shrunk the random stream \
             from {original_len} to {} draws in {attempts} attempts — re-running the \
             minimized case, its assertion follows",
            minimal.len()
        );
        // Re-run the minimized case un-caught so the test fails with the
        // minimized inputs in its assertion message...
        let mut replay = TestRng::replay(minimal);
        body(&mut replay, case);
        // ...and if a nondeterministic body passed this time, surface the
        // original failure instead of silently swallowing it.
        resume_unwind(payload);
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $config; $($rest)*);
    };
    (@with_config $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $(let $arg = $strategy;)+
            $crate::run_cases(stringify!($name), config.cases, |rng, _case| {
                $(let $arg = $crate::Strategy::generate(&$arg, rng);)+
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Chooses uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec((0u32..10).prop_map(|x| x * 2), n..n + 1)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!([1, 2, 5, 6].contains(&x));
        }

        #[test]
        fn index_stays_in_bounds(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn same_test_name_generates_same_cases() {
        let strat = (0u64..1000, prop::collection::vec(0u8..255, 0..6));
        let mut a = Vec::new();
        crate::run_cases("determinism", 16, |rng, _| a.push(strat.generate(rng)));
        let mut b = Vec::new();
        crate::run_cases("determinism", 16, |rng, _| b.push(strat.generate(rng)));
        assert_eq!(a, b);
    }

    #[test]
    fn shrinking_halves_values_toward_the_smallest_failure() {
        // Failure condition: x >= 100 out of 0..1000.  Starting from the
        // maximal draw (x = 999), halving must land within a factor of two
        // of the 100 boundary — never below it (that would pass), never
        // far above it (that would be unshrunk).
        let mut body = |rng: &mut crate::TestRng, _case: u32| {
            let x = (0u64..1000).generate(rng);
            assert!(x < 100, "x = {x}");
        };
        let (minimal, attempts) = crate::shrink_stream(vec![u64::MAX], 0, &mut body);
        assert!(attempts > 0);
        let x = (0u64..1000).generate(&mut crate::TestRng::replay(minimal));
        assert!((100..200).contains(&x), "shrunk to x = {x}");
    }

    #[test]
    fn shrinking_truncates_collections() {
        // Failure condition: the vec has >= 3 elements.  Shrinking must
        // truncate the stream down to the minimal failing length, and the
        // surviving elements must shrink to the range minimum (zero draws).
        let strat = prop::collection::vec(0u32..50, 0..20);
        let mut body = |rng: &mut crate::TestRng, _case: u32| {
            let v = strat.generate(rng);
            assert!(v.len() < 3, "v = {v:?}");
        };
        // Find a failing stream by generating until the body panics.
        let mut rng = crate::TestRng::new(crate::seed_for_test("truncate_demo"));
        let stream = loop {
            rng.start_case();
            let failed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng, 0)))
                    .is_err();
            if failed {
                break rng.case_stream();
            }
        };
        let (minimal, _) = crate::shrink_stream(stream, 0, &mut body);
        let v = strat.generate(&mut crate::TestRng::replay(minimal));
        assert_eq!(v, vec![0, 0, 0], "minimal counterexample: {v:?}");
    }

    #[test]
    fn failing_property_tests_report_the_minimized_case() {
        // End-to-end through run_cases: the final (un-caught) panic must
        // carry the *minimized* inputs, i.e. a sum just over the limit
        // rather than whatever the first failing case happened to draw.
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("shrink_e2e", 64, |rng, _| {
                let v = prop::collection::vec(0u64..1000, 0..12).generate(rng);
                let sum: u64 = v.iter().sum();
                assert!(sum < 500, "sum = {sum}");
            });
        });
        let payload = result.expect_err("the property is violated");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("assert! panics with a String");
        let sum: u64 = message
            .trim_start_matches(|c: char| !c.is_ascii_digit())
            .trim()
            .parse()
            .expect("message ends with the sum");
        assert!((500..1000).contains(&sum), "minimized sum = {sum}");
    }
}
