//! Sampling helpers (`prop::sample`).

use crate::{Arbitrary, TestRng};

/// A fraction of an as-yet-unknown collection length, mirroring
/// `proptest::sample::Index`: generate it with `any::<Index>()`, then call
/// [`Index::index`] with the collection's length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this index onto a collection of `len` elements.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (((self.0 as u128) * (len as u128)) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}
