//! Minimal stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of `rand` the workspace uses: [`Rng::gen`], [`Rng::gen_range`]
//! over half-open ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through splitmix64 — a different stream
//! than the real `rand::rngs::StdRng` (ChaCha12), but the workspace only
//! relies on *determinism given a seed*, never on a specific stream.

use std::ops::Range;

/// The core of every random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next value in the generator's stream.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value with the standard distribution for its type
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Types samplable by [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draws one value uniformly from `lo..hi`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; the bias over a u64
                // stream is < 2^-64 per draw, far below anything the
                // simulator or samplers can observe.
                let draw = rng.next_u64() as u128;
                let offset = (draw * span) >> 64;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic, seedable generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as the xoshiro authors
            // recommend, so nearby seeds give unrelated streams.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }
}
