//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of criterion's API the bench targets use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `sample_size`,
//! `throughput`, `BenchmarkId`, `Throughput` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and reports min / mean /
//! max wall-clock time (plus derived throughput when configured).  There is
//! no statistical analysis, HTML report or baseline comparison — the point
//! is that `cargo bench` compiles, runs and prints comparable numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark context handed to every registered bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &id.into(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The amount of work one benchmark iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `f` once as warm-up and then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    let full_name = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    if bencher.samples.is_empty() {
        println!("  {full_name}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64()),
        Throughput::Bytes(n) => format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64()),
    });
    println!(
        "  {full_name}: [{min:?} {mean:?} {max:?}]{}",
        rate.unwrap_or_default()
    );
}

/// Bundles bench functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // One warm-up call plus three timed calls.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 3), &vec![1, 2, 3], |b, v| {
            b.iter(|| v.iter().sum::<i32>());
        });
        group.finish();
    }
}
