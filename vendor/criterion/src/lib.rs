//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of criterion's API the bench targets use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `sample_size`,
//! `throughput`, `BenchmarkId`, `Throughput` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and reports min /
//! median / mean / max wall-clock time with the sample standard deviation
//! (plus derived throughput when configured).  Samples outside the Tukey
//! fences (1.5 × IQR beyond the interpolated quartiles) are rejected as
//! outliers, and the *trimmed mean* over the surviving samples is reported
//! alongside — a one-off scheduler hiccup no longer shifts the headline
//! number.  A 95% percentile-bootstrap confidence interval of the trimmed
//! mean (what real criterion computes, at a smaller resample count and
//! with a fixed-seed RNG so runs are deterministic) is printed next to it.
//! There is no HTML report, but baselines are supported: set
//! `CRITERION_BASELINE=<file>` to compare against a saved run — if the
//! file exists, every benchmark line gains a `Δ vs baseline` percentage
//! (of trimmed mean time) annotated with whether the baseline lies inside
//! or outside the interval, so a ~1 % delta within the CI reads as noise
//! rather than a regression; if it does not, the run's trimmed means are
//! written there as a flat JSON object (`{"bench name": nanoseconds, ...}`)
//! when `criterion_main!` finishes, ready for the next comparison run.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark context handed to every registered bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &id.into(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The amount of work one benchmark iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `f` once as warm-up and then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Summary statistics over one benchmark's timed samples.
#[derive(Debug, Clone, Copy)]
struct SampleStats {
    min: Duration,
    median: Duration,
    mean: Duration,
    max: Duration,
    /// Sample standard deviation (Bessel-corrected); zero for one sample.
    stddev: Duration,
    /// Mean over the samples inside the Tukey fences (q1 − 1.5·IQR,
    /// q3 + 1.5·IQR).  Equals `mean` when nothing is rejected; this is the
    /// value baselines record and diff, because it is stable under the
    /// occasional scheduler hiccup that the plain mean is not.
    trimmed_mean: Duration,
    /// How many samples fell outside the Tukey fences.
    outliers: usize,
    /// Lower bound of the 95% percentile-bootstrap confidence interval of
    /// the trimmed mean.
    ci_lo: Duration,
    /// Upper bound of the 95% percentile-bootstrap confidence interval.
    ci_hi: Duration,
}

/// Linearly interpolated quantile (type-7, what numpy and criterion use)
/// over an ascending slice of nanosecond values.
fn quantile_of(sorted_ns: &[f64], p: f64) -> f64 {
    let position = (sorted_ns.len() - 1) as f64 * p;
    let below = position.floor() as usize;
    let above = position.ceil() as usize;
    let lower = sorted_ns[below];
    let upper = sorted_ns[above];
    lower + (upper - lower) * (position - below as f64)
}

/// Trimmed mean over an ascending slice: the mean of the values inside the
/// Tukey fences (q1 − 1.5·IQR, q3 + 1.5·IQR), plus how many fell outside.
/// The fences are inclusive, so a zero-IQR sample set rejects nothing.
fn trimmed_mean_of(sorted_ns: &[f64]) -> (f64, usize) {
    let q1 = quantile_of(sorted_ns, 0.25);
    let q3 = quantile_of(sorted_ns, 0.75);
    let iqr = q3 - q1;
    let (low, high) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted_ns
        .iter()
        .copied()
        .filter(|&ns| ns >= low && ns <= high)
        .collect();
    let outliers = sorted_ns.len() - kept.len();
    let mean = if kept.is_empty() {
        // Unreachable in practice: the median is always inside the fences.
        sorted_ns.iter().sum::<f64>() / sorted_ns.len() as f64
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    };
    (mean, outliers)
}

/// How many bootstrap resamples the confidence interval draws.  Real
/// criterion defaults to 100 000; with sample sizes of 10–100 the interval
/// stabilizes far earlier, and 500 keeps the shim's overhead negligible.
const BOOTSTRAP_RESAMPLES: usize = 500;

/// 95% percentile-bootstrap confidence interval of the trimmed mean:
/// resample the samples with replacement, compute each resample's trimmed
/// mean, and take the 2.5th / 97.5th percentiles of those.  The RNG is a
/// fixed-seed xorshift64*, so a given sample set always produces the same
/// interval (the shim's tests — and CI — rely on determinism).
fn bootstrap_ci_of(sorted_ns: &[f64]) -> (f64, f64) {
    if sorted_ns.len() < 2 {
        let v = sorted_ns.first().copied().unwrap_or(0.0);
        return (v, v);
    }
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (sorted_ns.len() as u64);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    let mut resample = vec![0.0f64; sorted_ns.len()];
    for _ in 0..BOOTSTRAP_RESAMPLES {
        for slot in resample.iter_mut() {
            let idx = ((next() >> 33) as usize) % sorted_ns.len();
            *slot = sorted_ns[idx];
        }
        resample.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        means.push(trimmed_mean_of(&resample).0);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
    (quantile_of(&means, 0.025), quantile_of(&means, 0.975))
}

fn sample_stats(samples: &[Duration]) -> SampleStats {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let max = *sorted.last().expect("non-empty");
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2
    };
    let mean_ns = sorted.iter().map(Duration::as_nanos).sum::<u128>() as f64 / sorted.len() as f64;
    let stddev_ns = if sorted.len() < 2 {
        0.0
    } else {
        let var = sorted
            .iter()
            .map(|s| {
                let d = s.as_nanos() as f64 - mean_ns;
                d * d
            })
            .sum::<f64>()
            / (sorted.len() - 1) as f64;
        var.sqrt()
    };

    let sorted_ns: Vec<f64> = sorted.iter().map(|s| s.as_nanos() as f64).collect();
    let (trimmed_mean_ns, outliers) = trimmed_mean_of(&sorted_ns);
    let (ci_lo_ns, ci_hi_ns) = bootstrap_ci_of(&sorted_ns);

    SampleStats {
        min,
        median,
        mean: Duration::from_nanos(mean_ns as u64),
        max,
        stddev: Duration::from_nanos(stddev_ns as u64),
        trimmed_mean: Duration::from_nanos(trimmed_mean_ns as u64),
        outliers,
        ci_lo: Duration::from_nanos(ci_lo_ns as u64),
        ci_hi: Duration::from_nanos(ci_hi_ns as u64),
    }
}

/// Means recorded this run, written out by [`save_baseline_if_requested`].
fn recorded_means() -> &'static Mutex<Vec<(String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The baseline loaded from `CRITERION_BASELINE`, if the file exists.
fn baseline() -> Option<&'static HashMap<String, f64>> {
    static BASELINE: OnceLock<Option<HashMap<String, f64>>> = OnceLock::new();
    BASELINE
        .get_or_init(|| {
            let path = std::env::var("CRITERION_BASELINE").ok()?;
            let text = std::fs::read_to_string(&path).ok()?;
            match parse_baseline_json(&text) {
                Ok(map) => {
                    println!("comparing against baseline {path} ({} entries)", map.len());
                    Some(map)
                }
                Err(e) => {
                    eprintln!("ignoring malformed baseline {path}: {e}");
                    None
                }
            }
        })
        .as_ref()
}

/// Parses a flat JSON object of string keys to numbers — exactly what
/// [`write_baseline_json`] emits.
fn parse_baseline_json(text: &str) -> Result<HashMap<String, f64>, String> {
    let mut map = HashMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a JSON object")?;
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(map);
        }
        if chars.next() != Some('"') {
            return Err("expected a string key".into());
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some(c @ ('"' | '\\')) => key.push(c),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => key.push(c),
                None => return Err("unterminated string key".into()),
            }
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err("expected ':' after key".into());
        }
        let mut number = String::new();
        while matches!(chars.peek(), Some(c) if !matches!(c, ',') ) {
            number.push(chars.next().expect("peeked"));
        }
        let value: f64 = number
            .trim()
            .parse()
            .map_err(|_| format!("bad number {number:?} for key {key:?}"))?;
        map.insert(key, value);
    }
}

/// Serializes recorded means as the flat JSON object the parser accepts.
fn write_baseline_json(entries: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, mean_ns)) in entries.iter().enumerate() {
        let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("  \"{escaped}\": {mean_ns:.1}"));
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push('}');
    out
}

/// Records the run's means into `CRITERION_BASELINE` if the variable is
/// set.  Benchmarks already in the file keep their baseline values (they
/// were the comparison reference); benchmarks the file has never seen are
/// appended — so `cargo bench` over several `[[bench]]` binaries (one
/// process each) accumulates a complete baseline on the first pass instead
/// of freezing after the first binary.  Called by `criterion_main!` after
/// all groups have run; harmless with no benchmarks recorded.
pub fn save_baseline_if_requested() {
    let Ok(path) = std::env::var("CRITERION_BASELINE") else {
        return;
    };
    let entries = recorded_means().lock().expect("no poisoned benches");
    if entries.is_empty() {
        return;
    }
    let existing = baseline().cloned().unwrap_or_default();
    let mut merged: Vec<(String, f64)> = existing.iter().map(|(k, &v)| (k.clone(), v)).collect();
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let before = merged.len();
    for (name, mean_ns) in entries.iter() {
        if !existing.contains_key(name) {
            merged.push((name.clone(), *mean_ns));
        }
    }
    let added = merged.len() - before;
    if added == 0 {
        return; // every benchmark was compared against the baseline
    }
    match std::fs::write(&path, write_baseline_json(&merged)) {
        Ok(()) if before == 0 => println!("saved baseline {path} ({added} entries)"),
        Ok(()) => println!("added {added} new entries to baseline {path}"),
        Err(e) => eprintln!("cannot save baseline {path}: {e}"),
    }
}

fn run_one<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    let full_name = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    if bencher.samples.is_empty() {
        println!("  {full_name}: no samples recorded");
        return;
    }
    let stats = sample_stats(&bencher.samples);
    // The trimmed mean is the headline number: it is what baselines record
    // and what deltas are computed against, because IQR rejection makes
    // small diffs trustworthy where the plain mean is one hiccup away from
    // a phantom regression.
    let trimmed_ns = stats.trimmed_mean.as_nanos() as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(
                " ({:.0} elem/s)",
                n as f64 / stats.trimmed_mean.as_secs_f64()
            )
        }
        Throughput::Bytes(n) => {
            format!(" ({:.0} B/s)", n as f64 / stats.trimmed_mean.as_secs_f64())
        }
    });
    let delta = baseline()
        .and_then(|b| b.get(&full_name))
        .map(|&base_ns| {
            if base_ns > 0.0 {
                // A baseline inside the bootstrap CI is statistical noise;
                // only a baseline outside it marks a real shift.
                let lo = stats.ci_lo.as_nanos() as f64;
                let hi = stats.ci_hi.as_nanos() as f64;
                let verdict = if base_ns < lo || base_ns > hi {
                    "outside 95% CI"
                } else {
                    "within 95% CI"
                };
                format!(
                    " Δ vs baseline {:+.1}% ({verdict})",
                    100.0 * (trimmed_ns - base_ns) / base_ns
                )
            } else {
                String::from(" Δ vs baseline n/a")
            }
        })
        .unwrap_or_default();
    println!(
        "  {full_name}: [{:?} {:?} {:?} {:?}] ±{:?} trimmed mean {:?} 95% CI [{:?}, {:?}] ({} outliers){}{delta}",
        stats.min,
        stats.median,
        stats.mean,
        stats.max,
        stats.stddev,
        stats.trimmed_mean,
        stats.ci_lo,
        stats.ci_hi,
        stats.outliers,
        rate.unwrap_or_default()
    );
    recorded_means()
        .lock()
        .expect("no poisoned benches")
        .push((full_name, trimmed_ns));
}

/// Bundles bench functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench target (`harness = false`).  After every group
/// has run, benchmarks that `CRITERION_BASELINE` has never seen are
/// recorded into it — creating the file if missing, appending new entries
/// otherwise; existing entries are never overwritten (see
/// [`save_baseline_if_requested`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
            $crate::save_baseline_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // One warm-up call plus three timed calls.
        assert_eq!(calls, 4);
    }

    #[test]
    fn stats_report_median_and_stddev() {
        let samples: Vec<Duration> = [10u64, 20, 30, 40, 100]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let stats = sample_stats(&samples);
        assert_eq!(stats.min, Duration::from_millis(10));
        assert_eq!(stats.median, Duration::from_millis(30));
        assert_eq!(stats.mean, Duration::from_millis(40));
        assert_eq!(stats.max, Duration::from_millis(100));
        // Sample stddev of [10,20,30,40,100] ms: sqrt(5000/4) ≈ 35.36 ms.
        let stddev_ms = stats.stddev.as_secs_f64() * 1e3;
        assert!((stddev_ms - 35.36).abs() < 0.1, "{stddev_ms}");

        // Even sample counts take the midpoint; single samples have no spread.
        let stats = sample_stats(&samples[..4]);
        assert_eq!(stats.median, Duration::from_millis(25));
        let stats = sample_stats(&samples[..1]);
        assert_eq!(stats.stddev, Duration::ZERO);
    }

    #[test]
    fn iqr_rejection_trims_outliers_from_the_mean() {
        // [10,20,30,40,100] ms: interpolated q1 = 20, q3 = 40, IQR = 20,
        // fences [-10, 70] — so 100 ms is an outlier and the trimmed mean
        // is the mean of the surviving four samples.
        let samples: Vec<Duration> = [10u64, 20, 30, 40, 100]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let stats = sample_stats(&samples);
        assert_eq!(stats.outliers, 1);
        assert_eq!(stats.trimmed_mean, Duration::from_millis(25));
        // The untrimmed mean stays reported for comparison.
        assert_eq!(stats.mean, Duration::from_millis(40));
    }

    #[test]
    fn clean_samples_reject_nothing() {
        // Identical samples: IQR is zero but the inclusive fences keep all.
        let stats = sample_stats(&[Duration::from_millis(5); 7]);
        assert_eq!(stats.outliers, 0);
        assert_eq!(stats.trimmed_mean, Duration::from_millis(5));
        // A gentle ramp has no outliers either.
        let ramp: Vec<Duration> = (10..20).map(Duration::from_millis).collect();
        let stats = sample_stats(&ramp);
        assert_eq!(stats.outliers, 0);
        assert_eq!(stats.trimmed_mean, stats.mean);
        // Single samples are their own trimmed mean.
        let stats = sample_stats(&[Duration::from_millis(3)]);
        assert_eq!(stats.outliers, 0);
        assert_eq!(stats.trimmed_mean, Duration::from_millis(3));
    }

    #[test]
    fn bootstrap_ci_brackets_the_trimmed_mean_and_is_deterministic() {
        let samples: Vec<Duration> = [10u64, 20, 30, 40, 100]
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        let first = sample_stats(&samples);
        let second = sample_stats(&samples);
        // Fixed-seed bootstrap: identical input, identical interval.
        assert_eq!(first.ci_lo, second.ci_lo);
        assert_eq!(first.ci_hi, second.ci_hi);
        assert!(first.ci_lo < first.ci_hi);
        assert!(
            first.ci_lo <= first.trimmed_mean && first.trimmed_mean <= first.ci_hi,
            "trimmed mean {:?} outside CI [{:?}, {:?}]",
            first.trimmed_mean,
            first.ci_lo,
            first.ci_hi
        );
    }

    #[test]
    fn bootstrap_ci_collapses_for_constant_and_single_samples() {
        let stats = sample_stats(&[Duration::from_millis(5); 7]);
        assert_eq!(stats.ci_lo, Duration::from_millis(5));
        assert_eq!(stats.ci_hi, Duration::from_millis(5));
        let stats = sample_stats(&[Duration::from_millis(3)]);
        assert_eq!(stats.ci_lo, Duration::from_millis(3));
        assert_eq!(stats.ci_hi, Duration::from_millis(3));
    }

    #[test]
    fn baseline_json_round_trips() {
        let entries = vec![
            ("group/bench".to_string(), 1234.5),
            ("weird \"name\" \\ with escapes".to_string(), 8.0),
            ("elems, commas".to_string(), 99999999.1),
        ];
        let json = write_baseline_json(&entries);
        let parsed = parse_baseline_json(&json).unwrap();
        assert_eq!(parsed.len(), entries.len());
        for (name, mean) in &entries {
            assert!(
                (parsed[name] - mean).abs() < 1e-6,
                "{name}: {} vs {mean}",
                parsed[name]
            );
        }
        assert!(parse_baseline_json("not json").is_err());
        assert!(parse_baseline_json("{\"unterminated: 1}").is_err());
        assert!(parse_baseline_json("{\"k\": nope}").is_err());
        assert_eq!(parse_baseline_json("{}").unwrap().len(), 0);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 3), &vec![1, 2, 3], |b, v| {
            b.iter(|| v.iter().sum::<i32>());
        });
        group.finish();
    }
}
