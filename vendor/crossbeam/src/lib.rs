//! Minimal stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the one `crossbeam` API the workspace uses — `crossbeam::thread::scope`
//! with spawn closures that receive the scope — on top of
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantic difference from real crossbeam: a panicking worker propagates
//! through `std::thread::scope` instead of being collected into the `Err`
//! variant, so `scope(..)` here never returns `Err`.  Callers that
//! `.expect()` the result behave identically either way.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A handle to a spawned scoped thread.
    pub use std::thread::ScopedJoinHandle;

    /// A scope for spawning borrowed threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.  As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which borrowed threads can be spawned; all
    /// threads are joined before it returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("workers must not panic");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert!(flag.into_inner());
    }
}
