//! Minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of `parking_lot` the workspace uses — [`Mutex`] and
//! [`RwLock`] with non-poisoning, guard-returning lock methods — on top of
//! `std::sync`.  Poisoning is translated to a panic, which matches
//! `parking_lot` semantics closely enough for this workspace (a poisoned
//! lock here always means a worker already panicked).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("mutex poisoned")
    }
}

/// A reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
