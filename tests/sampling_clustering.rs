//! Integration tests for the sampling- and clustering-based reduction
//! families evaluated by the extension study.

use trace_reduction::analysis::{diagnose, MetricKind};
use trace_reduction::clustering::{
    cluster_reduce, euclidean_distance_matrix, kmeans, rank_features, silhouette_score,
    KMeansConfig, Normalization,
};
use trace_reduction::eval::criteria::{
    approximation_distance_us, file_size_percent, trends_retained,
};
use trace_reduction::eval::{evaluate_technique, ExtensionTechnique};
use trace_reduction::sampling::{
    reduce_by_periodicity, sample_app, statistical_profile, EventSamplingConfig, PeriodicityConfig,
    SamplingPolicy,
};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn generate(kind: WorkloadKind) -> trace_reduction::model::AppTrace {
    Workload::new(kind, SizePreset::Tiny).generate()
}

#[test]
fn segment_sampling_trades_size_for_error_monotonically() {
    let full = generate(WorkloadKind::DynLoadBalance);
    let mut previous_size = f64::INFINITY;
    for n in [1usize, 2, 8, 32] {
        let reduced = sample_app(&full, SamplingPolicy::EveryNth(n));
        let size = file_size_percent(&full, &reduced);
        assert!(
            size <= previous_size + 1e-9,
            "every{n}: size {size} should not exceed the finer sampling's {previous_size}"
        );
        previous_size = size;
    }
}

#[test]
fn sampling_every_other_iteration_keeps_regular_benchmark_trends() {
    for kind in [WorkloadKind::LateSender, WorkloadKind::LateBroadcast] {
        let full = generate(kind);
        let reduced = sample_app(&full, SamplingPolicy::EveryNth(2));
        let trend = trends_retained(&full, &reduced.reconstruct());
        assert!(trend.retained, "{kind:?}: {:?}", trend.discrepancies);
    }
}

#[test]
fn periodicity_reduction_is_lossier_than_lossless_but_structurally_sound() {
    let full = generate(WorkloadKind::EarlyGather);
    // The per-rank segment sequence is `init, loop×N, final`, so the loop
    // period only dominates once short prologue/epilogue mismatches are
    // tolerated; 0.7 accepts it at the tiny preset's iteration count.
    let config = PeriodicityConfig {
        min_match_fraction: 0.7,
        ..PeriodicityConfig::default()
    };
    let reduced = reduce_by_periodicity(&full, &config);
    assert!(file_size_percent(&full, &reduced) < 100.0);
    let approx = reduced.reconstruct();
    assert_eq!(approx.total_events(), full.total_events());
    assert!(approximation_distance_us(&full, &approx).is_finite());
}

#[test]
fn statistical_profile_reports_wait_heavy_regions_but_not_their_cause() {
    // The profile shows that late_sender spends a lot of time in MPI_Recv —
    // but the same is true of a network-contention scenario; only the trace
    // analysis attributes it to the Late Sender pattern.  This mirrors the
    // paper's introduction argument for why profiles are insufficient.
    let full = generate(WorkloadKind::LateSender);
    let profiles = statistical_profile(&full, &EventSamplingConfig::default());
    let recv_time = profiles
        .iter()
        .filter(|(name, _)| name.contains("Recv"))
        .map(|(_, p)| p.total_ms())
        .sum::<f64>();
    assert!(recv_time > 0.0, "profile must show receive time");

    let diagnosis = diagnose(&full);
    assert!(
        diagnosis.metric_total_ms(MetricKind::LateSender) > 0.0,
        "the trace-based diagnosis attributes the wait to Late Sender"
    );
}

#[test]
fn clustering_separates_the_imbalanced_halves_of_dyn_load_balance() {
    let full = generate(WorkloadKind::DynLoadBalance);
    let features = rank_features(&full, Normalization::MinMax);
    let matrix = euclidean_distance_matrix(&features);
    let result = kmeans(&features, &KMeansConfig::new(2));
    assert!(silhouette_score(&matrix, &result.assignments) > 0.0);

    // The benchmark gives ranks 0..n/2 and n/2..n different load patterns;
    // a 2-way clustering should not mix the two halves completely.
    let n = full.rank_count();
    let lower: Vec<usize> = result.assignments[..n / 2].to_vec();
    let upper: Vec<usize> = result.assignments[n / 2..].to_vec();
    let lower_majority = lower.iter().filter(|&&c| c == lower[0]).count();
    let upper_in_lower_cluster = upper.iter().filter(|&&c| c == lower[0]).count();
    assert!(
        lower_majority > upper_in_lower_cluster,
        "lower half {lower:?} and upper half {upper:?} should differ in majority cluster"
    );
}

#[test]
fn cluster_reduction_shrinks_retained_data_proportionally_to_k() {
    let full = generate(WorkloadKind::LateSender);
    let features = rank_features(&full, Normalization::MinMax);
    let matrix = euclidean_distance_matrix(&features);
    let n = full.rank_count();

    let sizes: Vec<f64> = [2usize, n]
        .iter()
        .map(|&k| {
            let result = kmeans(&features, &KMeansConfig::new(k));
            let clustered = cluster_reduce(&full, &result.assignments, &matrix);
            clustered.retained_fraction()
        })
        .collect();
    assert!(sizes[0] < sizes[1]);
    assert!(
        (sizes[1] - 1.0).abs() < 1e-9,
        "k = rank count retains everything"
    );
}

#[test]
fn extension_study_rates_lossless_techniques_as_perfectly_confident() {
    let full = generate(WorkloadKind::EarlyGather);
    for technique in [
        ExtensionTechnique::Sampling(SamplingPolicy::EveryNth(1)),
        ExtensionTechnique::Clustering {
            k: full.rank_count(),
        },
    ] {
        let eval = evaluate_technique(&full, technique);
        assert_eq!(eval.approximation_distance_us, 0.0, "{}", eval.technique);
        assert_eq!(eval.confidence, 1.0, "{}", eval.technique);
        assert!(eval.trends_retained, "{}", eval.technique);
    }
}
