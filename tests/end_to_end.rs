//! Cross-crate integration tests: the full pipeline from workload generation
//! through reduction, serialization, reconstruction and analysis.

use trace_reduction::eval::evaluation::evaluate_method;
use trace_reduction::model::codec::{
    decode_app_trace, decode_reduced_trace, encode_app_trace, encode_reduced_trace,
};
use trace_reduction::reduce::{reduce_app_parallel, Method, MethodConfig, Reducer};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

/// A representative subset of workloads covering every category: regular,
/// interference, dynamic load balance, and the application.
fn representative_workloads() -> Vec<Workload> {
    use trace_reduction::sim::WorkloadKind::*;
    [
        LateSender,
        EarlyGather,
        DynLoadBalance,
        WorkloadKind::by_name("NtoN_1024").unwrap(),
        Sweep3d8p,
    ]
    .into_iter()
    .map(|kind| Workload::new(kind, SizePreset::Tiny))
    .collect()
}

#[test]
fn every_method_completes_the_full_pipeline_on_every_category() {
    for workload in representative_workloads() {
        let full = workload.generate();
        for method in Method::ALL {
            let eval = evaluate_method(&full, MethodConfig::with_default_threshold(method));
            assert!(
                eval.file_size_percent > 0.0 && eval.file_size_percent < 200.0,
                "{method} on {}: implausible file size {}",
                full.name,
                eval.file_size_percent
            );
            assert!(
                eval.degree_of_matching >= 0.0 && eval.degree_of_matching <= 1.0,
                "{method} on {}: degree of matching {}",
                full.name,
                eval.degree_of_matching
            );
            assert!(
                eval.approximation_distance_us.is_finite(),
                "{method} on {}: non-finite approximation distance",
                full.name
            );
            assert!(eval.trend_score >= 0.0 && eval.trend_score <= 1.0);
            assert_eq!(eval.workload, full.name);
        }
    }
}

#[test]
fn reduction_is_deterministic_and_parallelism_invariant() {
    let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    for method in [Method::AvgWave, Method::RelDiff, Method::IterAvg] {
        let reducer = Reducer::with_default_threshold(method);
        let a = reducer.reduce_app(&full);
        let b = reducer.reduce_app(&full);
        let c = reduce_app_parallel(&reducer, &full, 4);
        assert_eq!(a, b, "{method}: reduction must be deterministic");
        assert_eq!(a, c, "{method}: parallel reduction must match sequential");
    }
}

#[test]
fn full_and_reduced_traces_round_trip_through_the_codec() {
    let full = Workload::new(WorkloadKind::LateBroadcast, SizePreset::Tiny).generate();
    let decoded_full = decode_app_trace(&encode_app_trace(&full)).expect("full trace decodes");
    assert_eq!(full, decoded_full);

    for method in Method::ALL {
        let reduced = Reducer::with_default_threshold(method).reduce_app(&full);
        let decoded = decode_reduced_trace(&encode_reduced_trace(&reduced))
            .unwrap_or_else(|e| panic!("{method}: reduced trace must decode: {e}"));
        assert_eq!(reduced, decoded, "{method}");
        // A decoded reduced trace reconstructs to the same approximation.
        assert_eq!(reduced.reconstruct(), decoded.reconstruct(), "{method}");
    }
}

#[test]
fn reconstruction_preserves_per_rank_structure_for_every_method() {
    let full = Workload::new(WorkloadKind::ImbalanceAtMpiBarrier, SizePreset::Tiny).generate();
    for method in Method::ALL {
        let reduced = Reducer::with_default_threshold(method).reduce_app(&full);
        let approx = reduced.reconstruct();
        assert_eq!(approx.rank_count(), full.rank_count(), "{method}");
        assert_eq!(approx.total_events(), full.total_events(), "{method}");
        for (approx_rank, full_rank) in approx.ranks.iter().zip(&full.ranks) {
            assert_eq!(
                approx_rank.segment_instance_count(),
                full_rank.segment_instance_count(),
                "{method}"
            );
        }
        // Name tables are carried over so the analysis sees the same regions.
        assert_eq!(approx.regions, full.regions, "{method}");
        assert_eq!(approx.contexts, full.contexts, "{method}");
    }
}

#[test]
fn workload_names_match_the_paper_and_are_regenerable() {
    let expected = [
        "early_gather",
        "imbalance_at_mpi_barrier",
        "late_receiver",
        "late_sender",
        "late_broadcast",
        "Nto1_32",
        "NtoN_32",
        "1toN_32",
        "1to1r_32",
        "1to1s_32",
        "Nto1_1024",
        "NtoN_1024",
        "1toN_1024",
        "1to1r_1024",
        "1to1s_1024",
        "dyn_load_balance",
        "sweep3d_8p",
        "sweep3d_32p",
    ];
    let names: Vec<String> = Workload::all(SizePreset::Tiny)
        .iter()
        .map(Workload::name)
        .collect();
    assert_eq!(names, expected);
}
