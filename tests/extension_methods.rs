//! Integration tests for the extended similarity-method catalogue: the
//! extension methods must behave coherently with the paper methods when run
//! through the full pipeline (generation → reduction → reconstruction →
//! analysis).

use trace_reduction::eval::criteria::{
    approximation_distance_us, file_size_percent, trends_retained,
};
use trace_reduction::reduce::{ExtendedConfig, ExtendedMethod, ExtendedReducer, Method, Reducer};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn generate(kind: WorkloadKind) -> trace_reduction::model::AppTrace {
    Workload::new(kind, SizePreset::Tiny).generate()
}

#[test]
fn every_extension_method_completes_the_pipeline_on_every_category() {
    let kinds = [
        WorkloadKind::LateSender,
        WorkloadKind::by_name("1to1r_32").unwrap(),
        WorkloadKind::DynLoadBalance,
        WorkloadKind::Sweep3d8p,
    ];
    for kind in kinds {
        let full = generate(kind);
        for method in ExtendedMethod::EXTENSIONS {
            let reduced = ExtendedReducer::with_default_threshold(method).reduce_app(&full);
            let percent = file_size_percent(&full, &reduced);
            assert!(
                percent > 0.0 && percent < 120.0,
                "{kind:?}/{method}: {percent}"
            );
            let approx = reduced.reconstruct();
            assert_eq!(
                approx.total_events(),
                full.total_events(),
                "{kind:?}/{method}"
            );
            assert!(approximation_distance_us(&full, &approx).is_finite());
        }
    }
}

#[test]
fn cdf97_wavelet_behaves_like_the_paper_wavelets_on_regular_benchmarks() {
    // On a regular benchmark the CDF 9/7 wavelet metric should land in the
    // same ballpark as avgWave/haarWave: comparable file sizes and retained
    // trends.
    let full = generate(WorkloadKind::LateSender);
    let avg = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&full);
    let cdf = ExtendedReducer::with_default_threshold(ExtendedMethod::Cdf97Wave).reduce_app(&full);
    let avg_size = file_size_percent(&full, &avg);
    let cdf_size = file_size_percent(&full, &cdf);
    assert!(
        (avg_size - cdf_size).abs() < 15.0,
        "avgWave {avg_size}% and cdf97Wave {cdf_size}% should be comparable"
    );
    let trend = trends_retained(&full, &cdf.reconstruct());
    assert!(trend.retained, "{:?}", trend.discrepancies);
}

#[test]
fn dtw_retains_trends_on_regular_benchmarks_at_its_default_threshold() {
    for kind in [WorkloadKind::LateSender, WorkloadKind::EarlyGather] {
        let full = generate(kind);
        let reduced =
            ExtendedReducer::with_default_threshold(ExtendedMethod::Dtw).reduce_app(&full);
        let trend = trends_retained(&full, &reduced.reconstruct());
        assert!(trend.retained, "{kind:?}: {:?}", trend.discrepancies);
    }
}

#[test]
fn loosening_the_threshold_of_an_extension_never_stores_more_segments() {
    // For every extension method, sweeping its threshold grid from the
    // tightest to the loosest setting must monotonically reduce (or hold)
    // the number of stored representatives — the same monotonicity the
    // paper's threshold study relies on for its figures.
    let full = generate(WorkloadKind::DynLoadBalance);
    for method in ExtendedMethod::EXTENSIONS {
        let mut previous = usize::MAX;
        for threshold in method.threshold_grid() {
            let stored = ExtendedReducer::new(ExtendedConfig::new(method, threshold))
                .reduce_app(&full)
                .total_stored();
            assert!(
                stored <= previous,
                "{method}: {stored} stored at threshold {threshold} exceeds {previous} at a tighter one"
            );
            previous = stored;
        }
    }
}

#[test]
fn normalized_euclidean_matches_at_least_as_much_as_plain_euclidean() {
    // Dividing the distance by sqrt(len) can only make the test easier to
    // pass at the same threshold, so it stores at most as many segments.
    let full = generate(WorkloadKind::Sweep3d8p);
    let plain = Reducer::new(trace_reduction::reduce::MethodConfig::new(
        Method::Euclidean,
        0.2,
    ))
    .reduce_app(&full);
    let normalized = ExtendedReducer::new(ExtendedConfig::new(
        ExtendedMethod::NormalizedEuclidean,
        0.2,
    ))
    .reduce_app(&full);
    assert!(
        normalized.total_stored() <= plain.total_stored(),
        "normalized ({}) must not store more than plain Euclidean ({})",
        normalized.total_stored(),
        plain.total_stored()
    );
}

#[test]
fn paper_methods_are_reachable_through_the_extended_catalogue() {
    let full = generate(WorkloadKind::EarlyGather);
    for method in Method::ALL {
        let direct = Reducer::with_default_threshold(method).reduce_app(&full);
        let wrapped = ExtendedReducer::with_default_threshold(ExtendedMethod::Paper(method))
            .reduce_app(&full);
        assert_eq!(direct.total_stored(), wrapped.total_stored(), "{method}");
        assert_eq!(direct.total_execs(), wrapped.total_execs(), "{method}");
    }
}
