//! Workspace smoke test: every facade re-export resolves and the crates
//! compose — generate a workload with `sim`, reduce it with `reduce`,
//! round-trip both traces through `format`, and encode with `model`'s
//! binary codec, all through the `trace_reduction` umbrella crate only.

use trace_reduction::format::{
    parse_app_trace, parse_reduced_trace, write_app_trace, write_reduced_trace,
};
use trace_reduction::model::codec::{decode_app_trace, encode_app_trace};
use trace_reduction::reduce::{Method, MethodConfig, Reducer};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

#[test]
fn facade_generates_reduces_and_round_trips() {
    // sim: a tiny deterministic workload with a known behaviour.
    let full = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
    assert!(full.rank_count() > 0);
    assert!(full.total_events() > 0);

    // reduce: similarity-based reduction at the paper's default threshold.
    let reducer = Reducer::new(MethodConfig::with_default_threshold(Method::AvgWave));
    let reduced = reducer.reduce_app(&full);
    assert_eq!(reduced.rank_count(), full.rank_count());

    // format: both trace kinds survive a text round trip.
    let full_again = parse_app_trace(&write_app_trace(&full)).expect("full trace text round trip");
    assert_eq!(full, full_again);
    let reduced_again =
        parse_reduced_trace(&write_reduced_trace(&reduced)).expect("reduced trace text round trip");
    assert_eq!(reduced, reduced_again);

    // model: the binary codec agrees with the text path.
    let decoded = decode_app_trace(&encode_app_trace(&full)).expect("binary round trip");
    assert_eq!(full, decoded);

    // reconstruction stays within the structure of the original.
    let approx = reduced.reconstruct();
    assert_eq!(approx.rank_count(), full.rank_count());
    assert_eq!(approx.total_events(), full.total_events());
}

#[test]
fn facade_modules_all_resolve() {
    // One symbol per re-exported crate, so a dropped facade wire fails here
    // at compile time.
    let _ = trace_reduction::analysis::MetricKind::ExecutionTime;
    let _ = trace_reduction::clustering::Linkage::Average;
    let _ = trace_reduction::eval::criteria::file_size_percent;
    let _ = trace_reduction::format::parse_app_trace;
    let _ = trace_reduction::model::Time::from_nanos(1);
    let _ = trace_reduction::reduce::Method::AvgWave;
    let _ = trace_reduction::sampling::SamplingPolicy::EveryNth(2);
    let _ = trace_reduction::sim::SizePreset::Tiny;
    let _ = trace_reduction::wavelet::next_power_of_two(3);
}
