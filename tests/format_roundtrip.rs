//! Integration tests for the text trace format: every workload and every
//! reduction method must round trip losslessly, and the text form must stay
//! consistent with the binary codec.

use trace_reduction::format::{
    parse_app_trace, parse_reduced_trace, write_app_trace, write_reduced_trace,
};
use trace_reduction::model::codec::{decode_app_trace, encode_app_trace};
use trace_reduction::reduce::{Method, Reducer};
use trace_reduction::sampling::{sample_app, SamplingPolicy};
use trace_reduction::sim::{SizePreset, Workload};

#[test]
fn all_eighteen_workloads_round_trip_through_the_text_format() {
    for workload in Workload::all(SizePreset::Tiny) {
        let app = workload.generate();
        let text = write_app_trace(&app);
        let parsed = parse_app_trace(&text).unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
        assert_eq!(parsed, app, "{}", workload.name());
    }
}

#[test]
fn text_and_binary_formats_agree_on_the_same_trace() {
    let app = Workload::all(SizePreset::Tiny)[0].generate();
    let via_text = parse_app_trace(&write_app_trace(&app)).unwrap();
    let via_binary = decode_app_trace(&encode_app_trace(&app)).unwrap();
    assert_eq!(via_text, via_binary);
}

#[test]
fn reduced_traces_from_every_method_round_trip() {
    let app = Workload::all(SizePreset::Tiny)[2].generate();
    for method in Method::ALL {
        let reduced = Reducer::with_default_threshold(method).reduce_app(&app);
        let text = write_reduced_trace(&reduced);
        let parsed = parse_reduced_trace(&text).unwrap_or_else(|e| panic!("{method}: {e}"));
        assert_eq!(parsed, reduced, "{method}");
        // The round-tripped reduced trace reconstructs to the same
        // approximation as the original reduced trace.
        assert_eq!(
            parsed.reconstruct().total_events(),
            reduced.reconstruct().total_events(),
            "{method}"
        );
    }
}

#[test]
fn sampled_traces_also_round_trip() {
    let app = Workload::all(SizePreset::Tiny)[5].generate();
    let sampled = sample_app(&app, SamplingPolicy::EveryNth(4));
    let parsed = parse_reduced_trace(&write_reduced_trace(&sampled)).unwrap();
    assert_eq!(parsed, sampled);
}

#[test]
fn text_format_is_line_oriented_and_greppable() {
    // A smoke test of the property the format exists for: someone can grep a
    // trace for a function name and find one line per event.
    let app = Workload::all(SizePreset::Tiny)[0].generate();
    let text = write_app_trace(&app);
    let barrier_region = app
        .regions
        .lookup("MPI_Gather")
        .or_else(|| app.regions.lookup("MPI_Recv"));
    if let Some(region) = barrier_region {
        let expected: usize = app
            .ranks
            .iter()
            .map(|r| r.events().filter(|e| e.region == region).count())
            .sum();
        let event_lines = text
            .lines()
            .filter(|l| l.starts_with(&format!("EVENT {} ", region.as_u32())))
            .count();
        assert_eq!(event_lines, expected);
    }
}
