#![forbid(unsafe_code)]
//! Umbrella crate re-exporting the trace-reduction workspace public API.
//!
//! See the individual crates for details:
//! * [`trace_model`] — trace/event/segment data model and binary codec.
//! * [`trace_sim`] — virtual-time message-passing simulator and workloads.
//! * [`trace_wavelet`] — discrete wavelet transforms used by wavelet metrics.
//! * [`trace_reduce`] — segmentation, similarity metrics, reduction, reconstruction.
//! * [`trace_analysis`] — EXPERT-like wait-state analysis and trend comparison.
//! * [`trace_eval`] — evaluation criteria and the paper's experiment drivers.
//! * [`trace_sampling`] — sampling-based reduction (segment sampling,
//!   statistical event profiles, periodicity detection, trace confidence).
//! * [`trace_clustering`] — inter-process clustering and representative-rank
//!   reduction.
//! * [`trace_format`] — OTF-style text trace format writer/parser.
//! * [`trace_stream`] — online, bounded-memory streaming reduction over
//!   text trace files and chunked binary containers (incremental parsers,
//!   online reducer, sharded drivers).
//! * [`trace_container`] — chunked, indexed binary trace container
//!   (`.trc` v2) with CRC-checked chunks and a seekable index footer.
//! * [`trace_compress`] — per-chunk compression codecs for the container:
//!   trace-aware column transforms and a self-contained LZ byte backend.
//! * [`trace_obs`] — self-instrumentation: unified metrics registry, stage
//!   span timers and machine-readable run reports (text/JSON/chrome-trace).
//! * [`trace_report`] — reduced-trace analysis reports: per-rank divergence,
//!   region trie, HTML / chrome://tracing / text sinks.

pub use trace_analysis as analysis;
pub use trace_clustering as clustering;
pub use trace_compress as compress;
pub use trace_container as container;
pub use trace_eval as eval;
pub use trace_format as format;
pub use trace_model as model;
pub use trace_obs as obs;
pub use trace_reduce as reduce;
pub use trace_report as report;
pub use trace_sampling as sampling;
pub use trace_sim as sim;
pub use trace_stream as stream;
pub use trace_wavelet as wavelet;
