//! KOJAK-style performance-trend charts (Figures 4, 7 and 8): the diagnosis
//! of the full trace followed by the diagnosis of every method's
//! reconstructed trace, for `dyn_load_balance` (Figure 7) and `1to1r_1024`
//! (Figure 8).
//!
//! Run with:
//! ```text
//! cargo run --release --example trend_grids                 # both figures
//! cargo run --release --example trend_grids -- sweep3d_8p   # any workload by name
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::eval::comparative::trend_grids;
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn preset_from_env() -> SizePreset {
    match std::env::var("TRACE_REPRO_PRESET").as_deref() {
        Ok("paper") => SizePreset::Paper,
        Ok("tiny") => SizePreset::Tiny,
        _ => SizePreset::Small,
    }
}

fn main() {
    let preset = preset_from_env();
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if requested.is_empty() {
        vec!["dyn_load_balance".into(), "1to1r_1024".into()]
    } else {
        requested
    };

    for name in names {
        let Some(kind) = WorkloadKind::by_name(&name) else {
            eprintln!("unknown workload '{name}'; known workloads:");
            for k in WorkloadKind::all_paper() {
                eprintln!("  {}", k.name());
            }
            std::process::exit(1);
        };
        let full = Workload::new(kind, preset).generate();
        println!("{}", trend_grids(&full));
    }
}
