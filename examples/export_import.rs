//! Export/import demo: move traces between the binary codec and the
//! OTF-style text format, reduce them, and compare file sizes.
//!
//! Run with:
//! ```text
//! cargo run --release --example export_import
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::format::{parse_app_trace, write_app_trace, write_reduced_trace};
use trace_reduction::model::codec::{encode_app_trace, encode_reduced_trace};
use trace_reduction::reduce::{Method, Reducer};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn main() {
    let app = Workload::new(WorkloadKind::Sweep3d8p, SizePreset::Small).generate();

    // Export the full trace in both formats.
    let binary = encode_app_trace(&app);
    let text = write_app_trace(&app);
    println!(
        "full trace {}: {} events\n  binary codec: {:>9} bytes\n  text format : {:>9} bytes",
        app.name,
        app.total_events(),
        binary.len(),
        text.len()
    );

    // Re-import the text form and check it is lossless.
    let reparsed = parse_app_trace(&text).expect("the writer always produces parsable output");
    assert_eq!(reparsed, app);
    println!("  text round trip: lossless");

    // Reduce and export the reduced trace in both formats.
    for method in [Method::AvgWave, Method::IterAvg, Method::RelDiff] {
        let reduced = Reducer::with_default_threshold(method).reduce_app(&app);
        let reduced_binary = encode_reduced_trace(&reduced);
        let reduced_text = write_reduced_trace(&reduced);
        println!(
            "reduced with {:<8}: binary {:>9} bytes ({:>5.1}% of full), text {:>9} bytes",
            method.name(),
            reduced_binary.len(),
            100.0 * reduced_binary.len() as f64 / binary.len() as f64,
            reduced_text.len()
        );
    }

    println!(
        "\nThe binary codec is what the paper-style file-size percentages are measured\n\
         against; the text format exists for interoperability and debugging (try\n\
         `trace-tools convert --in trace.trc --out trace.txt`)."
    );
}
