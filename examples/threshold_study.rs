//! The threshold study of Section 5.1 (appendix Figures 9–19 and
//! Tables 1–18): sweep every method over its threshold grid and report file
//! size, approximation distance and trend retention per workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example threshold_study                # reduced-size runs
//! cargo run --release --example threshold_study -- relDiff     # a single method
//! TRACE_REPRO_PRESET=paper cargo run --release --example threshold_study
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::eval::threshold::{
    threshold_figure_table, threshold_study_for_method, trend_retention_by_threshold_table,
};
use trace_reduction::reduce::Method;
use trace_reduction::sim::{SizePreset, Workload};

fn preset_from_env() -> SizePreset {
    match std::env::var("TRACE_REPRO_PRESET").as_deref() {
        Ok("paper") => SizePreset::Paper,
        Ok("tiny") => SizePreset::Tiny,
        _ => SizePreset::Small,
    }
}

fn main() {
    let preset = preset_from_env();
    let only_method = std::env::args()
        .nth(1)
        .and_then(|name| Method::by_name(&name));
    if let Some(m) = only_method {
        eprintln!("restricting the sweep to {}", m.name());
    }

    eprintln!("generating the 18 paper workloads ({preset:?} preset)...");
    let traces: Vec<_> = Workload::all(preset).iter().map(|w| w.generate()).collect();
    let workload_names: Vec<String> = traces.iter().map(|t| t.name.clone()).collect();

    for method in Method::ALL {
        if let Some(only) = only_method {
            if only != method {
                continue;
            }
        }
        if !method.has_threshold() {
            continue;
        }
        eprintln!(
            "sweeping {} over {:?}...",
            method.name(),
            method.threshold_grid()
        );
        let points = threshold_study_for_method(&traces, method);
        println!("{}", threshold_figure_table(method, &points).render());
        for workload in &workload_names {
            println!(
                "{}",
                trend_retention_by_threshold_table(workload, &points).render()
            );
        }
    }
}
