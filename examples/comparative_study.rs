//! The comparative study of Section 5.2 (Figures 5 and 6 plus the method
//! ranking), over all 18 workloads of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example comparative_study            # reduced-size runs
//! TRACE_REPRO_PRESET=paper cargo run --release --example comparative_study
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::eval::comparative::comparative_study;
use trace_reduction::sim::{SizePreset, Workload};

fn preset_from_env() -> SizePreset {
    match std::env::var("TRACE_REPRO_PRESET").as_deref() {
        Ok("paper") => SizePreset::Paper,
        Ok("tiny") => SizePreset::Tiny,
        _ => SizePreset::Small,
    }
}

fn main() {
    let preset = preset_from_env();
    eprintln!("generating the 18 paper workloads ({preset:?} preset)...");
    let traces: Vec<_> = Workload::all(preset)
        .iter()
        .map(|w| {
            eprintln!("  {}", w.name());
            w.generate()
        })
        .collect();

    eprintln!("running all nine methods at their default thresholds...");
    let study = comparative_study(&traces);

    println!("{}", study.figure5_table().render());
    println!("{}", study.figure6_table().render());
    println!("{}", study.trend_retention_table().render());
    println!("{}", study.summary_table().render());

    println!("Average file-size ranking (smallest first):");
    for (method, size) in study.average_file_size_ranking() {
        println!("  {:<10} {:>7.2}%", method.name(), size);
    }
    println!(
        "\nCorrect diagnoses per method (out of {}):",
        study.workloads().len()
    );
    for (method, count) in study.correct_diagnosis_counts() {
        println!("  {:<10} {}", method.name(), count);
    }
}
