//! Plugging a custom similarity metric into the reduction pipeline.
//!
//! The predicate-based reducer lets downstream users evaluate their own
//! similarity definitions against the paper's methods without touching the
//! stored-segments algorithm.  This example defines a simple
//! "communication-time only" metric (segments match when their total
//! communication time differs by less than 10%), compares it with the
//! built-in DTW extension and with the paper's avgWave method, and reports
//! the three criteria that matter: size, error, and trend retention.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_metric
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::eval::criteria::{
    approximation_distance_us, file_size_percent, trends_retained,
};
use trace_reduction::model::Segment;
use trace_reduction::reduce::{
    reduce_app_with_predicate, ExtendedMethod, ExtendedReducer, Method, Reducer,
};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

/// A deliberately coarse user-defined metric: two segments are similar when
/// their total communication time differs by at most 10% (relative to the
/// larger one).
fn comm_time_metric(a: &Segment, b: &Segment) -> bool {
    let ca = a.communication_time().as_f64();
    let cb = b.communication_time().as_f64();
    let max = ca.max(cb);
    max == 0.0 || (ca - cb).abs() <= 0.10 * max
}

fn main() {
    let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Small).generate();
    println!(
        "workload {}: {} ranks, {} events\n",
        full.name,
        full.rank_count(),
        full.total_events()
    );
    println!(
        "{:<22} {:>12} {:>18} {:>10}",
        "method", "file size %", "approx dist (us)", "trends"
    );

    let report = |label: &str, reduced: trace_reduction::model::ReducedAppTrace| {
        let approx = reduced.reconstruct();
        let trend = trends_retained(&full, &approx);
        println!(
            "{:<22} {:>12.2} {:>18.2} {:>10}",
            label,
            file_size_percent(&full, &reduced),
            approximation_distance_us(&full, &approx),
            if trend.retained { "retained" } else { "LOST" }
        );
    };

    // The paper's recommended method.
    report(
        "avgWave(0.2)",
        Reducer::with_default_threshold(Method::AvgWave).reduce_app(&full),
    );
    // An extension method from the built-in catalogue.
    report(
        "dtw(0.2)",
        ExtendedReducer::with_default_threshold(ExtendedMethod::Dtw).reduce_app(&full),
    );
    // The user-defined metric.
    report(
        "custom comm-time 10%",
        reduce_app_with_predicate(&full, comm_time_metric),
    );

    println!(
        "\nThe custom metric matches aggressively (it ignores compute-time changes), so it\n\
         produces the smallest file but loses the load-imbalance trend that avgWave keeps —\n\
         exactly the trade-off the paper's evaluation criteria are designed to expose."
    );
}
