//! Quickstart: generate a trace, reduce it, reconstruct it, and evaluate the
//! reduction with all four criteria of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::analysis::{compare_diagnoses, diagnose, ComparisonConfig};
use trace_reduction::eval::criteria::{approximation_distance_us, file_size_percent};
use trace_reduction::model::codec::{encode_app_trace, encode_reduced_trace};
use trace_reduction::reduce::{Method, Reducer};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn main() {
    // 1. "Run" a message-passing program with a known performance problem:
    //    the receivers of each rank pair block in MPI_Recv because their
    //    senders are late.
    let full = Workload::new(WorkloadKind::LateSender, SizePreset::Small).generate();
    println!(
        "full trace: {} ranks, {} events, {} bytes encoded",
        full.rank_count(),
        full.total_events(),
        encode_app_trace(&full).len()
    );

    // 2. Reduce each rank's trace with the average-wavelet similarity metric
    //    at the paper's recommended threshold (0.2).
    let reducer = Reducer::with_default_threshold(Method::AvgWave);
    let reduced = reducer.reduce_app(&full);
    println!(
        "reduced trace: {} representative segments for {} segment executions ({} bytes, {:.1}% of full)",
        reduced.total_stored(),
        reduced.total_execs(),
        encode_reduced_trace(&reduced).len(),
        file_size_percent(&full, &reduced),
    );
    println!("degree of matching: {:.3}", reduced.degree_of_matching());

    // 3. Reconstruct an approximate full trace and measure the error.
    let approx = reduced.reconstruct();
    println!(
        "approximation distance (90th pct time-stamp error): {:.1} us",
        approximation_distance_us(&full, &approx)
    );

    // 4. Check that a performance analyst would still reach the same
    //    conclusion (a Late Sender problem at MPI_Recv on the odd ranks).
    let reference = diagnose(&full);
    let candidate = diagnose(&approx);
    let comparison = compare_diagnoses(&reference, &candidate, &ComparisonConfig::default());
    println!(
        "performance trends retained: {} (score {:.2})",
        comparison.retained, comparison.score
    );
    println!("\nFull-trace diagnosis:\n{}", reference.render_chart());
    println!("Reduced-trace diagnosis:\n{}", candidate.render_chart());
}
