//! Inter-process clustering demo: group the ranks of a run by behaviour and
//! keep one representative trace per cluster.
//!
//! `dyn_load_balance` makes half the ranks do progressively more work, so the
//! natural clustering is "upper half vs. lower half"; Sweep3D's wavefront
//! pipeline gives corner/edge/interior ranks different wait profiles.
//!
//! Run with:
//! ```text
//! cargo run --release --example cluster_ranks
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::clustering::{
    cluster_reduce, euclidean_distance_matrix, hierarchical_clustering, kmeans, rank_features,
    silhouette_score, KMeansConfig, Linkage, Normalization,
};
use trace_reduction::eval::criteria::approximation_distance_us;
use trace_reduction::model::codec::encode_app_trace;
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn main() {
    for kind in [WorkloadKind::DynLoadBalance, WorkloadKind::Sweep3d32p] {
        let app = Workload::new(kind, SizePreset::Small).generate();
        println!("== {} ({} ranks) ==", app.name, app.rank_count());

        let features = rank_features(&app, Normalization::MinMax);
        let matrix = euclidean_distance_matrix(&features);

        // Pick k by silhouette over a small candidate range, comparing
        // k-means and average-linkage hierarchical clustering.
        let mut best: Option<(String, usize, Vec<usize>, f64)> = None;
        for k in 2..=4usize {
            let km = kmeans(&features, &KMeansConfig::new(k));
            let km_score = silhouette_score(&matrix, &km.assignments);
            let hc = hierarchical_clustering(&matrix, k, Linkage::Average);
            let hc_score = silhouette_score(&matrix, &hc);
            for (label, assignments, score) in [
                ("kmeans", km.assignments, km_score),
                ("hierarchical", hc, hc_score),
            ] {
                if best.as_ref().map(|(_, _, _, s)| score > *s).unwrap_or(true) {
                    best = Some((label.to_string(), k, assignments, score));
                }
            }
        }
        let (algorithm, k, assignments, score) = best.expect("candidate range is non-empty");
        println!("best clustering: {algorithm} with k={k} (silhouette {score:.3})");
        println!("assignments: {assignments:?}");

        let clustered = cluster_reduce(&app, &assignments, &matrix);
        let full_bytes = encode_app_trace(&app).len();
        let retained_bytes = encode_app_trace(&clustered.retained).len();
        let approx = clustered.reconstruct();
        println!(
            "representatives: {:?} -> retained {:.1}% of the encoded trace",
            clustered.representatives,
            100.0 * retained_bytes as f64 / full_bytes as f64
        );
        println!(
            "approximation distance after substituting representatives: {:.1} us\n",
            approximation_distance_us(&app, &approx)
        );
    }
}
