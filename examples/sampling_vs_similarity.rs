//! Extension study: similarity-based reduction versus trace sampling,
//! periodicity-based reduction and inter-process clustering.
//!
//! The paper's conclusion names trace sampling and additional difference
//! methods as future work; this example runs that comparison over a
//! representative subset of the paper's workloads and prints the per-workload
//! detail table plus the per-technique summary.
//!
//! Run with:
//! ```text
//! cargo run --release --example sampling_vs_similarity
//! TRACE_REPRO_PRESET=paper cargo run --release --example sampling_vs_similarity
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::eval::{extension_study, extension_summary_table, extension_table};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn preset_from_env() -> SizePreset {
    match std::env::var("TRACE_REPRO_PRESET").as_deref() {
        Ok("paper") => SizePreset::Paper,
        Ok("tiny") => SizePreset::Tiny,
        _ => SizePreset::Small,
    }
}

fn main() {
    let preset = preset_from_env();
    // One workload per category: regular, interference, dynamic load
    // balance, and the Sweep3D application.
    let kinds = [
        WorkloadKind::LateSender,
        WorkloadKind::by_name("NtoN_32").expect("interference workload exists"),
        WorkloadKind::DynLoadBalance,
        WorkloadKind::Sweep3d8p,
    ];
    eprintln!(
        "generating {} workloads ({preset:?} preset)...",
        kinds.len()
    );
    let traces: Vec<_> = kinds
        .iter()
        .map(|&kind| {
            eprintln!("  {}", kind.name());
            Workload::new(kind, preset).generate()
        })
        .collect();

    eprintln!(
        "evaluating the extension catalogue (similarity, sampling, periodicity, clustering)..."
    );
    let evaluations = extension_study(&traces);

    println!("{}", extension_table(&evaluations).render());
    println!("{}", extension_summary_table(&evaluations).render());

    println!(
        "Reading the summary: the similarity methods keep trends at a given size budget,\n\
         sampling trades error for predictable size, clustering shrinks by the cluster\n\
         ratio but loses per-rank disparities (compare the dyn_load_balance rows)."
    );
}
