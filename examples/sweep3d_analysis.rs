//! Reducing and analysing the Sweep3D application traces (the paper's
//! full-application case study, Section 4.2 / 5.2).
//!
//! For both the 8-process and the 32-process run this example reports, per
//! method: file size percentage, degree of matching, approximation distance
//! and trend retention — the data behind the sweep3d columns of Figures 5
//! and 6 and the sweep3d rows of the trend-retention discussion.
//!
//! Run with:
//! ```text
//! cargo run --release --example sweep3d_analysis
//! TRACE_REPRO_PRESET=paper cargo run --release --example sweep3d_analysis
//! ```

// Examples print their results to stdout by design.
#![allow(clippy::print_stdout)]

use trace_reduction::eval::evaluation::evaluate_all_methods;
use trace_reduction::eval::report::{fmt_f64, fmt_retained, Table};
use trace_reduction::sim::{SizePreset, Workload, WorkloadKind};

fn preset_from_env() -> SizePreset {
    match std::env::var("TRACE_REPRO_PRESET").as_deref() {
        Ok("paper") => SizePreset::Paper,
        Ok("tiny") => SizePreset::Tiny,
        _ => SizePreset::Small,
    }
}

fn main() {
    let preset = preset_from_env();
    for kind in [WorkloadKind::Sweep3d8p, WorkloadKind::Sweep3d32p] {
        let full = Workload::new(kind, preset).generate();
        eprintln!(
            "{}: {} ranks, {} events",
            full.name,
            full.rank_count(),
            full.total_events()
        );
        let mut table = Table::new(
            format!("Sweep3D evaluation — {}", full.name),
            &[
                "method",
                "file size %",
                "degree of matching",
                "approx distance (us)",
                "trends retained",
            ],
        );
        for eval in evaluate_all_methods(&full) {
            table.push_row(vec![
                eval.config.method.name().to_string(),
                fmt_f64(eval.file_size_percent),
                fmt_f64(eval.degree_of_matching),
                fmt_f64(eval.approximation_distance_us),
                fmt_retained(eval.trends_retained),
            ]);
        }
        println!("{}", table.render());
    }
}
