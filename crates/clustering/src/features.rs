//! Per-rank feature extraction.
//!
//! Statistical clustering of processes operates on a feature vector per rank
//! summarizing that rank's behaviour.  Following Nickolayev et al. and Lee et
//! al., the features are derived from the same trace the similarity methods
//! see: inclusive time per code region, total communication and wait time,
//! and message counts/volumes.

use trace_model::{AppTrace, CommInfo};

/// How to normalize feature columns before clustering.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Normalization {
    /// Use raw values (nanoseconds, counts, bytes).
    None,
    /// Scale every column to `[0, 1]` (min–max normalization).
    #[default]
    MinMax,
    /// Standardize every column to zero mean and unit variance.
    ZScore,
}

/// A per-rank feature matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMatrix {
    /// Names of the feature columns.
    pub names: Vec<String>,
    /// One row per rank, in rank order.
    pub rows: Vec<Vec<f64>>,
}

impl FeatureMatrix {
    /// Number of ranks (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Applies a normalization to every column, returning a new matrix.
    pub fn normalized(&self, normalization: Normalization) -> FeatureMatrix {
        let mut rows = self.rows.clone();
        if rows.is_empty() {
            return self.clone();
        }
        let cols = self.width();
        match normalization {
            Normalization::None => {}
            Normalization::MinMax => {
                for c in 0..cols {
                    let min = rows.iter().map(|r| r[c]).fold(f64::INFINITY, f64::min);
                    let max = rows.iter().map(|r| r[c]).fold(f64::NEG_INFINITY, f64::max);
                    let span = max - min;
                    for row in &mut rows {
                        row[c] = if span > 0.0 {
                            (row[c] - min) / span
                        } else {
                            0.0
                        };
                    }
                }
            }
            Normalization::ZScore => {
                for c in 0..cols {
                    let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
                    let mean = trace_model::stats::mean(&col);
                    let sd = trace_model::stats::std_dev(&col);
                    for row in &mut rows {
                        row[c] = if sd > 0.0 { (row[c] - mean) / sd } else { 0.0 };
                    }
                }
            }
        }
        FeatureMatrix {
            names: self.names.clone(),
            rows,
        }
    }
}

/// Extracts the per-rank feature matrix of an application trace.
///
/// Columns: inclusive time per region (one column per interned region name,
/// in id order), followed by `comm_time_ns`, `wait_time_ns`,
/// `message_count`, and `message_bytes`.
pub fn rank_features(app: &AppTrace, normalization: Normalization) -> FeatureMatrix {
    let region_count = app.regions.len();
    let mut names: Vec<String> = app
        .regions
        .names()
        .iter()
        .map(|n| format!("time[{n}]"))
        .collect();
    names.extend(
        [
            "comm_time_ns",
            "wait_time_ns",
            "message_count",
            "message_bytes",
        ]
        .iter()
        .map(|s| s.to_string()),
    );

    let rows = app
        .ranks
        .iter()
        .map(|rank| {
            let mut row = vec![0.0; region_count + 4];
            for event in rank.events() {
                let duration = event.duration().as_f64();
                row[event.region.as_u32() as usize] += duration;
                if event.comm.is_communication() {
                    row[region_count] += duration;
                    row[region_count + 2] += 1.0;
                    row[region_count + 3] += match event.comm {
                        CommInfo::Send { bytes, .. } | CommInfo::Recv { bytes, .. } => bytes as f64,
                        CommInfo::SendRecv { bytes, .. } => 2.0 * bytes as f64,
                        CommInfo::Collective { bytes, .. } => bytes as f64,
                        CommInfo::Compute => 0.0,
                    };
                }
                row[region_count + 1] += event.wait.as_f64();
            }
            row
        })
        .collect();

    FeatureMatrix { names, rows }.normalized(normalization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn feature_matrix_has_one_row_per_rank() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::None);
        assert_eq!(features.len(), app.rank_count());
        assert_eq!(features.width(), app.regions.len() + 4);
        assert!(features.rows.iter().all(|r| r.len() == features.width()));
        assert!(!features.is_empty());
    }

    #[test]
    fn raw_features_are_nonnegative_and_nonzero_somewhere() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::None);
        assert!(features.rows.iter().flatten().all(|&v| v >= 0.0));
        assert!(features.rows.iter().flatten().any(|&v| v > 0.0));
    }

    #[test]
    fn min_max_normalization_bounds_columns() {
        let app = Workload::new(WorkloadKind::ImbalanceAtMpiBarrier, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::MinMax);
        for row in &features.rows {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "{v} out of [0,1]");
            }
        }
    }

    #[test]
    fn zscore_normalization_centers_columns() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::ZScore);
        for c in 0..features.width() {
            let col: Vec<f64> = features.rows.iter().map(|r| r[c]).collect();
            let mean = trace_model::stats::mean(&col);
            assert!(mean.abs() < 1e-6, "column {c} mean {mean} not centred");
        }
    }

    #[test]
    fn constant_columns_normalize_to_zero() {
        let matrix = FeatureMatrix {
            names: vec!["a".into(), "b".into()],
            rows: vec![vec![5.0, 1.0], vec![5.0, 3.0]],
        };
        let minmax = matrix.normalized(Normalization::MinMax);
        assert_eq!(minmax.rows[0][0], 0.0);
        assert_eq!(minmax.rows[1][0], 0.0);
        let z = matrix.normalized(Normalization::ZScore);
        assert_eq!(z.rows[0][0], 0.0);
    }

    #[test]
    fn imbalanced_workload_produces_distinguishable_rows() {
        // dyn_load_balance makes half the ranks do more work: their feature
        // rows must differ from the other half's.
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::MinMax);
        let n = features.len();
        let first = &features.rows[0];
        let last = &features.rows[n - 1];
        assert_ne!(
            first, last,
            "load-imbalanced ranks should have different features"
        );
    }
}
