//! Deterministic k-means clustering with k-means++ seeding.
//!
//! Nickolayev et al. cluster processes with k-means over per-rank statistics
//! and keep one representative per cluster.  This implementation is seeded
//! deterministically so every experiment in the workspace is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::FeatureMatrix;

/// Configuration of the k-means run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed for the k-means++ seeding.
    pub seed: u64,
}

impl KMeansConfig {
    /// Creates a configuration with the default iteration cap and seed.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            seed: 0xC1_05_7E_12,
        }
    }
}

/// The result of a k-means run.
#[derive(Clone, Debug, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per row (rank), in row order.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` rows of feature width.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of every row to its centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of non-empty clusters.
    pub fn cluster_count(&self) -> usize {
        let mut seen = vec![false; self.centroids.len()];
        for &a in &self.assignments {
            seen[a] = true;
        }
        seen.into_iter().filter(|&s| s).count()
    }

    /// Row indices grouped by cluster.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.centroids.len()];
        for (row, &cluster) in self.assignments.iter().enumerate() {
            groups[cluster].push(row);
        }
        groups
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding: the first centroid is the row closest to the overall
/// mean (deterministic), later centroids are drawn with probability
/// proportional to the squared distance from the nearest existing centroid.
fn seed_centroids(rows: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let width = rows[0].len();
    let mean: Vec<f64> = (0..width)
        .map(|c| rows.iter().map(|r| r[c]).sum::<f64>() / rows.len() as f64)
        .collect();
    let first = rows
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| squared_distance(a, &mean).total_cmp(&squared_distance(b, &mean)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    centroids.push(rows[first].clone());

    while centroids.len() < k {
        let weights: Vec<f64> = rows
            .iter()
            .map(|row| {
                centroids
                    .iter()
                    .map(|c| squared_distance(row, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // All rows coincide with existing centroids; duplicate one.
            centroids.push(centroids[0].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = rows.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            if target <= w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(rows[chosen].clone());
    }
    centroids
}

/// Runs k-means over the feature matrix.
///
/// `k` is clamped to the number of rows; an empty matrix produces an empty
/// result.
pub fn kmeans(features: &FeatureMatrix, config: &KMeansConfig) -> KMeansResult {
    let rows = &features.rows;
    if rows.is_empty() || config.k == 0 {
        return KMeansResult {
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = config.k.min(rows.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = seed_centroids(rows, k, &mut rng);
    let mut assignments = vec![0usize; rows.len()];
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, row) in rows.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    squared_distance(row, &centroids[a])
                        .total_cmp(&squared_distance(row, &centroids[b]))
                })
                .unwrap();
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let width = rows[0].len();
        let mut sums = vec![vec![0.0; width]; k];
        let mut counts = vec![0usize; k];
        for (row, &cluster) in rows.iter().zip(&assignments) {
            counts[cluster] += 1;
            for (s, v) in sums[cluster].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    let inertia = rows
        .iter()
        .zip(&assignments)
        .map(|(row, &c)| squared_distance(row, &centroids[c]))
        .sum();

    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> FeatureMatrix {
        let width = rows.first().map(Vec::len).unwrap_or(0);
        FeatureMatrix {
            names: (0..width).map(|i| format!("f{i}")).collect(),
            rows,
        }
    }

    #[test]
    fn separates_two_obvious_groups() {
        let features = matrix(vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![10.05, 9.95],
        ]);
        let result = kmeans(&features, &KMeansConfig::new(2));
        assert_eq!(result.cluster_count(), 2);
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[0], result.assignments[2]);
        assert_eq!(result.assignments[3], result.assignments[4]);
        assert_ne!(result.assignments[0], result.assignments[3]);
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn k_equal_to_rows_gives_zero_inertia() {
        let features = matrix(vec![vec![1.0], vec![2.0], vec![5.0]]);
        let result = kmeans(&features, &KMeansConfig::new(3));
        assert_eq!(result.cluster_count(), 3);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn k_larger_than_rows_is_clamped() {
        let features = matrix(vec![vec![1.0], vec![2.0]]);
        let result = kmeans(&features, &KMeansConfig::new(10));
        assert_eq!(result.centroids.len(), 2);
        assert_eq!(result.assignments.len(), 2);
    }

    #[test]
    fn identical_rows_collapse_into_one_effective_cluster() {
        let features = matrix(vec![vec![3.0, 3.0]; 6]);
        let result = kmeans(&features, &KMeansConfig::new(3));
        assert!(result.inertia < 1e-12);
        // Every row is equally close to every centroid; they all land in
        // cluster 0 and the result is still well formed.
        assert!(result
            .assignments
            .iter()
            .all(|&a| a < result.centroids.len()));
    }

    #[test]
    fn empty_inputs_and_zero_k() {
        let empty = matrix(Vec::new());
        let result = kmeans(&empty, &KMeansConfig::new(3));
        assert!(result.assignments.is_empty());
        let features = matrix(vec![vec![1.0]]);
        let zero_k = kmeans(
            &features,
            &KMeansConfig {
                k: 0,
                ..KMeansConfig::new(1)
            },
        );
        assert!(zero_k.centroids.is_empty());
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let features = matrix(
            (0..20)
                .map(|i| vec![(i % 5) as f64, (i / 5) as f64 * 3.0])
                .collect(),
        );
        let a = kmeans(&features, &KMeansConfig::new(4));
        let b = kmeans(&features, &KMeansConfig::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn members_partition_the_rows() {
        let features = matrix(vec![vec![0.0], vec![0.2], vec![9.0], vec![9.3], vec![0.1]]);
        let result = kmeans(&features, &KMeansConfig::new(2));
        let members = result.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let mut all: Vec<usize> = members.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
