//! Representative-rank selection and the cluster-reduced trace.
//!
//! After clustering the ranks, the inter-process reduction keeps the full
//! trace of one *representative* rank per cluster (the medoid — the member
//! with the smallest total distance to the rest of its cluster) and discards
//! the other rank traces.  An approximate full trace is reconstructed by
//! substituting each discarded rank's trace with a copy of its
//! representative's trace, which is exactly what an analyst looking at the
//! representative would implicitly assume about the other members.

use trace_model::{AppTrace, Rank, RankTrace};

/// The result of an inter-process (cluster-based) reduction.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusteredTrace {
    /// Name of the traced program.
    pub name: String,
    /// Cluster index per rank, in rank order.
    pub assignments: Vec<usize>,
    /// Representative rank index per cluster (indexed by cluster id).
    pub representatives: Vec<usize>,
    /// The retained data: an application trace containing only the
    /// representative ranks' traces (plus the shared name tables).
    pub retained: AppTrace,
    /// Rank count of the original trace.
    pub original_ranks: usize,
}

impl ClusteredTrace {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.representatives.len()
    }

    /// The representative rank index for a given original rank.
    pub fn representative_of(&self, rank: usize) -> usize {
        self.representatives[self.assignments[rank]]
    }

    /// Fraction of rank traces that are physically retained.
    pub fn retained_fraction(&self) -> f64 {
        if self.original_ranks == 0 {
            1.0
        } else {
            self.cluster_count() as f64 / self.original_ranks as f64
        }
    }

    /// Reconstructs an approximate full application trace by copying each
    /// rank's representative trace into its slot (re-labelled with the
    /// original rank id).
    pub fn reconstruct(&self) -> AppTrace {
        let mut app = AppTrace {
            name: self.name.clone(),
            regions: self.retained.regions.clone(),
            contexts: self.retained.contexts.clone(),
            ranks: Vec::with_capacity(self.original_ranks),
        };
        for rank in 0..self.original_ranks {
            let representative = self.representative_of(rank);
            // The retained trace stores representatives in cluster order.
            let cluster = self.assignments[rank];
            let mut trace = self.retained.ranks[cluster].clone();
            trace.rank = Rank::from(rank);
            debug_assert_eq!(
                self.representatives[cluster], representative,
                "representative bookkeeping must be consistent"
            );
            app.ranks.push(trace);
        }
        app
    }
}

/// Medoid of a cluster: the member with the smallest summed distance to the
/// other members (ties broken by the lower rank index).
fn medoid(members: &[usize], matrix: &[Vec<f64>]) -> usize {
    *members
        .iter()
        .min_by(|&&a, &&b| {
            let da: f64 = members.iter().map(|&m| matrix[a][m]).sum();
            let db: f64 = members.iter().map(|&m| matrix[b][m]).sum();
            da.total_cmp(&db).then(a.cmp(&b))
        })
        .expect("clusters are non-empty")
}

/// Reduces an application trace to one representative rank trace per
/// cluster.
///
/// `assignments` gives the cluster index of every rank (as produced by
/// [`crate::kmeans()`] or [`crate::hierarchical_clustering`]); `matrix` is the
/// distance matrix used for medoid selection (typically the same one used
/// for clustering).  Cluster ids may be sparse; they are re-labelled
/// densely in the result.
///
/// # Panics
///
/// Panics if `assignments.len()` or the matrix dimensions do not match the
/// trace's rank count.
pub fn cluster_reduce(
    app: &AppTrace,
    assignments: &[usize],
    matrix: &[Vec<f64>],
) -> ClusteredTrace {
    assert_eq!(
        assignments.len(),
        app.rank_count(),
        "one assignment per rank"
    );
    assert_eq!(
        matrix.len(),
        app.rank_count(),
        "distance matrix must match rank count"
    );

    // Group ranks by cluster id and re-label densely in order of first
    // appearance so `retained.ranks[i]` corresponds to dense cluster `i`.
    let mut dense_ids: Vec<usize> = Vec::new();
    let mut dense_assignments = vec![0usize; assignments.len()];
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (rank, &cluster) in assignments.iter().enumerate() {
        let dense = match dense_ids.iter().position(|&c| c == cluster) {
            Some(d) => d,
            None => {
                dense_ids.push(cluster);
                members.push(Vec::new());
                dense_ids.len() - 1
            }
        };
        dense_assignments[rank] = dense;
        members[dense].push(rank);
    }

    let representatives: Vec<usize> = members.iter().map(|m| medoid(m, matrix)).collect();

    let retained_ranks: Vec<RankTrace> = representatives
        .iter()
        .map(|&r| app.ranks[r].clone())
        .collect();
    let retained = AppTrace {
        name: app.name.clone(),
        regions: app.regions.clone(),
        contexts: app.contexts.clone(),
        ranks: retained_ranks,
    };

    ClusteredTrace {
        name: app.name.clone(),
        assignments: dense_assignments,
        representatives,
        retained,
        original_ranks: app.rank_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean_distance_matrix;
    use crate::features::{rank_features, Normalization};
    use crate::kmeans::{kmeans, KMeansConfig};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn clustered(kind: WorkloadKind, k: usize) -> (AppTrace, ClusteredTrace) {
        let app = Workload::new(kind, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::MinMax);
        let matrix = euclidean_distance_matrix(&features);
        let result = kmeans(&features, &KMeansConfig::new(k));
        let clustered = cluster_reduce(&app, &result.assignments, &matrix);
        (app, clustered)
    }

    #[test]
    fn retains_one_rank_trace_per_cluster() {
        let (app, clustered) = clustered(WorkloadKind::DynLoadBalance, 2);
        assert!(clustered.cluster_count() <= 2);
        assert_eq!(clustered.retained.rank_count(), clustered.cluster_count());
        assert_eq!(clustered.original_ranks, app.rank_count());
        assert!(clustered.retained_fraction() <= 1.0);
        assert!(clustered.retained_fraction() > 0.0);
    }

    #[test]
    fn representatives_belong_to_their_own_cluster() {
        let (_, clustered) = clustered(WorkloadKind::DynLoadBalance, 3);
        for (cluster, &rep) in clustered.representatives.iter().enumerate() {
            assert_eq!(
                clustered.assignments[rep], cluster,
                "representative {rep} must be a member of cluster {cluster}"
            );
        }
    }

    #[test]
    fn reconstruction_restores_the_original_rank_count_and_labels() {
        let (app, clustered) = clustered(WorkloadKind::LateSender, 2);
        let approx = clustered.reconstruct();
        assert_eq!(approx.rank_count(), app.rank_count());
        for (i, rank) in approx.ranks.iter().enumerate() {
            assert_eq!(rank.rank, Rank::from(i));
            assert!(!rank.records.is_empty());
        }
        assert!(approx.is_well_formed());
    }

    #[test]
    fn representative_ranks_reconstruct_to_their_own_trace() {
        let (app, clustered) = clustered(WorkloadKind::EarlyGather, 2);
        let approx = clustered.reconstruct();
        for (cluster, &rep) in clustered.representatives.iter().enumerate() {
            let original: Vec<_> = app.ranks[rep].events().copied().collect();
            let rebuilt: Vec<_> = approx.ranks[rep].events().copied().collect();
            assert_eq!(
                original, rebuilt,
                "cluster {cluster} representative must be lossless"
            );
        }
    }

    #[test]
    fn one_cluster_per_rank_is_lossless() {
        let app = Workload::new(WorkloadKind::LateReceiver, SizePreset::Tiny).generate();
        let n = app.rank_count();
        let features = rank_features(&app, Normalization::MinMax);
        let matrix = euclidean_distance_matrix(&features);
        let assignments: Vec<usize> = (0..n).collect();
        let clustered = cluster_reduce(&app, &assignments, &matrix);
        assert_eq!(clustered.cluster_count(), n);
        let approx = clustered.reconstruct();
        assert_eq!(approx.total_events(), app.total_events());
        for (a, b) in app.ranks.iter().zip(&approx.ranks) {
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn sparse_cluster_ids_are_relabelled_densely() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let n = app.rank_count();
        let features = rank_features(&app, Normalization::MinMax);
        let matrix = euclidean_distance_matrix(&features);
        // Use sparse ids 5 and 17.
        let assignments: Vec<usize> = (0..n).map(|r| if r % 2 == 0 { 5 } else { 17 }).collect();
        let clustered = cluster_reduce(&app, &assignments, &matrix);
        assert_eq!(clustered.cluster_count(), 2);
        assert!(clustered.assignments.iter().all(|&a| a < 2));
    }

    #[test]
    #[should_panic(expected = "one assignment per rank")]
    fn mismatched_assignment_length_panics() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let matrix = vec![vec![0.0; app.rank_count()]; app.rank_count()];
        cluster_reduce(&app, &[0, 1], &matrix);
    }
}
