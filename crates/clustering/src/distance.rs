//! Distance matrices between ranks.
//!
//! Two distances from the related work: the Euclidean distance over per-rank
//! feature vectors (Nickolayev et al., Lee et al.) and a distance derived
//! from the amount of communication between pairs of processes (Aguilera et
//! al.) — ranks that exchange a lot of data are considered close.

use trace_model::{AppTrace, CommInfo};

use crate::features::FeatureMatrix;

/// Symmetric pairwise Euclidean distance matrix over the feature rows.
// The i/j index loops fill a symmetric matrix in one pass; iterator forms
// cannot hold `matrix[i][j]` and `matrix[j][i]` mutably at once.
#[allow(clippy::needless_range_loop)]
pub fn euclidean_distance_matrix(features: &FeatureMatrix) -> Vec<Vec<f64>> {
    let n = features.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = trace_model::stats::euclidean_distance(&features.rows[i], &features.rows[j]);
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

/// Communication volume matrix: `volume[i][j]` is the number of payload
/// bytes rank `i` sends to rank `j` through point-to-point operations plus
/// its per-rank share of collective payloads (attributed to the root for
/// rooted collectives and spread uniformly for N-to-N collectives).
pub fn comm_volume_matrix(app: &AppTrace) -> Vec<Vec<f64>> {
    let n = app.rank_count();
    let mut volume = vec![vec![0.0; n]; n];
    for (i, rank) in app.ranks.iter().enumerate() {
        for event in rank.events() {
            match event.comm {
                CommInfo::Send { peer, bytes, .. } => {
                    if peer.as_usize() < n {
                        volume[i][peer.as_usize()] += bytes as f64;
                    }
                }
                CommInfo::SendRecv { to, bytes, .. } => {
                    if to.as_usize() < n {
                        volume[i][to.as_usize()] += bytes as f64;
                    }
                }
                CommInfo::Collective {
                    op,
                    root,
                    comm_size,
                    bytes,
                } => {
                    let share = bytes as f64;
                    if op.is_n_to_n() {
                        let per_peer = share / comm_size.max(1) as f64;
                        for (j, slot) in volume[i].iter_mut().enumerate() {
                            if j != i {
                                *slot += per_peer;
                            }
                        }
                    } else if op.is_n_to_one() {
                        if root.as_usize() < n && root.as_usize() != i {
                            volume[i][root.as_usize()] += share;
                        }
                    } else if op.is_one_to_n() && i == root.as_usize() {
                        let per_peer = share / comm_size.max(1) as f64;
                        for (j, slot) in volume[i].iter_mut().enumerate() {
                            if j != i {
                                *slot += per_peer;
                            }
                        }
                    }
                }
                CommInfo::Recv { .. } | CommInfo::Compute => {}
            }
        }
    }
    volume
}

/// Aguilera-style communication distance matrix: ranks that exchange more
/// bytes are closer.  The distance is `1 - exchanged / max_exchanged`, where
/// `exchanged` is the symmetric sum of the two directed volumes; ranks that
/// never communicate have distance 1, the most-communicating pair has
/// distance 0, and the diagonal is 0.
pub fn communication_distance_matrix(app: &AppTrace) -> Vec<Vec<f64>> {
    let volume = comm_volume_matrix(app);
    let n = volume.len();
    let mut exchanged = vec![vec![0.0; n]; n];
    let mut max = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let v = volume[i][j] + volume[j][i];
            exchanged[i][j] = v;
            exchanged[j][i] = v;
            max = max.max(v);
        }
    }
    let mut distance = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                distance[i][j] = if max > 0.0 {
                    1.0 - exchanged[i][j] / max
                } else {
                    1.0
                };
            }
        }
    }
    distance
}

/// Checks that a matrix is a valid distance matrix: square, symmetric,
/// non-negative, zero diagonal.  Used by tests and debug assertions.
pub fn is_valid_distance_matrix(matrix: &[Vec<f64>]) -> bool {
    let n = matrix.len();
    matrix.iter().enumerate().all(|(i, row)| {
        row.len() == n
            && row.iter().all(|&v| v >= 0.0 && v.is_finite())
            // lint:allow(float_eq) -- a distance matrix diagonal is exactly zero by definition
            && matrix[i][i] == 0.0
            && (0..n).all(|j| (matrix[i][j] - matrix[j][i]).abs() < 1e-9)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{rank_features, Normalization};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn euclidean_matrix_is_a_valid_distance_matrix() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let features = rank_features(&app, Normalization::MinMax);
        let matrix = euclidean_distance_matrix(&features);
        assert!(is_valid_distance_matrix(&matrix));
        assert_eq!(matrix.len(), app.rank_count());
    }

    #[test]
    fn communication_distance_is_valid_and_bounded() {
        let app = Workload::new(WorkloadKind::ImbalanceAtMpiBarrier, SizePreset::Tiny).generate();
        let matrix = communication_distance_matrix(&app);
        assert!(is_valid_distance_matrix(&matrix));
        for (i, row) in matrix.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!(v <= 1.0 + 1e-12, "[{i}][{j}] = {v}");
            }
        }
    }

    #[test]
    fn point_to_point_volume_goes_to_the_peer() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let volume = comm_volume_matrix(&app);
        let total: f64 = volume.iter().flatten().sum();
        assert!(total > 0.0, "late_sender exchanges messages");
        // No rank sends to itself.
        for (i, row) in volume.iter().enumerate() {
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn ranks_that_communicate_are_closer_than_ranks_that_do_not() {
        // late_sender pairs ranks (sender, receiver); paired ranks must be
        // strictly closer than the matrix maximum of 1.0 whenever any pair
        // communicates.
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let matrix = communication_distance_matrix(&app);
        let min_off_diag = matrix
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .filter(move |(j, _)| *j != i)
                    .map(|(_, &v)| v)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(min_off_diag < 1.0);
    }

    #[test]
    fn empty_trace_produces_unit_distances() {
        let app = trace_model::AppTrace::new("empty", 3);
        let matrix = communication_distance_matrix(&app);
        assert!(is_valid_distance_matrix(&matrix));
        assert_eq!(matrix[0][1], 1.0);
        assert_eq!(matrix[1][2], 1.0);
    }
}
