#![forbid(unsafe_code)]
//! Inter-process statistical clustering of trace data.
//!
//! The paper's related-work section describes a second family of trace
//! reduction techniques: cluster the *processes* of a run by the similarity
//! of their behaviour and keep one representative trace per cluster
//! (Nickolayev et al., Lee et al. — Euclidean distance over performance
//! features; Aguilera et al. — a distance based on the amount of
//! communication between processes).  The paper itself only evaluates
//! intra-process reduction; this crate implements the inter-process family
//! so the two can be compared under the same criteria:
//!
//! * [`features`] — per-rank feature vectors (time per region, communication
//!   time, wait time, message counts and volumes) with optional
//!   normalization.
//! * [`distance`] — Euclidean feature distance and the communication-volume
//!   distance of Aguilera et al.
//! * [`mod@kmeans`] — deterministic k-means with k-means++ seeding.
//! * [`hierarchical`] — agglomerative clustering with single, complete or
//!   average linkage.
//! * [`silhouette`] — cluster-quality scoring used to pick `k`.
//! * [`representative`] — representative-rank selection and the
//!   cluster-reduced trace (one retained rank trace per cluster, with a
//!   reconstruction that fills the other ranks in from their
//!   representative).

#![warn(missing_docs)]

pub mod distance;
pub mod features;
pub mod hierarchical;
pub mod kmeans;
pub mod representative;
pub mod silhouette;

pub use distance::{comm_volume_matrix, communication_distance_matrix, euclidean_distance_matrix};
pub use features::{rank_features, FeatureMatrix, Normalization};
pub use hierarchical::{hierarchical_clustering, Linkage};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use representative::{cluster_reduce, ClusteredTrace};
pub use silhouette::silhouette_score;
