//! Agglomerative hierarchical clustering over a distance matrix.
//!
//! Aguilera et al. apply hierarchical clustering to communication traces
//! using a distance based on inter-process communication.  This module
//! implements the classic agglomerative algorithm (start with singleton
//! clusters, repeatedly merge the closest pair) with a choice of linkage and
//! a cut at a requested number of clusters, so it works with either the
//! Euclidean feature distance or the communication distance from
//! [`crate::distance`].

/// How the distance between two clusters is derived from member distances.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Linkage {
    /// Distance of the closest pair of members.
    Single,
    /// Distance of the farthest pair of members.
    Complete,
    /// Mean distance over all cross-cluster member pairs.
    #[default]
    Average,
}

/// Distance between clusters `a` and `b` under the chosen linkage.
fn cluster_distance(matrix: &[Vec<f64>], a: &[usize], b: &[usize], linkage: Linkage) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0.0;
    for &i in a {
        for &j in b {
            let d = matrix[i][j];
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1.0;
        }
    }
    match linkage {
        Linkage::Single => min,
        Linkage::Complete => max,
        Linkage::Average => {
            if count > 0.0 {
                sum / count
            } else {
                0.0
            }
        }
    }
}

/// Agglomerative clustering of `matrix.len()` items down to `k` clusters.
///
/// Returns one cluster index per item.  `k` is clamped to `[1, n]`; an empty
/// matrix yields an empty assignment.
pub fn hierarchical_clustering(matrix: &[Vec<f64>], k: usize, linkage: Linkage) -> Vec<usize> {
    let n = matrix.len();
    if n == 0 {
        return Vec::new();
    }
    let target = k.clamp(1, n);
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    while clusters.len() > target {
        // Find the closest pair of clusters.
        let mut best = (0usize, 1usize);
        let mut best_distance = f64::INFINITY;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let d = cluster_distance(matrix, &clusters[a], &clusters[b], linkage);
                if d < best_distance {
                    best_distance = d;
                    best = (a, b);
                }
            }
        }
        let (a, b) = best;
        let merged = clusters.remove(b);
        clusters[a].extend(merged);
    }

    let mut assignments = vec![0usize; n];
    for (cluster_index, members) in clusters.iter().enumerate() {
        for &item in members {
            assignments[item] = cluster_index;
        }
    }
    assignments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::is_valid_distance_matrix;

    /// Distance matrix for points on a line.
    fn line_matrix(points: &[f64]) -> Vec<Vec<f64>> {
        let n = points.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                m[i][j] = (points[i] - points[j]).abs();
            }
        }
        m
    }

    #[test]
    fn two_well_separated_groups_are_found_by_every_linkage() {
        let matrix = line_matrix(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2]);
        assert!(is_valid_distance_matrix(&matrix));
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let assignment = hierarchical_clustering(&matrix, 2, linkage);
            assert_eq!(assignment.len(), 6);
            assert_eq!(assignment[0], assignment[1]);
            assert_eq!(assignment[1], assignment[2]);
            assert_eq!(assignment[3], assignment[4]);
            assert_ne!(assignment[0], assignment[3], "{linkage:?}");
        }
    }

    #[test]
    fn k_one_puts_everything_in_one_cluster() {
        let matrix = line_matrix(&[1.0, 5.0, 9.0]);
        let assignment = hierarchical_clustering(&matrix, 1, Linkage::Average);
        assert!(assignment.iter().all(|&a| a == assignment[0]));
    }

    #[test]
    fn k_equal_to_n_keeps_singletons() {
        let matrix = line_matrix(&[1.0, 5.0, 9.0]);
        let assignment = hierarchical_clustering(&matrix, 3, Linkage::Single);
        let mut sorted = assignment.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn k_is_clamped_and_empty_input_is_empty() {
        let matrix = line_matrix(&[1.0, 2.0]);
        assert_eq!(
            hierarchical_clustering(&matrix, 0, Linkage::Average).len(),
            2
        );
        assert_eq!(
            hierarchical_clustering(&matrix, 99, Linkage::Average).len(),
            2
        );
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(hierarchical_clustering(&empty, 2, Linkage::Average).is_empty());
    }

    #[test]
    fn single_linkage_chains_while_complete_does_not() {
        // A chain of equally spaced points plus one distant point: single
        // linkage merges the whole chain first, complete linkage splits the
        // chain more eagerly.  Both must isolate the distant point when
        // cutting at 2 clusters.
        let matrix = line_matrix(&[0.0, 1.0, 2.0, 3.0, 100.0]);
        for linkage in [Linkage::Single, Linkage::Complete] {
            let assignment = hierarchical_clustering(&matrix, 2, linkage);
            assert_ne!(assignment[4], assignment[0], "{linkage:?}");
            assert_eq!(assignment[0], assignment[3], "{linkage:?}");
        }
    }
}
