//! Silhouette scoring of a clustering.
//!
//! The silhouette of an item compares its mean distance to its own cluster
//! (`a`) with its mean distance to the nearest other cluster (`b`):
//! `(b - a) / max(a, b)`, in `[-1, 1]`.  The mean silhouette over all items
//! scores a clustering; it is the standard way to choose `k` when the number
//! of behaviour classes in a run is not known in advance.

/// Mean silhouette score of `assignments` under the given distance matrix.
///
/// Items in singleton clusters contribute a silhouette of 0 (the usual
/// convention).  Returns 0 for fewer than two clusters or fewer than two
/// items, where the score is undefined.
pub fn silhouette_score(matrix: &[Vec<f64>], assignments: &[usize]) -> f64 {
    let n = assignments.len();
    if n < 2 {
        return 0.0;
    }
    let cluster_count = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); cluster_count];
    for (item, &cluster) in assignments.iter().enumerate() {
        members[cluster].push(item);
    }
    let non_empty = members.iter().filter(|m| !m.is_empty()).count();
    if non_empty < 2 {
        return 0.0;
    }

    let mut total = 0.0;
    for (item, &cluster) in assignments.iter().enumerate() {
        let own = &members[cluster];
        if own.len() <= 1 {
            continue; // silhouette of a singleton is 0
        }
        let a: f64 = own
            .iter()
            .filter(|&&other| other != item)
            .map(|&other| matrix[item][other])
            .sum::<f64>()
            / (own.len() - 1) as f64;
        let b = members
            .iter()
            .enumerate()
            .filter(|(c, m)| *c != cluster && !m.is_empty())
            .map(|(_, m)| m.iter().map(|&other| matrix[item][other]).sum::<f64>() / m.len() as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

/// Picks the `k` in `candidates` with the best silhouette under
/// `cluster_with(k)`, returning `(k, assignments, score)`.  Returns `None`
/// when `candidates` is empty.
pub fn best_k_by_silhouette<F>(
    matrix: &[Vec<f64>],
    candidates: &[usize],
    mut cluster_with: F,
) -> Option<(usize, Vec<usize>, f64)>
where
    F: FnMut(usize) -> Vec<usize>,
{
    let mut best: Option<(usize, Vec<usize>, f64)> = None;
    for &k in candidates {
        let assignments = cluster_with(k);
        let score = silhouette_score(matrix, &assignments);
        let better = match &best {
            None => true,
            Some((_, _, best_score)) => score > *best_score,
        };
        if better {
            best = Some((k, assignments, score));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::{hierarchical_clustering, Linkage};

    fn line_matrix(points: &[f64]) -> Vec<Vec<f64>> {
        let n = points.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                m[i][j] = (points[i] - points[j]).abs();
            }
        }
        m
    }

    #[test]
    fn well_separated_clusters_score_close_to_one() {
        let matrix = line_matrix(&[0.0, 0.1, 0.2, 50.0, 50.1, 50.2]);
        let good = vec![0, 0, 0, 1, 1, 1];
        let score = silhouette_score(&matrix, &good);
        assert!(score > 0.9, "score {score}");
    }

    #[test]
    fn a_bad_split_scores_lower_than_the_natural_split() {
        let matrix = line_matrix(&[0.0, 0.1, 0.2, 50.0, 50.1, 50.2]);
        let good = vec![0, 0, 0, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1];
        assert!(silhouette_score(&matrix, &good) > silhouette_score(&matrix, &bad));
    }

    #[test]
    fn degenerate_inputs_score_zero() {
        let matrix = line_matrix(&[1.0, 2.0, 3.0]);
        assert_eq!(silhouette_score(&matrix, &[0, 0, 0]), 0.0);
        assert_eq!(silhouette_score(&line_matrix(&[1.0]), &[0]), 0.0);
        assert_eq!(silhouette_score(&[], &[]), 0.0);
    }

    #[test]
    fn singletons_contribute_zero_but_do_not_poison_the_score() {
        let matrix = line_matrix(&[0.0, 0.1, 100.0]);
        let score = silhouette_score(&matrix, &[0, 0, 1]);
        assert!(score > 0.5, "score {score}");
    }

    #[test]
    fn best_k_prefers_the_natural_number_of_clusters() {
        let points = [0.0, 0.2, 0.4, 30.0, 30.2, 30.4, 90.0, 90.2, 90.4];
        let matrix = line_matrix(&points);
        let best = best_k_by_silhouette(&matrix, &[2, 3, 4, 5], |k| {
            hierarchical_clustering(&matrix, k, Linkage::Average)
        });
        let (k, assignments, score) = best.expect("candidates are non-empty");
        assert_eq!(k, 3);
        assert_eq!(assignments.len(), 9);
        assert!(score > 0.9);
        assert!(best_k_by_silhouette(&matrix, &[], |_| Vec::new()).is_none());
    }
}
