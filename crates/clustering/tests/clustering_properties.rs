//! Property-based tests for the clustering algorithms.

use proptest::prelude::*;

use trace_clustering::{
    hierarchical_clustering, kmeans, silhouette_score, FeatureMatrix, KMeansConfig, Linkage,
};

/// Random small feature matrices (ranks × features).
fn feature_matrix() -> impl Strategy<Value = FeatureMatrix> {
    (2usize..12, 1usize..5).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(prop::collection::vec(0.0..1000.0f64, cols), rows).prop_map(
            move |rows_data| FeatureMatrix {
                names: (0..cols).map(|c| format!("f{c}")).collect(),
                rows: rows_data,
            },
        )
    })
}

fn distance_matrix(features: &FeatureMatrix) -> Vec<Vec<f64>> {
    trace_clustering::euclidean_distance_matrix(features)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_assigns_every_row_to_a_valid_cluster(features in feature_matrix(), k in 1usize..6) {
        let result = kmeans(&features, &KMeansConfig::new(k));
        prop_assert_eq!(result.assignments.len(), features.len());
        prop_assert!(result.assignments.iter().all(|&a| a < result.centroids.len()));
        prop_assert!(result.inertia >= 0.0);
        prop_assert!(result.cluster_count() <= k.min(features.len()));
    }

    #[test]
    fn kmeans_is_deterministic(features in feature_matrix(), k in 1usize..6) {
        let a = kmeans(&features, &KMeansConfig::new(k));
        let b = kmeans(&features, &KMeansConfig::new(k));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn more_clusters_never_increase_inertia(features in feature_matrix()) {
        let small = kmeans(&features, &KMeansConfig::new(1)).inertia;
        let large = kmeans(&features, &KMeansConfig::new(features.len())).inertia;
        prop_assert!(large <= small + 1e-9, "{large} > {small}");
        prop_assert!(large < 1e-9, "one cluster per row has zero inertia");
    }

    #[test]
    fn hierarchical_produces_exactly_k_clusters(features in feature_matrix(), k in 1usize..6) {
        let matrix = distance_matrix(&features);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let assignment = hierarchical_clustering(&matrix, k, linkage);
            prop_assert_eq!(assignment.len(), features.len());
            let mut distinct: Vec<usize> = assignment.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k.clamp(1, features.len()));
        }
    }

    #[test]
    fn silhouette_is_bounded(features in feature_matrix(), k in 2usize..5) {
        let matrix = distance_matrix(&features);
        let assignment = hierarchical_clustering(&matrix, k, Linkage::Average);
        let score = silhouette_score(&matrix, &assignment);
        prop_assert!((-1.0..=1.0).contains(&score), "score {score}");
    }

    #[test]
    fn normalization_preserves_shape_and_bounds(features in feature_matrix()) {
        use trace_clustering::Normalization;
        let minmax = features.normalized(Normalization::MinMax);
        prop_assert_eq!(minmax.len(), features.len());
        prop_assert_eq!(minmax.width(), features.width());
        prop_assert!(minmax.rows.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
