//! Cost of turning a reduced trace into analysis output (`trace_report`).
//!
//! The report runs after the reduction, so it is never on the hot path —
//! but it reconstructs and re-diagnoses the trace, so its cost scales with
//! trace size and should stay a small multiple of the reduction itself.
//! This bench measures model construction (the expensive part) and each
//! sink separately.  Size the workload with
//! `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny so CI stays fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_report::{build_model, render_chrome_trace, render_html, render_text, ReportOptions};
use trace_sim::{SizePreset, Workload, WorkloadKind};

fn bench_report_generation(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let workload = Workload::new(WorkloadKind::DynLoadBalance, preset);
    eprintln!(
        "[report] generating and reducing {} at {preset:?} preset...",
        workload.name()
    );
    let app = workload.generate();
    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let reduced = Reducer::new(config).reduce_app(&app);
    let options = ReportOptions {
        method: config,
        ..ReportOptions::default()
    };
    let model = build_model(&reduced, Some(&app), None, &options);

    let mut group = c.benchmark_group("report/generation");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("build_model"), |b| {
        b.iter(|| build_model(&reduced, Some(&app), None, &options))
    });
    group.bench_function(BenchmarkId::from_parameter("render_text"), |b| {
        b.iter(|| render_text(&model))
    });
    group.bench_function(BenchmarkId::from_parameter("render_html"), |b| {
        b.iter(|| render_html(&model))
    });
    group.bench_function(BenchmarkId::from_parameter("render_chrome"), |b| {
        b.iter(|| render_chrome_trace(&reduced))
    });
    group.finish();
}

criterion_group!(benches, bench_report_generation);
criterion_main!(benches);
