//! Ablation benchmarks for the extension crates: the per-comparison cost of
//! the extended similarity kernels, the throughput of the sampling and
//! clustering reducers relative to the paper's reducer, and the cost of the
//! text format relative to the binary codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trace_clustering::{
    cluster_reduce, euclidean_distance_matrix, kmeans, rank_features, KMeansConfig, Normalization,
};
use trace_format::{parse_app_trace, write_app_trace};
use trace_model::codec::{decode_app_trace, encode_app_trace};
use trace_reduce::{dtw_distance, ExtendedMethod, ExtendedReducer, Method, Reducer};
use trace_sampling::{sample_app, SamplingPolicy};
use trace_sim::{SizePreset, Workload, WorkloadKind};

fn bench_extended_kernels(c: &mut Criterion) {
    // Per-comparison cost of the extension kernels against the Euclidean
    // baseline on a realistic segment-sized measurement vector.
    let vector: Vec<f64> = (0..64).map(|i| (i * 997 % 5000) as f64).collect();
    let other: Vec<f64> = vector.iter().map(|v| v * 1.01 + 3.0).collect();
    let mut group = c.benchmark_group("ablation_ext/kernels");
    group.bench_function("euclidean_direct", |b| {
        b.iter(|| trace_model::stats::euclidean_distance(&vector, &other))
    });
    group.bench_function("dtw_banded", |b| {
        b.iter(|| dtw_distance(&vector, &other, Some(2)))
    });
    group.bench_function("dtw_unbounded", |b| {
        b.iter(|| dtw_distance(&vector, &other, None))
    });
    group.bench_function("cdf97_transform_pair", |b| {
        b.iter(|| {
            let ta = trace_wavelet::cdf97_transform(&vector);
            let tb = trace_wavelet::cdf97_transform(&other);
            trace_wavelet::coefficient_distance(&ta, &tb)
        })
    });
    group.finish();
}

fn bench_reduction_families(c: &mut Criterion) {
    // Whole-trace reduction throughput of the three families on the same
    // workload: similarity (paper avgWave and extended DTW), sampling, and
    // clustering.
    let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Small).generate();
    let mut group = c.benchmark_group("ablation_ext/reduction_families");
    group.sample_size(10);
    group.throughput(Throughput::Elements(full.total_events() as u64));
    group.bench_function("similarity_avgWave", |b| {
        let reducer = Reducer::with_default_threshold(Method::AvgWave);
        b.iter(|| reducer.reduce_app(&full))
    });
    group.bench_function("similarity_dtw", |b| {
        let reducer = ExtendedReducer::with_default_threshold(ExtendedMethod::Dtw);
        b.iter(|| reducer.reduce_app(&full))
    });
    for n in [2usize, 10] {
        group.bench_with_input(BenchmarkId::new("sampling_every", n), &n, |b, &n| {
            b.iter(|| sample_app(&full, SamplingPolicy::EveryNth(n)))
        });
    }
    group.bench_function("clustering_k4", |b| {
        b.iter(|| {
            let features = rank_features(&full, Normalization::MinMax);
            let matrix = euclidean_distance_matrix(&features);
            let result = kmeans(&features, &KMeansConfig::new(4));
            cluster_reduce(&full, &result.assignments, &matrix)
        })
    });
    group.finish();
}

fn bench_text_format_vs_codec(c: &mut Criterion) {
    let full = Workload::new(WorkloadKind::LateSender, SizePreset::Small).generate();
    let binary = encode_app_trace(&full);
    let text = write_app_trace(&full);
    println!(
        "[ablation_ext] encoded sizes: binary {} bytes, text {} bytes ({}x)",
        binary.len(),
        text.len(),
        text.len() / binary.len().max(1)
    );
    let mut group = c.benchmark_group("ablation_ext/formats");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(binary.len() as u64));
    group.bench_function("binary_encode", |b| b.iter(|| encode_app_trace(&full)));
    group.bench_function("binary_decode", |b| {
        b.iter(|| decode_app_trace(&binary).unwrap())
    });
    group.bench_function("text_write", |b| b.iter(|| write_app_trace(&full)));
    group.bench_function("text_parse", |b| b.iter(|| parse_app_trace(&text).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_extended_kernels,
    bench_reduction_families,
    bench_text_format_vs_codec
);
criterion_main!(benches);
