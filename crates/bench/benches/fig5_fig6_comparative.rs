//! Figures 5 and 6 + the Section 5.2 summary: the comparative study of all
//! nine methods at their default thresholds over all 18 workloads.
//!
//! The full data series is printed once (size it with
//! `TRACE_REPRO_PRESET=paper|small|tiny`); the Criterion measurement then
//! times one complete method evaluation (reduce + encode + reconstruct +
//! analyse) per method on a representative workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::{all_workloads, preset_from_env};
use trace_eval::comparative::comparative_study;
use trace_eval::evaluation::evaluate_method;
use trace_reduce::{Method, MethodConfig};
use trace_sim::{SizePreset, Workload, WorkloadKind};

fn regenerate_figures() {
    let preset = preset_from_env(SizePreset::Small);
    eprintln!("[fig5/fig6] generating all 18 workloads at {preset:?} preset...");
    let traces = all_workloads(preset);
    let study = comparative_study(&traces);
    println!("{}", study.figure5_table().render());
    println!("{}", study.figure6_table().render());
    println!("{}", study.trend_retention_table().render());
    println!("{}", study.summary_table().render());
    println!("Average file-size ranking (smallest first):");
    for (method, size) in study.average_file_size_ranking() {
        println!("  {:<10} {:>7.2}%", method.name(), size);
    }
    println!(
        "Correct diagnoses per method (out of {}):",
        study.workloads().len()
    );
    for (method, count) in study.correct_diagnosis_counts() {
        println!("  {:<10} {}", method.name(), count);
    }
}

fn bench_method_evaluation(c: &mut Criterion) {
    regenerate_figures();

    // Criterion measurement: one full evaluation per method on the
    // dyn_load_balance workload (medium size, exercises every criterion).
    let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Small).generate();
    let mut group = c.benchmark_group("fig5_fig6/evaluate_method");
    group.sample_size(10);
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| evaluate_method(&full, MethodConfig::with_default_threshold(method)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_method_evaluation);
criterion_main!(benches);
