//! Appendix Tables 1–18: retention of performance trends with varying
//! thresholds, one table per workload (Table 1 dyn_load_balance, 2
//! early_gather, 3 imbalance_at_mpi_barrier, 4 late_broadcast, 5
//! late_receiver, 6 late_sender, 7–16 the interference benchmarks, 17–18
//! the Sweep3D runs).
//!
//! The tables are printed once (default preset: tiny); the Criterion
//! measurement times the trend-retention check (analysis of the full and
//! the reconstructed trace plus the comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_eval::criteria::trends_retained;
use trace_eval::threshold::{threshold_study_for_method, trend_retention_by_threshold_table};
use trace_reduce::{Method, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};

/// Table numbers in the paper's appendix, keyed by workload name.
const TABLE_ORDER: [(u32, &str); 18] = [
    (1, "dyn_load_balance"),
    (2, "early_gather"),
    (3, "imbalance_at_mpi_barrier"),
    (4, "late_broadcast"),
    (5, "late_receiver"),
    (6, "late_sender"),
    (7, "Nto1_32"),
    (8, "NtoN_32"),
    (9, "1toN_32"),
    (10, "1to1r_32"),
    (11, "1to1s_32"),
    (12, "Nto1_1024"),
    (13, "NtoN_1024"),
    (14, "1toN_1024"),
    (15, "1to1r_1024"),
    (16, "1to1s_1024"),
    (17, "sweep3d_8p"),
    (18, "sweep3d_32p"),
];

fn regenerate_tables() {
    let preset = preset_from_env(SizePreset::Tiny);
    eprintln!("[tables 1-18] generating all 18 workloads at {preset:?} preset...");
    for (table, workload_name) in TABLE_ORDER {
        let kind = WorkloadKind::by_name(workload_name).expect("paper workload");
        let trace = vec![Workload::new(kind, preset).generate()];
        println!("Table {table}: {workload_name}");
        for method in Method::ALL {
            let points = threshold_study_for_method(&trace, method);
            println!(
                "{}",
                trend_retention_by_threshold_table(workload_name, &points).render()
            );
        }
    }
}

fn bench_trend_retention(c: &mut Criterion) {
    regenerate_tables();

    let full = Workload::new(WorkloadKind::ImbalanceAtMpiBarrier, SizePreset::Small).generate();
    let mut group = c.benchmark_group("tables/trend_retention_check");
    group.sample_size(10);
    for method in [Method::RelDiff, Method::AvgWave, Method::IterAvg] {
        let approx = Reducer::with_default_threshold(method)
            .reduce_app(&full)
            .reconstruct();
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &approx,
            |b, approx| b.iter(|| trends_retained(&full, approx)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trend_retention);
criterion_main!(benches);
