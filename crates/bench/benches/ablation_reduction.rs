//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * per-rank parallel reduction versus sequential reduction;
//! * the cost of the binary codec (encode/decode throughput);
//! * segmentation throughput in isolation;
//! * wavelet transform cost versus direct Minkowski comparison.
//!
//! These are not paper figures; they justify implementation choices of this
//! reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trace_model::codec::{decode_app_trace, encode_app_trace};
use trace_reduce::{reduce_app_parallel, segments_of_rank, Method, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_wavelet::{average_transform, haar_transform};

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let full = Workload::new(WorkloadKind::Sweep3d32p, SizePreset::Small).generate();
    let reducer = Reducer::with_default_threshold(Method::AvgWave);
    let mut group = c.benchmark_group("ablation/parallel_reduction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(full.total_events() as u64));
    group.bench_function("sequential", |b| b.iter(|| reducer.reduce_app(&full)));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| b.iter(|| reduce_app_parallel(&reducer, &full, threads)),
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Small).generate();
    let bytes = encode_app_trace(&full);
    let mut group = c.benchmark_group("ablation/codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| b.iter(|| encode_app_trace(&full)));
    group.bench_function("decode", |b| b.iter(|| decode_app_trace(&bytes).unwrap()));
    group.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let full = Workload::new(WorkloadKind::LateSender, SizePreset::Small).generate();
    let mut group = c.benchmark_group("ablation/segmentation");
    group.sample_size(20);
    group.throughput(Throughput::Elements(full.ranks[0].len() as u64));
    group.bench_function("segments_of_rank", |b| {
        b.iter(|| segments_of_rank(&full.ranks[0]))
    });
    group.finish();
}

fn bench_similarity_kernels(c: &mut Criterion) {
    // Compare the per-comparison cost of the similarity kernels on a
    // realistic segment-sized time-stamp vector.
    let vector: Vec<f64> = (0..64).map(|i| (i * 997 % 5000) as f64).collect();
    let other: Vec<f64> = vector.iter().map(|v| v * 1.01 + 3.0).collect();
    let mut group = c.benchmark_group("ablation/similarity_kernels");
    group.bench_function("euclidean_direct", |b| {
        b.iter(|| trace_model::stats::euclidean_distance(&vector, &other))
    });
    group.bench_function("avg_wavelet_transform_pair", |b| {
        b.iter(|| {
            let ta = average_transform(&vector);
            let tb = average_transform(&other);
            trace_wavelet::coefficient_distance(&ta, &tb)
        })
    });
    group.bench_function("haar_wavelet_transform_pair", |b| {
        b.iter(|| {
            let ta = haar_transform(&vector);
            let tb = haar_transform(&other);
            trace_wavelet::coefficient_distance(&ta, &tb)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_vs_sequential,
    bench_codec,
    bench_segmentation,
    bench_similarity_kernels
);
criterion_main!(benches);
