//! Similarity-matching fast path vs the naive reference loop.
//!
//! The stored-segments match loop is the innermost layer every reduction
//! method flows through; this bench isolates it by reducing the same
//! workload twice per method — once through the cached-feature fast path
//! (`Reducer`, the production path) and once through the preserved naive
//! reference (`reduce_rank_reference`, which recomputes measurement
//! vectors and wavelet transforms per comparison).  Both produce the
//! identical `ReducedAppTrace` (asserted before measuring); throughput is
//! reported in segments/s.  Size the workload with
//! `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny so CI stays fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trace_bench::preset_from_env;
use trace_reduce::{reduce_app_reference, Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};

fn bench_similarity_matching(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let workload = Workload::new(WorkloadKind::DynLoadBalance, preset);
    eprintln!(
        "[matching] generating {} at {preset:?} preset...",
        workload.name()
    );
    let app = workload.generate();
    let segments: usize = app.ranks.iter().map(|r| r.segment_instance_count()).sum();

    // Report the pruning story once per method: how many candidate
    // comparisons the match loop ran and how many never needed a full
    // kernel (resolved by an O(1) prefilter or an early abandon).
    println!(
        "matching {}: {} ranks, {} segment instances",
        workload.name(),
        app.rank_count(),
        segments
    );
    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        let reducer = Reducer::new(config);
        let (fast, stats) = reducer.reduce_app_with_stats(&app);
        assert_eq!(
            fast,
            reduce_app_reference(config, &app),
            "{method}: fast path must be bit-identical to the reference"
        );
        println!(
            "  {}: {} of {} eligible candidates visited ({:.1}%), {} window-pruned, \
             {} pivot-pruned, {:.1}% prefilter-rejected, {:.1}% early-abandoned, {} full kernels",
            config.label(),
            stats.comparisons,
            stats.eligible,
            100.0 * stats.visited_fraction(),
            stats.index_window_prunes,
            stats.index_pivot_prunes,
            100.0 * stats.prefilter_reject_rate(),
            100.0 * stats.early_abandon_rate(),
            stats.full_kernels
        );
    }

    let mut group = c.benchmark_group("matching/reduce");
    group.sample_size(10);
    group.throughput(Throughput::Elements(segments as u64));
    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        group.bench_function(BenchmarkId::new("fast", method.name()), |b| {
            b.iter(|| Reducer::new(config).reduce_app(&app))
        });
        group.bench_function(BenchmarkId::new("reference", method.name()), |b| {
            b.iter(|| reduce_app_reference(config, &app))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similarity_matching);
criterion_main!(benches);
