//! Overhead of the observability layer (the `trace_obs` subsystem).
//!
//! Every pipeline entry point takes a [`trace_obs::Recorder`]; the default
//! is a disabled recorder whose shards are `None` inside, so the
//! instrumented paths must cost nothing when recording is off and stay
//! within the documented budget (<= 2% on the matching path, see
//! EXPERIMENTS.md) when it is on.  This bench measures both states for the
//! in-memory reducer and the streaming reducer on the same workload.  Size
//! the trace with `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny so
//! CI stays fast).

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_format::parse_app_trace;
use trace_obs::Recorder;
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::reduce_stream_obs;

/// The run replayed back-to-back (same amplification as the other
/// streaming benches) so the measured work is the matching pipeline, not
/// the fixed per-run recorder setup and merge.
const REPEATS: usize = 10;

fn bench_obs_overhead(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let workload = Workload::new(WorkloadKind::DynLoadBalance, preset);
    eprintln!(
        "[obs] generating {} at {preset:?} preset, {REPEATS}x amplified...",
        workload.name()
    );
    let text = workload
        .write_text_amplified_to(Vec::new(), REPEATS)
        .expect("writing to a Vec cannot fail");
    let app = parse_app_trace(std::str::from_utf8(&text).expect("generated text is UTF-8"))
        .expect("generated text parses");
    let config = MethodConfig::with_default_threshold(Method::AvgWave);
    let reducer = Reducer::new(config);

    // Each enabled iteration pays the whole realistic cost: recorder
    // construction, span recording, counter draining and the final merge.
    let mut group = c.benchmark_group("obs/overhead");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("in_memory_disabled"), |b| {
        b.iter(|| reducer.reduce_app_obs(&app, &Recorder::disabled()))
    });
    group.bench_function(BenchmarkId::from_parameter("in_memory_enabled"), |b| {
        b.iter(|| reducer.reduce_app_obs(&app, &Recorder::enabled()))
    });
    group.bench_function(BenchmarkId::from_parameter("stream_disabled"), |b| {
        b.iter(|| {
            reduce_stream_obs(config, Cursor::new(text.as_slice()), &Recorder::disabled()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("stream_enabled"), |b| {
        b.iter(|| {
            reduce_stream_obs(config, Cursor::new(text.as_slice()), &Recorder::enabled()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
