//! Binary ingestion pipelines: monolithic v1 decode vs chunked v2
//! streaming vs index-sharded parallel ingestion (the `trace_container`
//! subsystem).
//!
//! All three pipelines produce the same `ReducedAppTrace`; the measurement
//! compares decode-then-reduce over a fully materialized buffer against
//! the one-pass chunked reader and against workers seeking straight to
//! their rank sections via the index footer.  Size the trace with
//! `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny so CI stays fast).

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_container::{encode_app_container, read_app_container, ChunkSpec};
use trace_model::codec::{decode_app_trace, encode_app_trace};
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_container_file, reduce_container_stream};

/// The run replayed back-to-back so even the tiny preset streams an order
/// of magnitude more chunks than the reader ever buffers.
const REPEATS: usize = 10;

fn bench_container_ingestion(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let workload = Workload::new(WorkloadKind::DynLoadBalance, preset);
    eprintln!(
        "[container] generating {} at {preset:?} preset, {REPEATS}x amplified...",
        workload.name()
    );
    let container = workload
        .write_container_amplified_to(Vec::new(), REPEATS, ChunkSpec::default())
        .expect("writing to a Vec cannot fail");
    // The same amplified trace as one monolithic v1 buffer.
    let app = read_app_container(&container[..]).expect("container decodes");
    let monolithic = encode_app_trace(&app);
    let config = MethodConfig::with_default_threshold(Method::AvgWave);

    // Report the memory story once, through the same run-report formatter
    // the CLI's `--obs` flag uses (a monolithic decode holds the whole v1
    // buffer; the streaming reader only `stream.peak_chunk_bytes`).
    let reduction = reduce_container_stream(config, Cursor::new(&container)).unwrap();
    println!(
        "container {}: v1 {} bytes, v2 {} bytes",
        workload.name(),
        monolithic.len(),
        container.len()
    );
    let recorder = trace_obs::Recorder::enabled();
    let mut shard = recorder.shard();
    reduction.stats.record_into(&mut shard);
    shard.finish();
    println!("{}", recorder.report().render_text());

    // The sharded driver needs a real file for the seekable index footer.
    let mut path = std::env::temp_dir();
    path.push(format!("trace_bench_container_{}.trc", std::process::id()));
    std::fs::write(&path, &container).expect("temp file");

    let mut group = c.benchmark_group("container/ingest");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("monolithic_v1"), |b| {
        b.iter(|| {
            let app = decode_app_trace(&monolithic).unwrap();
            Reducer::new(config).reduce_app(&app)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("container_stream"), |b| {
        b.iter(|| reduce_container_stream(config, Cursor::new(&container)).unwrap())
    });
    for shards in [2usize, 4] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("container_shards_{shards}")),
            |b| b.iter(|| reduce_container_file(config, &path, shards).unwrap()),
        );
    }
    group.finish();

    let _ = std::fs::remove_file(&path);

    // Encoding cost: monolithic buffer vs chunked writer, across chunk sizes.
    let mut group = c.benchmark_group("container/encode");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("monolithic_v1"), |b| {
        b.iter(|| encode_app_trace(&app))
    });
    for segments_per_chunk in [16usize, 128] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("container_chunks_{segments_per_chunk}")),
            |b| b.iter(|| encode_app_container(&app, ChunkSpec::with_segments(segments_per_chunk))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_container_ingestion);
criterion_main!(benches);
