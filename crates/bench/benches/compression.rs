//! Per-chunk compression (`trace_compress` through `trace_container`):
//! bytes on disk and ingestion throughput per codec, against the
//! monolithic v1 and uncompressed chunked v2 baselines.
//!
//! For every codec the pipeline output is the identical `ReducedAppTrace`;
//! what changes is the file size (printed as a ratio against `none`) and
//! the decode/reduce wall time of the streaming and index-sharded readers.
//! Size the trace with `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny
//! so CI stays fast).

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_container::{read_app_container, ChunkSpec, Codec};
use trace_model::codec::encode_app_trace;
use trace_reduce::{Method, MethodConfig};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_container_file, reduce_container_stream};

/// The run replayed back-to-back so even the tiny preset streams many more
/// chunks than the reader ever buffers.
const REPEATS: usize = 10;

fn bench_compression(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let workload = Workload::new(WorkloadKind::Sweep3d8p, preset);
    eprintln!(
        "[compression] generating {} at {preset:?} preset, {REPEATS}x amplified...",
        workload.name()
    );
    let baseline = workload
        .write_container_amplified_to(Vec::new(), REPEATS, ChunkSpec::default())
        .expect("writing to a Vec cannot fail");
    let app = read_app_container(&baseline[..]).expect("container decodes");
    let monolithic = encode_app_trace(&app);
    let config = MethodConfig::with_default_threshold(Method::AvgWave);

    // One compressed container per codec, with the size story printed once.
    println!(
        "compression {}: monolithic v1 {} bytes, container v2 none {} bytes",
        workload.name(),
        monolithic.len(),
        baseline.len()
    );
    let containers: Vec<(Codec, Vec<u8>)> = Codec::ALL
        .into_iter()
        .map(|codec| {
            let bytes = workload
                .write_container_amplified_to(Vec::new(), REPEATS, ChunkSpec::with_codec(codec))
                .expect("writing to a Vec cannot fail");
            println!(
                "  codec {:<8} {:>10} bytes  ({:.2}x vs none)",
                codec.name(),
                bytes.len(),
                baseline.len() as f64 / bytes.len() as f64
            );
            (codec, bytes)
        })
        .collect();

    // Ingestion: stream-reduce each codec (decompression is on this path).
    let mut group = c.benchmark_group("compression/ingest");
    group.sample_size(10);
    for (codec, bytes) in &containers {
        group.bench_function(BenchmarkId::from_parameter(codec.name()), |b| {
            b.iter(|| reduce_container_stream(config, Cursor::new(bytes)).unwrap())
        });
    }
    group.finish();

    // Index-sharded ingestion over the compressed file: seeks + parallel
    // decompression per worker.
    let mut path = std::env::temp_dir();
    path.push(format!(
        "trace_bench_compression_{}.trc",
        std::process::id()
    ));
    let mut group = c.benchmark_group("compression/ingest_sharded_x4");
    group.sample_size(10);
    for (codec, bytes) in &containers {
        std::fs::write(&path, bytes).expect("temp file");
        group.bench_function(BenchmarkId::from_parameter(codec.name()), |b| {
            b.iter(|| reduce_container_file(config, &path, 4).unwrap())
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&path);

    // Encode cost: what compression adds to the writer.
    let mut group = c.benchmark_group("compression/encode");
    group.sample_size(10);
    for codec in Codec::ALL {
        group.bench_function(BenchmarkId::from_parameter(codec.name()), |b| {
            b.iter(|| trace_container::encode_app_container(&app, ChunkSpec::with_codec(codec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
