//! Stored-set-size sweep: candidate index vs linear scan vs reference.
//!
//! The candidate index exists so per-segment matching cost stays bounded
//! as the stored-representative set grows.  This bench makes that scaling
//! claim measurable: `dyn_load_balance` is regenerated with its drift
//! range (and therefore its stored set) scaled 1×..16× while the match
//! rate stays high — the matching-heavy regime of the paper — and each
//! size is reduced through the indexed path, the preserved linear scan
//! and the naive reference.  The printed table reports the visited
//! fraction (comparisons / eligible stored candidates) per method and
//! size; the indexed fraction must *fall* as the stored set grows while
//! the linear scan's stays flat.
//!
//! The aggregate assertion at the largest swept size (indexed strictly
//! below linear on visited candidates) runs at every preset, so CI's tiny
//! smoke run fails the build if an index regression makes pruning decay.
//! Size with `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use trace_bench::{matching_sweep_scales, preset_from_env, scaled_dynload};
use trace_reduce::{reduce_app_reference, CandidateSearch, Method, MethodConfig, Reducer};
use trace_sim::SizePreset;

fn metric_methods() -> impl Iterator<Item = Method> {
    Method::ALL.into_iter().filter(|m| m.is_distance_method())
}

fn bench_matching_scaling(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let scales = matching_sweep_scales(preset);
    eprintln!("[matching_scaling] generating dyn_load_balance sweep at {preset:?} preset...");
    let apps: Vec<_> = scales
        .iter()
        .map(|&scale| (scale, scaled_dynload(preset, scale)))
        .collect();

    println!("stored-set-size sweep (dyn_load_balance, {preset:?} preset, default thresholds):");
    println!(
        "| scale | method | stored | degree of matching | indexed visited | linear visited | indexed fraction | linear fraction |"
    );
    println!("|---:|---|---:|---:|---:|---:|---:|---:|");
    let (mut indexed_total, mut linear_total) = (0usize, 0usize);
    for (scale, app) in &apps {
        let largest = *scale == *scales.last().unwrap();
        for method in metric_methods() {
            let config = MethodConfig::with_default_threshold(method);
            let (reduced, indexed) =
                Reducer::with_search(config, CandidateSearch::Indexed).reduce_app_with_stats(app);
            let (scan_reduced, linear) = Reducer::with_search(config, CandidateSearch::LinearScan)
                .reduce_app_with_stats(app);
            assert_eq!(
                reduced, scan_reduced,
                "{method} x{scale}: indexed must be bit-identical to the linear scan"
            );
            assert_eq!(
                indexed.candidates(),
                linear.comparisons,
                "{method} x{scale}: every scanned candidate is visited or attributed to a prune"
            );
            println!(
                "| {scale} | {} | {} | {:.3} | {} | {} | {:.1}% | {:.1}% |",
                config.label(),
                reduced.total_stored(),
                reduced.degree_of_matching(),
                indexed.comparisons,
                linear.comparisons,
                100.0 * indexed.visited_fraction(),
                100.0 * linear.visited_fraction(),
            );
            if largest {
                indexed_total += indexed.comparisons;
                linear_total += linear.comparisons;
            }
        }
    }
    // The scaling guarantee CI smoke-checks at the tiny preset: at the
    // largest swept stored-set size the index must visit strictly fewer
    // candidates than the linear scan across the metric methods.
    assert!(
        indexed_total < linear_total,
        "index pruning regressed: visited {indexed_total} vs linear {linear_total} \
         at the largest swept size"
    );
    println!(
        "largest size aggregate: indexed visited {indexed_total} vs linear {linear_total} \
         ({:.1}% of the scan)",
        100.0 * indexed_total as f64 / linear_total as f64
    );

    let mut group = c.benchmark_group("matching/scaling");
    group.sample_size(10);
    // Time only the sweep endpoints: the interior sizes exist for the
    // counter curve above, the wall-clock trend is visible from the ends.
    for (scale, app) in [&apps[0], apps.last().unwrap()] {
        let segments: usize = app.ranks.iter().map(|r| r.segment_instance_count()).sum();
        group.throughput(Throughput::Elements(segments as u64));
        for method in [Method::Euclidean, Method::AvgWave] {
            let config = MethodConfig::with_default_threshold(method);
            group.bench_function(
                BenchmarkId::new(format!("indexed/{}", method.name()), scale),
                |b| {
                    b.iter(|| {
                        Reducer::with_search(config, CandidateSearch::Indexed).reduce_app(app)
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("linear/{}", method.name()), scale),
                |b| {
                    b.iter(|| {
                        Reducer::with_search(config, CandidateSearch::LinearScan).reduce_app(app)
                    })
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("reference/{}", method.name()), scale),
                |b| b.iter(|| reduce_app_reference(config, app)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matching_scaling);
criterion_main!(benches);
