//! Appendix Figures 9–16: file size and approximation distance versus
//! threshold for every method, over the 16 benchmark workloads
//! (Figure 9 relDiff, 10 absDiff, 11 Manhattan, 12 Euclidean, 13 Chebyshev,
//! 14 iter_k, 15 avgWave, 16 haarWave).
//!
//! The sweep tables are printed once (default preset: tiny, override with
//! `TRACE_REPRO_PRESET`); the Criterion measurement times the reduction of
//! one benchmark workload at each threshold of one representative method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::{benchmark_workloads, preset_from_env};
use trace_eval::threshold::{threshold_figure_table, threshold_study_for_method};
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};

/// The appendix figure number for each swept method.
const FIGURES: [(u32, Method); 8] = [
    (9, Method::RelDiff),
    (10, Method::AbsDiff),
    (11, Method::Manhattan),
    (12, Method::Euclidean),
    (13, Method::Chebyshev),
    (14, Method::IterK),
    (15, Method::AvgWave),
    (16, Method::HaarWave),
];

fn regenerate_figures() {
    let preset = preset_from_env(SizePreset::Tiny);
    eprintln!("[fig9-16] generating the 16 benchmark workloads at {preset:?} preset...");
    let traces = benchmark_workloads(preset);
    for (figure, method) in FIGURES {
        let points = threshold_study_for_method(&traces, method);
        println!("Figure {figure}:");
        println!("{}", threshold_figure_table(method, &points).render());
    }
}

fn bench_threshold_sweep(c: &mut Criterion) {
    regenerate_figures();

    let full = Workload::new(WorkloadKind::LateSender, SizePreset::Small).generate();
    let mut group = c.benchmark_group("fig09_16/reduce_late_sender_euclidean");
    group.sample_size(10);
    for threshold in Method::Euclidean.threshold_grid() {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &threshold| {
                let reducer = Reducer::new(MethodConfig::new(Method::Euclidean, threshold));
                b.iter(|| reducer.reduce_app(&full))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threshold_sweep);
criterion_main!(benches);
