//! Streaming vs in-memory reduction (the `trace_stream` subsystem).
//!
//! Both pipelines start from the same text-format bytes and produce the
//! same `ReducedAppTrace`; the measurement compares parse-then-reduce (full
//! `AppTrace` materialized) against the one-pass bounded-memory streaming
//! reducer, plus the sharded streaming driver.  Size the trace with
//! `TRACE_REPRO_PRESET=paper|small|tiny` (default tiny so CI stays fast).

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_format::parse_app_trace;
use trace_reduce::{Method, MethodConfig, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_stream, reduce_stream_sharded};

/// The run replayed back-to-back so even the tiny preset streams an order
/// of magnitude more segments than the reducer retains.
const REPEATS: usize = 10;

fn bench_streaming_reduction(c: &mut Criterion) {
    let preset = preset_from_env(SizePreset::Tiny);
    let workload = Workload::new(WorkloadKind::DynLoadBalance, preset);
    eprintln!(
        "[streaming] generating {} at {preset:?} preset, {REPEATS}x amplified...",
        workload.name()
    );
    let text = workload
        .write_text_amplified_to(Vec::new(), REPEATS)
        .expect("writing to a Vec cannot fail");
    let config = MethodConfig::with_default_threshold(Method::AvgWave);

    // Report the memory and pruning story once, through the same run-report
    // formatter the CLI's `--obs` flag uses (one rendering, no bench-local
    // stat formatting to drift out of sync).
    let reduction = reduce_stream(config, Cursor::new(text.as_slice())).unwrap();
    println!(
        "streaming {}: {} bytes of text",
        workload.name(),
        text.len()
    );
    let recorder = trace_obs::Recorder::enabled();
    let mut shard = recorder.shard();
    reduction.stats.record_into(&mut shard);
    shard.finish();
    println!("{}", recorder.report().render_text());

    let mut group = c.benchmark_group("streaming/reduce");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("in_memory"), |b| {
        b.iter(|| {
            let app = parse_app_trace(std::str::from_utf8(&text).unwrap()).unwrap();
            Reducer::new(config).reduce_app(&app)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("stream"), |b| {
        b.iter(|| reduce_stream(config, Cursor::new(text.as_slice())).unwrap())
    });
    for shards in [2usize, 4] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("stream_shards_{shards}")),
            |b| {
                b.iter(|| {
                    reduce_stream_sharded(config, shards, |_| Ok(Cursor::new(text.clone())))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_reduction);
criterion_main!(benches);
