//! Extension study (beyond the paper): similarity-based reduction versus
//! trace sampling, periodicity-based reduction and inter-process clustering,
//! plus the extended similarity-method catalogue.
//!
//! The full comparison table is printed once (size it with
//! `TRACE_REPRO_PRESET=paper|small|tiny`); the Criterion measurement then
//! times one complete technique evaluation per technique on a representative
//! workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::preset_from_env;
use trace_eval::{
    evaluate_technique, extension_study, extension_summary_table, extension_table,
    ExtensionTechnique,
};
use trace_sim::{SizePreset, Workload, WorkloadKind};

fn representative_kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::LateSender,
        WorkloadKind::by_name("NtoN_32").expect("interference workload exists"),
        WorkloadKind::DynLoadBalance,
        WorkloadKind::Sweep3d8p,
    ]
}

fn regenerate_tables() {
    let preset = preset_from_env(SizePreset::Small);
    eprintln!("[extension] generating representative workloads at {preset:?} preset...");
    let traces: Vec<_> = representative_kinds()
        .into_iter()
        .map(|kind| Workload::new(kind, preset).generate())
        .collect();
    let evaluations = extension_study(&traces);
    println!("{}", extension_table(&evaluations).render());
    println!("{}", extension_summary_table(&evaluations).render());
}

fn bench_technique_evaluation(c: &mut Criterion) {
    regenerate_tables();

    let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Small).generate();
    let mut group = c.benchmark_group("extension/evaluate_technique");
    group.sample_size(10);
    for technique in ExtensionTechnique::default_catalogue() {
        group.bench_with_input(
            BenchmarkId::from_parameter(technique.label()),
            &technique,
            |b, &technique| b.iter(|| evaluate_technique(&full, technique)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_technique_evaluation);
criterion_main!(benches);
