//! Figures 7 and 8 (and the Figure 4 representation): KOJAK-style
//! performance-trend charts for `dyn_load_balance` and `1to1r_1024`, full
//! trace versus every method's reconstruction at the default thresholds.
//!
//! The charts are printed once; the Criterion measurement times the
//! wait-state analysis itself (the EXPERT-equivalent pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_analysis::diagnose;
use trace_bench::preset_from_env;
use trace_eval::comparative::trend_grids;
use trace_sim::{SizePreset, Workload, WorkloadKind};

fn regenerate_figures() -> Vec<trace_model::AppTrace> {
    let preset = preset_from_env(SizePreset::Small);
    let workloads = ["dyn_load_balance", "1to1r_1024"];
    let mut traces = Vec::new();
    for name in workloads {
        let kind = WorkloadKind::by_name(name).expect("paper workload");
        let full = Workload::new(kind, preset).generate();
        println!("{}", trend_grids(&full));
        traces.push(full);
    }
    traces
}

fn bench_diagnosis(c: &mut Criterion) {
    let traces = regenerate_figures();
    let mut group = c.benchmark_group("fig7_fig8/diagnose");
    group.sample_size(10);
    for trace in &traces {
        group.bench_with_input(
            BenchmarkId::from_parameter(&trace.name),
            trace,
            |b, trace| b.iter(|| diagnose(trace)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diagnosis);
criterion_main!(benches);
