//! Appendix Figures 17–19: file size and approximation distance versus
//! threshold for the Sweep3D runs (Figure 17: relDiff, absDiff, Manhattan;
//! Figure 18: Euclidean, Chebyshev, iter_k; Figure 19: the wavelets).
//!
//! The sweep tables are printed once; the Criterion measurement times the
//! reduction of the sweep3d_8p trace with each method at its default
//! threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use trace_bench::{preset_from_env, sweep3d_workloads};
use trace_eval::threshold::{threshold_figure_table, threshold_study_for_method};
use trace_reduce::{Method, Reducer};
use trace_sim::{SizePreset, Workload, WorkloadKind};

const FIGURES: [(u32, &[Method]); 3] = [
    (17, &[Method::RelDiff, Method::AbsDiff, Method::Manhattan]),
    (18, &[Method::Euclidean, Method::Chebyshev, Method::IterK]),
    (19, &[Method::AvgWave, Method::HaarWave]),
];

fn regenerate_figures() {
    let preset = preset_from_env(SizePreset::Tiny);
    eprintln!("[fig17-19] generating the sweep3d workloads at {preset:?} preset...");
    let traces = sweep3d_workloads(preset);
    for (figure, methods) in FIGURES {
        println!("Figure {figure}:");
        for &method in methods {
            let points = threshold_study_for_method(&traces, method);
            println!("{}", threshold_figure_table(method, &points).render());
        }
    }
}

fn bench_sweep3d_reduction(c: &mut Criterion) {
    regenerate_figures();

    let full = Workload::new(WorkloadKind::Sweep3d8p, SizePreset::Small).generate();
    let mut group = c.benchmark_group("fig17_19/reduce_sweep3d_8p");
    group.sample_size(10);
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                let reducer = Reducer::with_default_threshold(method);
                b.iter(|| reducer.reduce_app(&full))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep3d_reduction);
criterion_main!(benches);
