#![forbid(unsafe_code)]
//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates the data series of one (or one group of)
//! paper figure/table and prints it before running a Criterion measurement
//! of the underlying operation.  The workload scale is controlled with the
//! `TRACE_REPRO_PRESET` environment variable (`paper`, `small`, `tiny`), so
//! `cargo bench` stays fast by default (CI pins the `tiny` preset) while
//! `TRACE_REPRO_PRESET=paper cargo bench` reproduces the full-scale numbers
//! recorded in `EXPERIMENTS.md` at the repository root — regenerate them
//! with the `record_experiments` example in this crate.

use trace_sim::{SizePreset, Workload, WorkloadKind};

/// Resolves the workload size preset from `TRACE_REPRO_PRESET`, using
/// `default` when the variable is unset or unrecognized.
pub fn preset_from_env(default: SizePreset) -> SizePreset {
    match std::env::var("TRACE_REPRO_PRESET").as_deref() {
        Ok("paper") => SizePreset::Paper,
        Ok("small") => SizePreset::Small,
        Ok("tiny") => SizePreset::Tiny,
        _ => default,
    }
}

/// Generates all 18 paper workloads at the given preset.
pub fn all_workloads(preset: SizePreset) -> Vec<trace_model::AppTrace> {
    Workload::all(preset)
        .iter()
        .map(Workload::generate)
        .collect()
}

/// Generates the 16 benchmark workloads (everything except Sweep3D).
pub fn benchmark_workloads(preset: SizePreset) -> Vec<trace_model::AppTrace> {
    WorkloadKind::benchmarks()
        .into_iter()
        .map(|kind| Workload::new(kind, preset).generate())
        .collect()
}

/// Generates the two Sweep3D workloads.
pub fn sweep3d_workloads(preset: SizePreset) -> Vec<trace_model::AppTrace> {
    [WorkloadKind::Sweep3d8p, WorkloadKind::Sweep3d32p]
        .into_iter()
        .map(|kind| Workload::new(kind, preset).generate())
        .collect()
}

/// Stored-set-size scale factors for the matching sweep at a preset:
/// larger presets sweep further so the asymptotic regime of the candidate
/// index is visible, while tiny stays CI-fast.
pub fn matching_sweep_scales(preset: SizePreset) -> &'static [usize] {
    // The largest scale must grow the per-rank buckets well past the
    // index's small-bucket fallback, or the sweep (and the CI assertion
    // that the index out-prunes the scan there) measures nothing.
    match preset {
        SizePreset::Paper => &[1, 2, 4, 8, 16, 32],
        SizePreset::Small => &[1, 4, 16],
        SizePreset::Tiny => &[1, 4, 16],
    }
}

/// Generates `dyn_load_balance` with its stored set scaled by `scale`.
///
/// Iterations *and* the rebalance period grow together, so the drift
/// sawtooth keeps its ten cycles but each cycle visits `scale`× more
/// distinct per-iteration durations: the stored-representative set grows
/// with `scale` while later cycles still re-match the first cycle's
/// representatives (degree of matching stays ≥ 0.96 at every swept size —
/// the matching-heavy regime the candidate index targets).
pub fn scaled_dynload(preset: SizePreset, scale: usize) -> trace_model::AppTrace {
    use trace_sim::dynload::{dyn_load_balance, DynLoadParams};
    let base_iterations = match preset {
        SizePreset::Paper => 100,
        SizePreset::Small => 50,
        SizePreset::Tiny => 30,
    };
    let params = DynLoadParams {
        iterations: base_iterations * scale,
        rebalance_every: base_iterations * scale / 10,
        ..DynLoadParams::paper()
    };
    dyn_load_balance(&params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parsing_defaults_and_overrides() {
        // Unset or unknown values fall back to the provided default.
        std::env::remove_var("TRACE_REPRO_PRESET");
        assert_eq!(preset_from_env(SizePreset::Tiny), SizePreset::Tiny);
        std::env::set_var("TRACE_REPRO_PRESET", "bogus");
        assert_eq!(preset_from_env(SizePreset::Small), SizePreset::Small);
        std::env::set_var("TRACE_REPRO_PRESET", "paper");
        assert_eq!(preset_from_env(SizePreset::Tiny), SizePreset::Paper);
        std::env::remove_var("TRACE_REPRO_PRESET");
    }

    #[test]
    fn workload_groups_have_expected_sizes() {
        assert_eq!(benchmark_workloads(SizePreset::Tiny).len(), 16);
        assert_eq!(sweep3d_workloads(SizePreset::Tiny).len(), 2);
    }
}
