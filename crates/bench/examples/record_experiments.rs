//! Records the benchmark numbers published in `EXPERIMENTS.md`.
//!
//! Run with `TRACE_REPRO_PRESET=paper cargo run --release -p trace_bench
//! --example record_experiments` and paste the markdown output into
//! `EXPERIMENTS.md`.  Smaller presets (`small`, `tiny`) produce the same
//! tables at reduced scale for quick sanity checks.

use std::io::Cursor;
use std::time::Instant;

use trace_bench::{matching_sweep_scales, preset_from_env, scaled_dynload};
use trace_container::{read_app_container, ChunkSpec, Codec};
use trace_eval::file_size_percent;
use trace_format::parse_app_trace;
use trace_model::codec::{decode_app_trace, encode_app_trace};
use trace_reduce::{
    reduce_app_reference, CandidateSearch, MatchStats, Method, MethodConfig, Reducer,
};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{
    reduce_container_file, reduce_container_stream, reduce_stream, reduce_stream_sharded,
};

fn main() {
    let preset = preset_from_env(SizePreset::Paper);
    eprintln!("[record_experiments] generating all 18 workloads at {preset:?} preset...");
    let workloads = Workload::all(preset);
    let traces: Vec<_> = workloads.iter().map(Workload::generate).collect();
    let total_events: usize = traces.iter().map(|t| t.total_events()).sum();
    println!("preset: {preset:?} — 18 workloads, {total_events} events total\n");

    // Table 1: per-method aggregates over all 18 workloads.
    println!("| method | mean file size (% of full) | mean degree of matching | reduce wall time (ms, 18 workloads) |");
    println!("|---|---:|---:|---:|");
    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        let reducer = Reducer::new(config);
        let mut size_sum = 0.0;
        let mut match_sum = 0.0;
        let started = Instant::now();
        let reduced: Vec<_> = traces.iter().map(|t| reducer.reduce_app(t)).collect();
        let wall = started.elapsed();
        for (full, red) in traces.iter().zip(&reduced) {
            size_sum += file_size_percent(full, red);
            match_sum += red.degree_of_matching();
        }
        println!(
            "| {} | {:.2} | {:.3} | {:.1} |",
            config.label(),
            size_sum / traces.len() as f64,
            match_sum / traces.len() as f64,
            wall.as_secs_f64() * 1e3
        );
    }

    // Table 2: per-workload detail at the paper's representative method
    // (avgWave at its default threshold).
    let config = MethodConfig::with_default_threshold(Method::AvgWave);
    let reducer = Reducer::new(config);
    println!("\n| workload | events | file size (% of full) | degree of matching |");
    println!("|---|---:|---:|---:|");
    for (workload, full) in workloads.iter().zip(&traces) {
        let reduced = reducer.reduce_app(full);
        println!(
            "| {} | {} | {:.2} | {:.3} |",
            workload.name(),
            full.total_events(),
            file_size_percent(full, &reduced),
            reduced.degree_of_matching()
        );
    }

    // Table 3: streaming vs in-memory reduction over an amplified trace.
    let repeats = 10;
    let workload = Workload::new(WorkloadKind::DynLoadBalance, preset);
    eprintln!(
        "[record_experiments] amplifying {} x{repeats} for the streaming comparison...",
        workload.name()
    );
    let text = workload
        .write_text_amplified_to(Vec::new(), repeats)
        .expect("writing to a Vec cannot fail");

    let started = Instant::now();
    let app = parse_app_trace(std::str::from_utf8(&text).unwrap()).unwrap();
    let in_memory = reducer.reduce_app(&app);
    let in_memory_wall = started.elapsed();

    let started = Instant::now();
    let streamed = reduce_stream(config, Cursor::new(text.as_slice())).unwrap();
    let stream_wall = started.elapsed();
    assert_eq!(
        streamed.reduced, in_memory,
        "streaming must match in-memory"
    );

    let started = Instant::now();
    let sharded = reduce_stream_sharded(config, 4, |_| Ok(Cursor::new(text.clone()))).unwrap();
    let sharded_wall = started.elapsed();
    assert_eq!(sharded.reduced, in_memory, "sharding must match in-memory");

    println!(
        "\nstreaming comparison ({} x{repeats}, {} bytes of text, {} segments, avgWave):\n",
        workload.name(),
        text.len(),
        streamed.stats.segments
    );
    println!("| pipeline | wall time (ms) | peak resident segments |");
    println!("|---|---:|---:|");
    println!(
        "| parse + in-memory reduce | {:.1} | {} (all segments) |",
        in_memory_wall.as_secs_f64() * 1e3,
        streamed.stats.segments
    );
    println!(
        "| streaming reduce | {:.1} | {} |",
        stream_wall.as_secs_f64() * 1e3,
        streamed.stats.peak_resident_segments
    );
    println!(
        "| streaming reduce, 4 shards | {:.1} | {} |",
        sharded_wall.as_secs_f64() * 1e3,
        sharded.stats.peak_resident_segments
    );

    // Table 4: text vs binary encodings of the same amplified trace, and
    // the binary ingestion pipelines over the chunked container.
    eprintln!("[record_experiments] encoding the amplified trace as v1 and v2 binaries...");
    let v1 = encode_app_trace(&app);
    let v2 = workload
        .write_container_amplified_to(Vec::new(), repeats, ChunkSpec::default())
        .expect("writing to a Vec cannot fail");
    let mut container_path = std::env::temp_dir();
    container_path.push(format!("record_experiments_{}.trc", std::process::id()));
    std::fs::write(&container_path, &v2).expect("temp container file");

    let started = Instant::now();
    let decoded = decode_app_trace(&v1).expect("v1 decodes");
    let v1_reduced = reducer.reduce_app(&decoded);
    let v1_wall = started.elapsed();

    let started = Instant::now();
    let container_streamed = reduce_container_stream(config, Cursor::new(&v2)).unwrap();
    let container_wall = started.elapsed();
    assert_eq!(
        container_streamed.reduced, v1_reduced,
        "container streaming must match the in-memory binary path"
    );

    let started = Instant::now();
    let container_sharded = reduce_container_file(config, &container_path, 4).unwrap();
    let container_sharded_wall = started.elapsed();
    assert_eq!(
        container_sharded.reduced, v1_reduced,
        "index-sharded ingestion must match"
    );
    let _ = std::fs::remove_file(&container_path);

    println!(
        "\nbinary container comparison (same amplified trace; text {} bytes, \
         binary v1 {} bytes, container v2 {} bytes, {:.1}% container overhead over v1):\n",
        text.len(),
        v1.len(),
        v2.len(),
        100.0 * (v2.len() as f64 - v1.len() as f64) / v1.len() as f64
    );
    println!("| pipeline | wall time (ms) | peak resident bytes of trace data |");
    println!("|---|---:|---:|");
    println!(
        "| v1 decode + in-memory reduce | {:.1} | {} (whole file) |",
        v1_wall.as_secs_f64() * 1e3,
        v1.len()
    );
    println!(
        "| v2 container streaming reduce | {:.1} | {} (one chunk) |",
        container_wall.as_secs_f64() * 1e3,
        container_streamed.stats.peak_chunk_bytes
    );
    println!(
        "| v2 container, index-sharded x4 | {:.1} | {} per worker (one chunk) |",
        container_sharded_wall.as_secs_f64() * 1e3,
        container_sharded.stats.peak_chunk_bytes
    );

    // Table 5: per-chunk compression — bytes on disk, ratio and ingestion
    // wall time per codec, on the paper's application trace (Sweep3D)
    // amplified like the other streaming tables.
    let workload = Workload::new(WorkloadKind::Sweep3d8p, preset);
    eprintln!(
        "[record_experiments] amplifying {} x{repeats} for the compression comparison...",
        workload.name()
    );
    let baseline = workload
        .write_container_amplified_to(Vec::new(), repeats, ChunkSpec::default())
        .expect("writing to a Vec cannot fail");
    let app = read_app_container(&baseline[..]).expect("container decodes");
    let v1 = encode_app_trace(&app);
    let expected = reducer.reduce_app(&app);

    let started = Instant::now();
    let decoded = decode_app_trace(&v1).expect("v1 decodes");
    let v1_wall = started.elapsed();
    assert_eq!(reducer.reduce_app(&decoded), expected);

    println!(
        "\nper-chunk compression ({} x{repeats}, {} events, avgWave; \
         monolithic v1 {} bytes decoded+reduced in {:.1} ms):\n",
        workload.name(),
        app.total_events(),
        v1.len(),
        v1_wall.as_secs_f64() * 1e3
    );
    println!(
        "| codec | bytes on disk | ratio vs none | stream ingest (ms) | index-sharded x4 (ms) |"
    );
    println!("|---|---:|---:|---:|---:|");
    let mut container_path = std::env::temp_dir();
    container_path.push(format!(
        "record_experiments_codec_{}.trc",
        std::process::id()
    ));
    for codec in Codec::ALL {
        let bytes = workload
            .write_container_amplified_to(Vec::new(), repeats, ChunkSpec::with_codec(codec))
            .expect("writing to a Vec cannot fail");
        std::fs::write(&container_path, &bytes).expect("temp container file");

        let started = Instant::now();
        let streamed = reduce_container_stream(config, Cursor::new(&bytes)).unwrap();
        let stream_wall = started.elapsed();
        assert_eq!(
            streamed.reduced, expected,
            "compressed ingestion must match the uncompressed output"
        );

        let started = Instant::now();
        let sharded = reduce_container_file(config, &container_path, 4).unwrap();
        let sharded_wall = started.elapsed();
        assert_eq!(sharded.reduced, expected);

        println!(
            "| {} | {} | {:.2}x | {:.1} | {:.1} |",
            codec.name(),
            bytes.len(),
            baseline.len() as f64 / bytes.len() as f64,
            stream_wall.as_secs_f64() * 1e3,
            sharded_wall.as_secs_f64() * 1e3
        );
    }
    let _ = std::fs::remove_file(&container_path);

    // Table 6: similarity-matching throughput — the cached-feature fast
    // path vs the preserved naive reference loop, per method, over all 18
    // workloads, plus the fast path's pruning counters.  The per-method
    // numbers are also written to BENCH_matching.json (in the current
    // directory) so later PRs can diff against a recorded trajectory.
    let total_segments: usize = traces
        .iter()
        .flat_map(|t| t.ranks.iter())
        .map(|r| r.segment_instance_count())
        .sum();
    println!(
        "\nsimilarity matching (all 18 workloads, {total_segments} segment instances, \
         default thresholds; fast = cached features + prefilters + early abandon, \
         reference = naive per-comparison kernels):\n"
    );
    println!(
        "| method | reference (ms) | fast (ms) | speedup | fast segments/s | visited / eligible | index-pruned | prefilter-rejected | early-abandoned |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    let mut baseline_entries: Vec<(String, f64)> =
        vec![("matching/total_segments".to_string(), total_segments as f64)];
    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        let reducer = Reducer::new(config);

        // The timed fast pass also collects the pruning counters — the
        // same reduction loop as `reduce_app`, no extra pass needed.
        let started = Instant::now();
        let mut stats = MatchStats::default();
        let fast: Vec<_> = traces
            .iter()
            .map(|t| {
                let (reduced, trace_stats) = reducer.reduce_app_with_stats(t);
                stats.absorb(&trace_stats);
                reduced
            })
            .collect();
        let fast_wall = started.elapsed();

        let started = Instant::now();
        let reference: Vec<_> = traces
            .iter()
            .map(|t| reduce_app_reference(config, t))
            .collect();
        let reference_wall = started.elapsed();
        assert_eq!(fast, reference, "{method}: fast path must be bit-identical");

        let fast_rate = total_segments as f64 / fast_wall.as_secs_f64();
        let reference_rate = total_segments as f64 / reference_wall.as_secs_f64();
        println!(
            "| {} | {:.1} | {:.1} | {:.2}x | {:.0} | {} / {} ({:.1}%) | {} | {:.1}% | {:.1}% |",
            config.label(),
            reference_wall.as_secs_f64() * 1e3,
            fast_wall.as_secs_f64() * 1e3,
            reference_wall.as_secs_f64() / fast_wall.as_secs_f64(),
            fast_rate,
            stats.comparisons,
            stats.eligible,
            100.0 * stats.visited_fraction(),
            stats.index_window_prunes + stats.index_pivot_prunes,
            100.0 * stats.prefilter_reject_rate(),
            100.0 * stats.early_abandon_rate()
        );
        baseline_entries.push((
            format!("matching/{}/fast_segments_per_s", method.name()),
            fast_rate,
        ));
        baseline_entries.push((
            format!("matching/{}/reference_segments_per_s", method.name()),
            reference_rate,
        ));
    }
    // Table 7: stored-set-size sweep — the candidate index's scaling
    // curve.  `dyn_load_balance` regenerated with its stored set scaled
    // up while the match rate stays ≥ 0.97 (the matching-heavy regime);
    // the indexed visited fraction must *fall* with the stored-set size
    // while the linear scan's stays flat.  The per-scale fractions are
    // committed to BENCH_matching.json as the scaling curve.
    println!(
        "\nstored-set-size sweep (dyn_load_balance rescaled, default thresholds; \
         visited fraction = comparisons / eligible stored candidates):\n"
    );
    println!(
        "| scale | method | stored | degree of matching | indexed visited / eligible | indexed fraction | linear fraction |"
    );
    println!("|---:|---|---:|---:|---:|---:|---:|");
    for &scale in matching_sweep_scales(preset) {
        let app = scaled_dynload(preset, scale);
        for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
            let config = MethodConfig::with_default_threshold(method);
            let (reduced, indexed) =
                Reducer::with_search(config, CandidateSearch::Indexed).reduce_app_with_stats(&app);
            let (scan_reduced, linear) = Reducer::with_search(config, CandidateSearch::LinearScan)
                .reduce_app_with_stats(&app);
            assert_eq!(reduced, scan_reduced, "{method} x{scale}: paths must agree");
            println!(
                "| {scale} | {} | {} | {:.3} | {} / {} | {:.1}% | {:.1}% |",
                config.label(),
                reduced.total_stored(),
                reduced.degree_of_matching(),
                indexed.comparisons,
                indexed.eligible,
                100.0 * indexed.visited_fraction(),
                100.0 * linear.visited_fraction(),
            );
            baseline_entries.push((
                format!(
                    "matching_scaling/x{scale}/{}/indexed_visited_pct",
                    method.name()
                ),
                100.0 * indexed.visited_fraction(),
            ));
            baseline_entries.push((
                format!(
                    "matching_scaling/x{scale}/{}/linear_visited_pct",
                    method.name()
                ),
                100.0 * linear.visited_fraction(),
            ));
        }
    }

    let json = matching_baseline_json(&baseline_entries);
    match std::fs::write("BENCH_matching.json", &json) {
        Ok(()) => eprintln!("[record_experiments] wrote BENCH_matching.json"),
        Err(e) => eprintln!("[record_experiments] cannot write BENCH_matching.json: {e}"),
    }
}

/// Flat JSON object of benchmark names to numbers — the same shape the
/// vendored criterion shim reads as `CRITERION_BASELINE`.
fn matching_baseline_json(entries: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": {value:.1}"));
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push('}');
    out
}
