//! Property-based tests for the trace codec and the segment model.
//!
//! These exercise the invariants the rest of the workspace relies on:
//! encode/decode is the identity for arbitrary well-formed traces, decoding
//! never panics on arbitrary bytes, and segment rebase/offset round-trips.

use proptest::prelude::*;

use trace_model::codec::{
    decode_app_trace, decode_reduced_trace, encode_app_trace, encode_reduced_trace,
};
use trace_model::{
    AppTrace, CollectiveOp, CommInfo, Event, Rank, ReducedAppTrace, ReducedRankTrace, Segment,
    SegmentExec, StoredSegment, Time,
};

/// Strategy for communication metadata with small, realistic parameters.
fn comm_strategy(n_ranks: u32) -> impl Strategy<Value = CommInfo> {
    let rank = 0..n_ranks.max(1);
    prop_oneof![
        Just(CommInfo::Compute),
        (rank.clone(), 0u32..8, 1u64..65536).prop_map(|(peer, tag, bytes)| CommInfo::Send {
            peer: Rank(peer),
            tag,
            bytes
        }),
        (rank.clone(), 0u32..8, 1u64..65536).prop_map(|(peer, tag, bytes)| CommInfo::Recv {
            peer: Rank(peer),
            tag,
            bytes
        }),
        (rank.clone(), rank.clone(), 0u32..8, 1u64..65536).prop_map(|(to, from, tag, bytes)| {
            CommInfo::SendRecv {
                to: Rank(to),
                from: Rank(from),
                tag,
                bytes,
            }
        }),
        (0usize..CollectiveOp::ALL.len(), rank, 1u64..4096).prop_map(move |(op, root, bytes)| {
            CommInfo::Collective {
                op: CollectiveOp::ALL[op],
                root: Rank(root),
                comm_size: n_ranks,
                bytes,
            }
        }),
    ]
}

/// Strategy producing a well-formed [`AppTrace`] with a handful of ranks,
/// segments and events.
fn app_trace_strategy() -> impl Strategy<Value = AppTrace> {
    (1usize..4, 1usize..5, 1usize..5).prop_flat_map(|(n_ranks, n_segments, n_events)| {
        let comm = comm_strategy(n_ranks as u32);
        let event_durations = prop::collection::vec(
            (1u64..1000, 1u64..500, comm),
            n_ranks * n_segments * n_events,
        );
        event_durations.prop_map(move |durations| {
            let mut app = AppTrace::new("proptest", n_ranks);
            let work = app.regions.intern("do_work");
            let ctx = app.contexts.intern("main.1");
            let mut it = durations.into_iter();
            for r in 0..n_ranks {
                let mut now = Time::from_nanos(r as u64);
                for _ in 0..n_segments {
                    let seg_start = now;
                    app.ranks[r].begin_segment(ctx, seg_start);
                    for _ in 0..n_events {
                        let (gap, dur, comm) = it.next().unwrap();
                        let start = now + Time::from_nanos(gap);
                        let end = start + Time::from_nanos(dur);
                        app.ranks[r].push_event(Event::with_comm(work, start, end, comm));
                        now = end;
                    }
                    app.ranks[r].end_segment(ctx, now + Time::from_nanos(1));
                    now += Time::from_nanos(2);
                }
            }
            app
        })
    })
}

/// Strategy producing a well-formed [`ReducedAppTrace`].
fn reduced_trace_strategy() -> impl Strategy<Value = ReducedAppTrace> {
    (1usize..4, 1usize..4, 1usize..6, 1usize..5).prop_flat_map(
        |(n_ranks, n_stored, n_execs, n_events)| {
            let comm = comm_strategy(n_ranks as u32);
            prop::collection::vec((1u64..400, 1u64..400, comm), n_ranks * n_stored * n_events)
                .prop_map(move |samples| {
                    let mut app = AppTrace::new("proptest_reduced", n_ranks);
                    let work = app.regions.intern("do_work");
                    let ctx = app.contexts.intern("main.1");
                    let mut reduced = ReducedAppTrace::for_app(&app);
                    let mut it = samples.into_iter();
                    for r in 0..n_ranks {
                        let mut rrt = ReducedRankTrace::new(Rank(r as u32));
                        for id in 0..n_stored {
                            let mut events = Vec::new();
                            let mut now = Time::from_nanos(1);
                            for _ in 0..n_events {
                                let (gap, dur, comm) = it.next().unwrap();
                                let start = now + Time::from_nanos(gap);
                                let end = start + Time::from_nanos(dur);
                                events.push(Event::with_comm(work, start, end, comm));
                                now = end;
                            }
                            rrt.stored.push(StoredSegment {
                                id: id as u32,
                                segment: Segment {
                                    context: ctx,
                                    start: Time::ZERO,
                                    end: now + Time::from_nanos(1),
                                    events,
                                },
                                represented: 1,
                            });
                        }
                        for e in 0..n_execs {
                            rrt.execs.push(SegmentExec {
                                segment: (e % n_stored) as u32,
                                start: Time::from_nanos(e as u64 * 10_000),
                            });
                        }
                        reduced.ranks.push(rrt);
                    }
                    reduced
                })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn app_trace_codec_round_trips(app in app_trace_strategy()) {
        let bytes = encode_app_trace(&app);
        let decoded = decode_app_trace(&bytes).expect("well-formed traces must decode");
        prop_assert_eq!(app, decoded);
    }

    #[test]
    fn reduced_trace_codec_round_trips(reduced in reduced_trace_strategy()) {
        let bytes = encode_reduced_trace(&reduced);
        let decoded = decode_reduced_trace(&bytes).expect("well-formed reduced traces must decode");
        prop_assert_eq!(reduced, decoded);
    }

    #[test]
    fn generated_traces_are_well_formed(app in app_trace_strategy()) {
        prop_assert!(app.is_well_formed());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any result is fine; the property is "no panic".
        let _ = decode_app_trace(&bytes);
        let _ = decode_reduced_trace(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid_trace(
        app in app_trace_strategy(),
        flip in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = encode_app_trace(&app);
        for (idx, value) in flip {
            if !bytes.is_empty() {
                let i = idx.index(bytes.len());
                bytes[i] ^= value;
            }
        }
        let _ = decode_app_trace(&bytes);
    }

    #[test]
    fn segment_rebase_offset_round_trip(
        base in 0u64..1_000_000,
        start in 0u64..10_000,
        dur in 0u64..10_000,
    ) {
        let e = Event::compute(
            trace_model::RegionId(0),
            Time::from_nanos(base + start),
            Time::from_nanos(base + start + dur),
        );
        let rebased = e.rebased(Time::from_nanos(base));
        prop_assert_eq!(rebased.start.as_nanos(), start);
        prop_assert_eq!(rebased.offset(Time::from_nanos(base)), e);
    }

    #[test]
    fn reconstruction_preserves_exec_and_event_counts(reduced in reduced_trace_strategy()) {
        let app = reduced.reconstruct();
        prop_assert_eq!(app.rank_count(), reduced.rank_count());
        for (rank, rrt) in app.ranks.iter().zip(&reduced.ranks) {
            prop_assert_eq!(rank.segment_instance_count(), rrt.exec_count());
        }
    }
}
