//! Compact binary trace encoding.
//!
//! Every file-size number in the evaluation is the length in bytes of the
//! encoding produced here, for both full traces ([`encode_app_trace`]) and
//! reduced traces ([`encode_reduced_trace`]).  Both formats share the same
//! building blocks — string tables, LEB128 varints and delta-encoded time
//! stamps — so the full/reduced size ratio measures the reduction technique,
//! not a difference in serialization overhead.
//!
//! The formats are self-describing enough to round-trip exactly, which the
//! property tests in `tests/codec_roundtrip.rs` of this crate verify.

mod decode;
mod encode;
pub mod varint;

use std::fmt;

pub use decode::{
    decode_app_trace, decode_reduced_trace, read_exec, read_record, read_segment,
    read_stored_segment, read_string, read_string_table,
};
pub use encode::{
    encode_app_trace, encode_reduced_trace, write_exec, write_record, write_segment,
    write_stored_segment, write_string, write_string_table,
};

/// Magic bytes identifying a full application trace file.
pub const APP_TRACE_MAGIC: [u8; 4] = *b"TRCF";
/// Magic bytes identifying a reduced application trace file.
pub const REDUCED_TRACE_MAGIC: [u8; 4] = *b"TRCR";
/// Current format version written by the encoder.
pub const FORMAT_VERSION: u8 = 1;

/// Errors produced while decoding a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a complete value could be read.
    UnexpectedEof,
    /// The magic bytes did not identify the expected file kind.
    BadMagic {
        /// The magic bytes found in the input.
        found: [u8; 4],
    },
    /// The format version is not supported by this decoder.
    UnsupportedVersion(u8),
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string table entry was not valid UTF-8.
    BadUtf8,
    /// A varint did not fit in 64 bits.
    VarintOverflow,
    /// A delta-encoded time stamp went below zero.
    NegativeTime,
    /// A length prefix was implausibly large for the remaining input.
    LengthTooLarge(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of trace file"),
            CodecError::BadMagic { found } => write!(f, "bad magic bytes {found:?}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            CodecError::BadUtf8 => write!(f, "string table entry is not valid UTF-8"),
            CodecError::VarintOverflow => write!(f, "varint does not fit in 64 bits"),
            CodecError::NegativeTime => write!(f, "delta-encoded time stamp went negative"),
            CodecError::LengthTooLarge(n) => write!(f, "length prefix {n} exceeds remaining input"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over an encoded byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Reads one byte.
    pub fn read_byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.data.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads exactly `n` bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(CodecError::UnexpectedEof)?;
        self.pos = end;
        Ok(slice)
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CollectiveOp, CommInfo, Event};
    use crate::ids::Rank;
    use crate::reduced::{ReducedAppTrace, ReducedRankTrace, SegmentExec, StoredSegment};
    use crate::segment::Segment;
    use crate::time::Time;
    use crate::trace::AppTrace;

    fn sample_app_trace() -> AppTrace {
        let mut app = AppTrace::new("codec_sample", 2);
        let work = app.regions.intern("do_work");
        let send = app.regions.intern("MPI_Ssend");
        let recv = app.regions.intern("MPI_Recv");
        let all = app.regions.intern("MPI_Alltoall");
        let ctx_init = app.contexts.intern("init");
        let ctx_loop = app.contexts.intern("main.1");
        for r in 0..2u32 {
            let peer = Rank(1 - r);
            let base = 100 * u64::from(r);
            let rank = &mut app.ranks[r as usize];
            rank.begin_segment(ctx_init, Time::from_nanos(base));
            rank.push_event(Event::compute(
                work,
                Time::from_nanos(base + 1),
                Time::from_nanos(base + 20),
            ));
            rank.end_segment(ctx_init, Time::from_nanos(base + 21));
            for i in 0..3u64 {
                let t0 = base + 30 + i * 50;
                rank.begin_segment(ctx_loop, Time::from_nanos(t0));
                rank.push_event(
                    Event::with_comm(
                        if r == 0 { send } else { recv },
                        Time::from_nanos(t0 + 2),
                        Time::from_nanos(t0 + 12),
                        if r == 0 {
                            CommInfo::Send {
                                peer,
                                tag: 9,
                                bytes: 4096,
                            }
                        } else {
                            CommInfo::Recv {
                                peer,
                                tag: 9,
                                bytes: 4096,
                            }
                        },
                    )
                    .with_wait(Time::from_nanos(3)),
                );
                rank.push_event(Event::with_comm(
                    all,
                    Time::from_nanos(t0 + 13),
                    Time::from_nanos(t0 + 40),
                    CommInfo::Collective {
                        op: CollectiveOp::Alltoall,
                        root: Rank(0),
                        comm_size: 2,
                        bytes: 256,
                    },
                ));
                rank.end_segment(ctx_loop, Time::from_nanos(t0 + 41));
            }
        }
        app
    }

    fn sample_reduced_trace() -> ReducedAppTrace {
        let full = sample_app_trace();
        let mut reduced = ReducedAppTrace::for_app(&full);
        for r in 0..2u32 {
            let mut rt = ReducedRankTrace::new(Rank(r));
            rt.stored.push(StoredSegment {
                id: 0,
                segment: Segment {
                    context: full.contexts.lookup("main.1").unwrap(),
                    start: Time::ZERO,
                    end: Time::from_nanos(41),
                    events: vec![
                        Event::with_comm(
                            full.regions.lookup("MPI_Ssend").unwrap(),
                            Time::from_nanos(2),
                            Time::from_nanos(12),
                            CommInfo::Send {
                                peer: Rank(1 - r),
                                tag: 9,
                                bytes: 4096,
                            },
                        ),
                        Event::compute(
                            full.regions.lookup("do_work").unwrap(),
                            Time::from_nanos(13),
                            Time::from_nanos(40),
                        ),
                    ],
                },
                represented: 3,
            });
            rt.execs = vec![
                SegmentExec {
                    segment: 0,
                    start: Time::from_nanos(30),
                },
                SegmentExec {
                    segment: 0,
                    start: Time::from_nanos(80),
                },
                SegmentExec {
                    segment: 0,
                    start: Time::from_nanos(130),
                },
            ];
            reduced.ranks.push(rt);
        }
        reduced
    }

    #[test]
    fn app_trace_round_trip() {
        let app = sample_app_trace();
        let bytes = encode_app_trace(&app);
        let decoded = decode_app_trace(&bytes).expect("decode");
        assert_eq!(app, decoded);
    }

    #[test]
    fn reduced_trace_round_trip() {
        let reduced = sample_reduced_trace();
        let bytes = encode_reduced_trace(&reduced);
        let decoded = decode_reduced_trace(&bytes).expect("decode");
        assert_eq!(reduced, decoded);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let app = sample_app_trace();
        let bytes = encode_app_trace(&app);
        assert!(matches!(
            decode_reduced_trace(&bytes),
            Err(CodecError::BadMagic { .. })
        ));
        let reduced = sample_reduced_trace();
        let bytes = encode_reduced_trace(&reduced);
        assert!(matches!(
            decode_app_trace(&bytes),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let app = sample_app_trace();
        let bytes = encode_app_trace(&app);
        for cut in [3usize, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_app_trace(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let app = sample_app_trace();
        let mut bytes = encode_app_trace(&app);
        bytes[4] = 99;
        assert!(matches!(
            decode_app_trace(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn reduced_encoding_is_smaller_for_repetitive_trace() {
        // A trace whose loop body repeats identically should shrink a lot:
        // representatives are stored once, executions cost a few bytes each.
        let mut app = AppTrace::new("repetitive", 1);
        let work = app.regions.intern("do_work");
        let ctx = app.contexts.intern("main.1");
        let mut reduced = ReducedAppTrace::for_app(&app);
        let mut rrt = ReducedRankTrace::new(Rank(0));
        let representative = Segment {
            context: ctx,
            start: Time::ZERO,
            end: Time::from_nanos(1000),
            events: (0..10)
                .map(|i| {
                    Event::compute(
                        work,
                        Time::from_nanos(i * 100),
                        Time::from_nanos(i * 100 + 90),
                    )
                })
                .collect(),
        };
        {
            let rank = &mut app.ranks[0];
            for iter in 0..200u64 {
                let base = iter * 1000;
                rank.begin_segment(ctx, Time::from_nanos(base));
                for e in &representative.events {
                    rank.push_event(e.offset(Time::from_nanos(base)));
                }
                rank.end_segment(ctx, Time::from_nanos(base + 1000));
                rrt.execs.push(SegmentExec {
                    segment: 0,
                    start: Time::from_nanos(base),
                });
            }
        }
        rrt.stored.push(StoredSegment {
            id: 0,
            segment: representative,
            represented: 200,
        });
        reduced.ranks.push(rrt);

        let full_bytes = encode_app_trace(&app).len();
        let reduced_bytes = encode_reduced_trace(&reduced).len();
        assert!(
            (reduced_bytes as f64) < 0.1 * full_bytes as f64,
            "reduced {reduced_bytes} bytes should be well under 10% of full {full_bytes} bytes"
        );
    }
}
