//! Decoders for full and reduced application traces.

use super::encode::tags;
use super::varint::{read_i64, read_u64};
use super::{CodecError, Reader, APP_TRACE_MAGIC, FORMAT_VERSION, REDUCED_TRACE_MAGIC};
use crate::event::{CollectiveOp, CommInfo, Event};
use crate::ids::{ContextId, ContextTable, Rank, RegionId, RegionTable};
use crate::record::TraceRecord;
use crate::reduced::{ReducedAppTrace, ReducedRankTrace, SegmentExec, StoredSegment};
use crate::segment::Segment;
use crate::time::Time;
use crate::trace::{AppTrace, RankTrace};

fn collective_op_from_tag(tag: u8) -> Result<CollectiveOp, CodecError> {
    Ok(match tag {
        0 => CollectiveOp::Barrier,
        1 => CollectiveOp::Bcast,
        2 => CollectiveOp::Scatter,
        3 => CollectiveOp::Gather,
        4 => CollectiveOp::Reduce,
        5 => CollectiveOp::Allgather,
        6 => CollectiveOp::Allreduce,
        7 => CollectiveOp::Alltoall,
        tag => {
            return Err(CodecError::BadTag {
                what: "collective op",
                tag,
            })
        }
    })
}

fn read_header(reader: &mut Reader<'_>, expected_magic: [u8; 4]) -> Result<(), CodecError> {
    let magic = reader.read_bytes(4)?;
    match magic.first_chunk::<4>() {
        Some(&found) if found == expected_magic => {}
        Some(&found) => return Err(CodecError::BadMagic { found }),
        None => return Err(CodecError::UnexpectedEof),
    }
    let version = reader.read_byte()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Reads a length-prefixed UTF-8 string.
pub fn read_string(reader: &mut Reader<'_>) -> Result<String, CodecError> {
    let len = read_u64(reader)?;
    if len > reader.remaining() as u64 {
        return Err(CodecError::LengthTooLarge(len));
    }
    let bytes = reader.read_bytes(len as usize)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
}

/// Reads a count-prefixed table of length-prefixed strings.
pub fn read_string_table(reader: &mut Reader<'_>) -> Result<Vec<String>, CodecError> {
    let count = read_u64(reader)?;
    if count > reader.remaining() as u64 {
        return Err(CodecError::LengthTooLarge(count));
    }
    let mut names = Vec::with_capacity(count as usize);
    for _ in 0..count {
        names.push(read_string(reader)?);
    }
    Ok(names)
}

fn read_comm(reader: &mut Reader<'_>) -> Result<CommInfo, CodecError> {
    let tag = reader.read_byte()?;
    Ok(match tag {
        tags::COMM_COMPUTE => CommInfo::Compute,
        tags::COMM_SEND => CommInfo::Send {
            peer: Rank(read_u64(reader)? as u32),
            tag: read_u64(reader)? as u32,
            bytes: read_u64(reader)?,
        },
        tags::COMM_RECV => CommInfo::Recv {
            peer: Rank(read_u64(reader)? as u32),
            tag: read_u64(reader)? as u32,
            bytes: read_u64(reader)?,
        },
        tags::COMM_SENDRECV => CommInfo::SendRecv {
            to: Rank(read_u64(reader)? as u32),
            from: Rank(read_u64(reader)? as u32),
            tag: read_u64(reader)? as u32,
            bytes: read_u64(reader)?,
        },
        tags::COMM_COLLECTIVE => {
            let op = collective_op_from_tag(reader.read_byte()?)?;
            CommInfo::Collective {
                op,
                root: Rank(read_u64(reader)? as u32),
                comm_size: read_u64(reader)? as u32,
                bytes: read_u64(reader)?,
            }
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "comm info",
                tag,
            })
        }
    })
}

/// Reads one event with its start delta-encoded against `prev_time`; returns
/// the event and the new `prev_time`.
fn read_event(reader: &mut Reader<'_>, prev_time: Time) -> Result<(Event, Time), CodecError> {
    let region = RegionId(read_u64(reader)? as u32);
    let delta = read_i64(reader)?;
    let start = apply_time_delta(prev_time, delta)?;
    let duration = Time::from_nanos(read_u64(reader)?);
    let wait = Time::from_nanos(read_u64(reader)?);
    let comm = read_comm(reader)?;
    let event = Event {
        region,
        start,
        end: start + duration,
        comm,
        wait,
    };
    Ok((event, start))
}

/// Applies a delta to a reconstructed clock.  checked_add, not `+`: a
/// crafted file can pair a huge clock with a huge delta, and decoding
/// untrusted bytes must yield typed errors, never a debug-build overflow
/// panic.
fn apply_time_delta(prev: Time, delta: i64) -> Result<Time, CodecError> {
    match (prev.as_nanos() as i64).checked_add(delta) {
        Some(ns) if ns >= 0 => Ok(Time::from_nanos(ns as u64)),
        _ => Err(CodecError::NegativeTime),
    }
}

fn read_marker_time(reader: &mut Reader<'_>, prev_time: Time) -> Result<Time, CodecError> {
    let delta = read_i64(reader)?;
    apply_time_delta(prev_time, delta)
}

/// Reads one trace record with its time stamp delta-encoded against
/// `prev_time`; returns the record and the new `prev_time`.
///
/// Inverse of [`super::write_record`]; the chunked container format
/// (`trace_container`) decodes chunk payloads with this, restarting
/// `prev_time` at [`Time::ZERO`] for every chunk.
pub fn read_record(
    reader: &mut Reader<'_>,
    prev_time: Time,
) -> Result<(TraceRecord, Time), CodecError> {
    let tag = reader.read_byte()?;
    match tag {
        tags::RECORD_SEGMENT_BEGIN => {
            let context = ContextId(read_u64(reader)? as u32);
            let time = read_marker_time(reader, prev_time)?;
            Ok((TraceRecord::SegmentBegin { context, time }, time))
        }
        tags::RECORD_SEGMENT_END => {
            let context = ContextId(read_u64(reader)? as u32);
            let time = read_marker_time(reader, prev_time)?;
            Ok((TraceRecord::SegmentEnd { context, time }, time))
        }
        tags::RECORD_EVENT => {
            let (event, new_prev) = read_event(reader, prev_time)?;
            Ok((TraceRecord::Event(event), new_prev))
        }
        tag => Err(CodecError::BadTag {
            what: "trace record",
            tag,
        }),
    }
}

/// Decodes a full application trace produced by
/// [`super::encode_app_trace`].
pub fn decode_app_trace(bytes: &[u8]) -> Result<AppTrace, CodecError> {
    let mut reader = Reader::new(bytes);
    read_header(&mut reader, APP_TRACE_MAGIC)?;
    let name = read_string(&mut reader)?;
    let regions = RegionTable::from_names(read_string_table(&mut reader)?);
    let contexts = ContextTable::from_names(read_string_table(&mut reader)?);
    let rank_count = read_u64(&mut reader)?;
    let mut ranks = Vec::with_capacity(rank_count.min(1 << 20) as usize);
    for _ in 0..rank_count {
        let rank = Rank(read_u64(&mut reader)? as u32);
        let record_count = read_u64(&mut reader)?;
        if record_count > (reader.remaining() as u64 + 1) * 8 {
            return Err(CodecError::LengthTooLarge(record_count));
        }
        let mut trace = RankTrace::new(rank);
        trace.records.reserve(record_count as usize);
        let mut prev_time = Time::ZERO;
        for _ in 0..record_count {
            let (record, new_prev) = read_record(&mut reader, prev_time)?;
            prev_time = new_prev;
            trace.push(record);
        }
        ranks.push(trace);
    }
    Ok(AppTrace {
        name,
        regions,
        contexts,
        ranks,
    })
}

/// Reads one rebased segment (inverse of [`super::write_segment`]).
pub fn read_segment(reader: &mut Reader<'_>) -> Result<Segment, CodecError> {
    let context = ContextId(read_u64(reader)? as u32);
    let start = Time::from_nanos(read_u64(reader)?);
    let end = Time::from_nanos(read_u64(reader)?);
    let event_count = read_u64(reader)?;
    if event_count > (reader.remaining() as u64 + 1) * 8 {
        return Err(CodecError::LengthTooLarge(event_count));
    }
    let mut events = Vec::with_capacity(event_count as usize);
    let mut prev_time = Time::ZERO;
    for _ in 0..event_count {
        let (event, new_prev) = read_event(reader, prev_time)?;
        prev_time = new_prev;
        events.push(event);
    }
    Ok(Segment {
        context,
        start,
        end,
        events,
    })
}

/// Reads one stored representative segment (inverse of
/// [`super::write_stored_segment`]).
pub fn read_stored_segment(reader: &mut Reader<'_>) -> Result<StoredSegment, CodecError> {
    let id = read_u64(reader)? as u32;
    let represented = read_u64(reader)? as u32;
    let segment = read_segment(reader)?;
    Ok(StoredSegment {
        id,
        segment,
        represented,
    })
}

/// Reads one segment execution with its start delta-encoded against
/// `prev_start`; returns the execution and the new `prev_start`.
pub fn read_exec(
    reader: &mut Reader<'_>,
    prev_start: Time,
) -> Result<(SegmentExec, Time), CodecError> {
    let segment = read_u64(reader)? as u32;
    let delta = read_i64(reader)?;
    let start = apply_time_delta(prev_start, delta)?;
    Ok((SegmentExec { segment, start }, start))
}

/// Decodes a reduced application trace produced by
/// [`super::encode_reduced_trace`].
pub fn decode_reduced_trace(bytes: &[u8]) -> Result<ReducedAppTrace, CodecError> {
    let mut reader = Reader::new(bytes);
    read_header(&mut reader, REDUCED_TRACE_MAGIC)?;
    let name = read_string(&mut reader)?;
    let regions = RegionTable::from_names(read_string_table(&mut reader)?);
    let contexts = ContextTable::from_names(read_string_table(&mut reader)?);
    let rank_count = read_u64(&mut reader)?;
    let mut ranks = Vec::with_capacity(rank_count.min(1 << 20) as usize);
    for _ in 0..rank_count {
        let rank = Rank(read_u64(&mut reader)? as u32);
        let mut reduced = ReducedRankTrace::new(rank);
        let stored_count = read_u64(&mut reader)?;
        if stored_count > (reader.remaining() as u64 + 1) * 4 {
            return Err(CodecError::LengthTooLarge(stored_count));
        }
        for _ in 0..stored_count {
            reduced.stored.push(read_stored_segment(&mut reader)?);
        }
        let exec_count = read_u64(&mut reader)?;
        if exec_count > (reader.remaining() as u64 + 1) * 2 {
            return Err(CodecError::LengthTooLarge(exec_count));
        }
        let mut prev_start = Time::ZERO;
        for _ in 0..exec_count {
            let (exec, new_prev) = read_exec(&mut reader, prev_start)?;
            prev_start = new_prev;
            reduced.execs.push(exec);
        }
        ranks.push(reduced);
    }
    Ok(ReducedAppTrace {
        name,
        regions,
        contexts,
        ranks,
    })
}
