//! Encoders for full and reduced application traces.

use super::varint::{write_i64, write_u64};
use super::{APP_TRACE_MAGIC, FORMAT_VERSION, REDUCED_TRACE_MAGIC};
use crate::event::{CollectiveOp, CommInfo, Event};
use crate::record::TraceRecord;
use crate::reduced::ReducedAppTrace;
use crate::segment::Segment;
use crate::time::Time;
use crate::trace::AppTrace;

/// Comm-info tag bytes shared by the encoder and decoder.
pub(super) mod tags {
    pub const RECORD_SEGMENT_BEGIN: u8 = 0;
    pub const RECORD_SEGMENT_END: u8 = 1;
    pub const RECORD_EVENT: u8 = 2;

    pub const COMM_COMPUTE: u8 = 0;
    pub const COMM_SEND: u8 = 1;
    pub const COMM_RECV: u8 = 2;
    pub const COMM_SENDRECV: u8 = 3;
    pub const COMM_COLLECTIVE: u8 = 4;
}

pub(super) fn collective_op_tag(op: CollectiveOp) -> u8 {
    match op {
        CollectiveOp::Barrier => 0,
        CollectiveOp::Bcast => 1,
        CollectiveOp::Scatter => 2,
        CollectiveOp::Gather => 3,
        CollectiveOp::Reduce => 4,
        CollectiveOp::Allgather => 5,
        CollectiveOp::Allreduce => 6,
        CollectiveOp::Alltoall => 7,
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_string_table(out: &mut Vec<u8>, names: &[String]) {
    write_u64(out, names.len() as u64);
    for name in names {
        write_string(out, name);
    }
}

fn write_comm(out: &mut Vec<u8>, comm: &CommInfo) {
    match comm {
        CommInfo::Compute => out.push(tags::COMM_COMPUTE),
        CommInfo::Send { peer, tag, bytes } => {
            out.push(tags::COMM_SEND);
            write_u64(out, u64::from(peer.as_u32()));
            write_u64(out, u64::from(*tag));
            write_u64(out, *bytes);
        }
        CommInfo::Recv { peer, tag, bytes } => {
            out.push(tags::COMM_RECV);
            write_u64(out, u64::from(peer.as_u32()));
            write_u64(out, u64::from(*tag));
            write_u64(out, *bytes);
        }
        CommInfo::SendRecv {
            to,
            from,
            tag,
            bytes,
        } => {
            out.push(tags::COMM_SENDRECV);
            write_u64(out, u64::from(to.as_u32()));
            write_u64(out, u64::from(from.as_u32()));
            write_u64(out, u64::from(*tag));
            write_u64(out, *bytes);
        }
        CommInfo::Collective {
            op,
            root,
            comm_size,
            bytes,
        } => {
            out.push(tags::COMM_COLLECTIVE);
            out.push(collective_op_tag(*op));
            write_u64(out, u64::from(root.as_u32()));
            write_u64(out, u64::from(*comm_size));
            write_u64(out, *bytes);
        }
    }
}

/// Writes an event whose `start` is delta-encoded against `prev_time`, and
/// returns the new `prev_time` (the event start).
fn write_event(out: &mut Vec<u8>, event: &Event, prev_time: Time) -> Time {
    write_u64(out, u64::from(event.region.as_u32()));
    write_i64(
        out,
        event.start.as_nanos() as i64 - prev_time.as_nanos() as i64,
    );
    write_u64(out, event.duration().as_nanos());
    write_u64(out, event.wait.as_nanos());
    write_comm(out, &event.comm);
    event.start
}

/// Encodes a full application trace.
pub fn encode_app_trace(app: &AppTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + app.total_records() * 8);
    out.extend_from_slice(&APP_TRACE_MAGIC);
    out.push(FORMAT_VERSION);
    write_string(&mut out, &app.name);
    write_string_table(&mut out, app.regions.names());
    write_string_table(&mut out, app.contexts.names());
    write_u64(&mut out, app.ranks.len() as u64);
    for rank in &app.ranks {
        write_u64(&mut out, u64::from(rank.rank.as_u32()));
        write_u64(&mut out, rank.records.len() as u64);
        let mut prev_time = Time::ZERO;
        for record in &rank.records {
            match record {
                TraceRecord::SegmentBegin { context, time } => {
                    out.push(tags::RECORD_SEGMENT_BEGIN);
                    write_u64(&mut out, u64::from(context.as_u32()));
                    write_i64(
                        &mut out,
                        time.as_nanos() as i64 - prev_time.as_nanos() as i64,
                    );
                    prev_time = *time;
                }
                TraceRecord::SegmentEnd { context, time } => {
                    out.push(tags::RECORD_SEGMENT_END);
                    write_u64(&mut out, u64::from(context.as_u32()));
                    write_i64(
                        &mut out,
                        time.as_nanos() as i64 - prev_time.as_nanos() as i64,
                    );
                    prev_time = *time;
                }
                TraceRecord::Event(event) => {
                    out.push(tags::RECORD_EVENT);
                    prev_time = write_event(&mut out, event, prev_time);
                }
            }
        }
    }
    out
}

/// Writes one rebased segment (used for stored representatives).
pub(super) fn write_segment(out: &mut Vec<u8>, segment: &Segment) {
    write_u64(out, u64::from(segment.context.as_u32()));
    write_u64(out, segment.start.as_nanos());
    write_u64(out, segment.end.as_nanos());
    write_u64(out, segment.events.len() as u64);
    let mut prev_time = Time::ZERO;
    for event in &segment.events {
        prev_time = write_event(out, event, prev_time);
    }
}

/// Encodes a reduced application trace.
pub fn encode_reduced_trace(reduced: &ReducedAppTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + reduced.total_execs() * 4);
    out.extend_from_slice(&REDUCED_TRACE_MAGIC);
    out.push(FORMAT_VERSION);
    write_string(&mut out, &reduced.name);
    write_string_table(&mut out, reduced.regions.names());
    write_string_table(&mut out, reduced.contexts.names());
    write_u64(&mut out, reduced.ranks.len() as u64);
    for rank in &reduced.ranks {
        write_u64(&mut out, u64::from(rank.rank.as_u32()));
        write_u64(&mut out, rank.stored.len() as u64);
        for stored in &rank.stored {
            write_u64(&mut out, u64::from(stored.id));
            write_u64(&mut out, u64::from(stored.represented));
            write_segment(&mut out, &stored.segment);
        }
        write_u64(&mut out, rank.execs.len() as u64);
        let mut prev_start = Time::ZERO;
        for exec in &rank.execs {
            write_u64(&mut out, u64::from(exec.segment));
            write_i64(
                &mut out,
                exec.start.as_nanos() as i64 - prev_start.as_nanos() as i64,
            );
            prev_start = exec.start;
        }
    }
    out
}
