//! Encoders for full and reduced application traces.

use super::varint::{write_i64, write_u64};
use super::{APP_TRACE_MAGIC, FORMAT_VERSION, REDUCED_TRACE_MAGIC};
use crate::event::{CollectiveOp, CommInfo, Event};
use crate::record::TraceRecord;
use crate::reduced::ReducedAppTrace;
use crate::segment::Segment;
use crate::time::Time;
use crate::trace::AppTrace;

/// Comm-info tag bytes shared by the encoder and decoder.
pub(super) mod tags {
    pub const RECORD_SEGMENT_BEGIN: u8 = 0;
    pub const RECORD_SEGMENT_END: u8 = 1;
    pub const RECORD_EVENT: u8 = 2;

    pub const COMM_COMPUTE: u8 = 0;
    pub const COMM_SEND: u8 = 1;
    pub const COMM_RECV: u8 = 2;
    pub const COMM_SENDRECV: u8 = 3;
    pub const COMM_COLLECTIVE: u8 = 4;
}

pub(super) fn collective_op_tag(op: CollectiveOp) -> u8 {
    match op {
        CollectiveOp::Barrier => 0,
        CollectiveOp::Bcast => 1,
        CollectiveOp::Scatter => 2,
        CollectiveOp::Gather => 3,
        CollectiveOp::Reduce => 4,
        CollectiveOp::Allgather => 5,
        CollectiveOp::Allreduce => 6,
        CollectiveOp::Alltoall => 7,
    }
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_string(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Writes a count-prefixed table of length-prefixed strings.
pub fn write_string_table(out: &mut Vec<u8>, names: &[String]) {
    write_u64(out, names.len() as u64);
    for name in names {
        write_string(out, name);
    }
}

fn write_comm(out: &mut Vec<u8>, comm: &CommInfo) {
    match comm {
        CommInfo::Compute => out.push(tags::COMM_COMPUTE),
        CommInfo::Send { peer, tag, bytes } => {
            out.push(tags::COMM_SEND);
            write_u64(out, u64::from(peer.as_u32()));
            write_u64(out, u64::from(*tag));
            write_u64(out, *bytes);
        }
        CommInfo::Recv { peer, tag, bytes } => {
            out.push(tags::COMM_RECV);
            write_u64(out, u64::from(peer.as_u32()));
            write_u64(out, u64::from(*tag));
            write_u64(out, *bytes);
        }
        CommInfo::SendRecv {
            to,
            from,
            tag,
            bytes,
        } => {
            out.push(tags::COMM_SENDRECV);
            write_u64(out, u64::from(to.as_u32()));
            write_u64(out, u64::from(from.as_u32()));
            write_u64(out, u64::from(*tag));
            write_u64(out, *bytes);
        }
        CommInfo::Collective {
            op,
            root,
            comm_size,
            bytes,
        } => {
            out.push(tags::COMM_COLLECTIVE);
            out.push(collective_op_tag(*op));
            write_u64(out, u64::from(root.as_u32()));
            write_u64(out, u64::from(*comm_size));
            write_u64(out, *bytes);
        }
    }
}

/// Writes one trace record with its time stamp delta-encoded against
/// `prev_time`, returning the new `prev_time` (the record's time stamp).
///
/// This is the unit the chunked container format (`trace_container`)
/// reuses: a run of records encoded with `prev_time` starting at
/// [`Time::ZERO`] is self-contained and can be decoded without any bytes
/// outside the run.
pub fn write_record(out: &mut Vec<u8>, record: &TraceRecord, prev_time: Time) -> Time {
    match record {
        TraceRecord::SegmentBegin { context, time } => {
            out.push(tags::RECORD_SEGMENT_BEGIN);
            write_u64(out, u64::from(context.as_u32()));
            write_i64(out, time.as_nanos() as i64 - prev_time.as_nanos() as i64);
            *time
        }
        TraceRecord::SegmentEnd { context, time } => {
            out.push(tags::RECORD_SEGMENT_END);
            write_u64(out, u64::from(context.as_u32()));
            write_i64(out, time.as_nanos() as i64 - prev_time.as_nanos() as i64);
            *time
        }
        TraceRecord::Event(event) => {
            out.push(tags::RECORD_EVENT);
            write_event(out, event, prev_time)
        }
    }
}

/// Writes an event whose `start` is delta-encoded against `prev_time`, and
/// returns the new `prev_time` (the event start).
fn write_event(out: &mut Vec<u8>, event: &Event, prev_time: Time) -> Time {
    write_u64(out, u64::from(event.region.as_u32()));
    write_i64(
        out,
        event.start.as_nanos() as i64 - prev_time.as_nanos() as i64,
    );
    write_u64(out, event.duration().as_nanos());
    write_u64(out, event.wait.as_nanos());
    write_comm(out, &event.comm);
    event.start
}

/// Encodes a full application trace.
pub fn encode_app_trace(app: &AppTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + app.total_records() * 8);
    out.extend_from_slice(&APP_TRACE_MAGIC);
    out.push(FORMAT_VERSION);
    write_string(&mut out, &app.name);
    write_string_table(&mut out, app.regions.names());
    write_string_table(&mut out, app.contexts.names());
    write_u64(&mut out, app.ranks.len() as u64);
    for rank in &app.ranks {
        write_u64(&mut out, u64::from(rank.rank.as_u32()));
        write_u64(&mut out, rank.records.len() as u64);
        let mut prev_time = Time::ZERO;
        for record in &rank.records {
            prev_time = write_record(&mut out, record, prev_time);
        }
    }
    out
}

/// Writes one rebased segment (used for stored representatives).
pub fn write_segment(out: &mut Vec<u8>, segment: &Segment) {
    write_u64(out, u64::from(segment.context.as_u32()));
    write_u64(out, segment.start.as_nanos());
    write_u64(out, segment.end.as_nanos());
    write_u64(out, segment.events.len() as u64);
    let mut prev_time = Time::ZERO;
    for event in &segment.events {
        prev_time = write_event(out, event, prev_time);
    }
}

/// Writes one stored representative segment (`id`, represented count and
/// the rebased segment body).
pub fn write_stored_segment(out: &mut Vec<u8>, stored: &crate::reduced::StoredSegment) {
    write_u64(out, u64::from(stored.id));
    write_u64(out, u64::from(stored.represented));
    write_segment(out, &stored.segment);
}

/// Writes one segment execution with its start delta-encoded against
/// `prev_start`, returning the new `prev_start`.
pub fn write_exec(out: &mut Vec<u8>, exec: &crate::reduced::SegmentExec, prev_start: Time) -> Time {
    write_u64(out, u64::from(exec.segment));
    write_i64(
        out,
        exec.start.as_nanos() as i64 - prev_start.as_nanos() as i64,
    );
    exec.start
}

/// Encodes a reduced application trace.
pub fn encode_reduced_trace(reduced: &ReducedAppTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + reduced.total_execs() * 4);
    out.extend_from_slice(&REDUCED_TRACE_MAGIC);
    out.push(FORMAT_VERSION);
    write_string(&mut out, &reduced.name);
    write_string_table(&mut out, reduced.regions.names());
    write_string_table(&mut out, reduced.contexts.names());
    write_u64(&mut out, reduced.ranks.len() as u64);
    for rank in &reduced.ranks {
        write_u64(&mut out, u64::from(rank.rank.as_u32()));
        write_u64(&mut out, rank.stored.len() as u64);
        for stored in &rank.stored {
            write_stored_segment(&mut out, stored);
        }
        write_u64(&mut out, rank.execs.len() as u64);
        let mut prev_start = Time::ZERO;
        for exec in &rank.execs {
            prev_start = write_exec(&mut out, exec, prev_start);
        }
    }
    out
}
