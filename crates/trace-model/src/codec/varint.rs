//! LEB128 variable-length integers and zig-zag signed encoding.
//!
//! The codec delta-encodes time stamps, so most values are small and a
//! variable-length encoding keeps trace files compact — which is what makes
//! the file-size percentages of the evaluation meaningful.

use super::{CodecError, Reader};

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` to `out` as a zig-zag-encoded signed LEB128 varint.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Reads an unsigned LEB128 varint.
pub fn read_u64(reader: &mut Reader<'_>) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = reader.read_byte()?;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        // The final (10th) byte of a 64-bit varint may only contribute one bit.
        if shift == 63 && (byte & 0x7e) != 0 {
            return Err(CodecError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads a zig-zag-encoded signed LEB128 varint.
pub fn read_i64(reader: &mut Reader<'_>) -> Result<i64, CodecError> {
    Ok(zigzag_decode(read_u64(reader)?))
}

/// Zig-zag encodes a signed value so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut r = Reader::new(&buf);
        let decoded = read_u64(&mut r).unwrap();
        assert!(r.is_at_end(), "all bytes must be consumed");
        decoded
    }

    fn round_trip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        let mut r = Reader::new(&buf);
        read_i64(&mut r).unwrap()
    }

    #[test]
    fn unsigned_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            assert_eq!(round_trip_u64(v), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1_000_000,
            -1_000_000,
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(round_trip_i64(v), v);
        }
    }

    #[test]
    fn small_values_use_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 42);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zigzag_pairs() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-5i64, 5, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut r = Reader::new(&buf);
        assert!(matches!(read_u64(&mut r), Err(CodecError::UnexpectedEof)));
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // 11 continuation bytes cannot encode a u64.
        let buf = vec![0xff; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(read_u64(&mut r), Err(CodecError::VarintOverflow)));
    }
}
