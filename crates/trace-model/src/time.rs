//! Fixed-point time stamps.
//!
//! All traces in this workspace use unsigned nanosecond time stamps measured
//! from the start of the (simulated) application run.  Fixed-point time keeps
//! the codec compact and the simulator deterministic; the similarity metrics
//! convert to `f64` only at comparison time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A span of time, in nanoseconds.
///
/// `Duration` is a thin alias used where a value is a length of time rather
/// than a point in time; the two share the same representation.
pub type Duration = Time;

/// A point in time (or a span of time) in nanoseconds since the start of the
/// traced run.
///
/// Arithmetic saturates rather than panicking: the reduction algorithm
/// rebases time stamps by subtracting the segment start, and reconstruction
/// adds offsets back, so saturation gives well-defined behaviour for
/// degenerate inputs without poisoning whole experiments.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero time stamp.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time stamp.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time stamp from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time stamp from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time stamp from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time stamp from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Raw nanosecond value.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, as a float (used for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds, as a float (used for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value as a float in nanoseconds; the unit used by similarity metrics.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Builds a time stamp from a float nanosecond value, clamping negatives
    /// to zero.  Used when reconstructing traces from averaged segments.
    #[inline]
    pub fn from_f64(ns: f64) -> Self {
        if ns.is_nan() || ns <= 0.0 {
            Time(0)
        } else if ns >= u64::MAX as f64 {
            Time::MAX
        } else {
            Time(ns.round() as u64)
        }
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Absolute difference between two time stamps.
    #[inline]
    pub fn abs_diff(self, rhs: Time) -> Duration {
        Time(self.0.abs_diff(rhs.0))
    }

    /// Returns the larger of two time stamps.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    /// Returns the smaller of two time stamps.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// Scales the time stamp by a float factor (used by the averaging
    /// reducer and by noise models), clamping at the representable range.
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        Time::from_f64(self.0 as f64 * factor)
    }

    /// True if the time stamp is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Time {
    fn from(ns: u64) -> Self {
        Time(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(Time::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Time::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Time::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn saturating_arithmetic() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(25);
        assert_eq!((b - a).as_nanos(), 15);
        assert_eq!((a - b).as_nanos(), 0, "subtraction saturates at zero");
        assert_eq!((Time::MAX + b), Time::MAX, "addition saturates at MAX");
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Time::from_nanos(40);
        let b = Time::from_nanos(17);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b).as_nanos(), 23);
    }

    #[test]
    fn float_round_trip() {
        let t = Time::from_nanos(123_456_789);
        assert_eq!(Time::from_f64(t.as_f64()), t);
        assert_eq!(Time::from_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_f64(f64::NAN), Time::ZERO);
        assert_eq!(Time::from_f64(f64::INFINITY), Time::MAX);
    }

    #[test]
    fn scale_clamps() {
        let t = Time::from_nanos(100);
        assert_eq!(t.scale(0.5).as_nanos(), 50);
        assert_eq!(t.scale(-2.0), Time::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Time::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", Time::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Time::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Time::from_secs(5)), "5.000s");
    }

    #[test]
    fn sum_accumulates() {
        let total: Time = [1u64, 2, 3, 4].into_iter().map(Time::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
