//! Raw per-rank trace records.
//!
//! The tracer (in this workspace, the simulator's tracing backend; in the
//! paper, Dyninst-inserted instrumentation) writes a flat stream of records
//! per rank: segment begin/end markers interleaved with completed events.

use crate::event::Event;
use crate::ids::ContextId;
use crate::time::Time;

/// One record in the raw per-rank trace stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceRecord {
    /// A segment context begins (e.g. the top of a loop iteration).
    SegmentBegin {
        /// The segment context being entered.
        context: ContextId,
        /// Time at which the segment starts.
        time: Time,
    },
    /// The current segment context ends.
    SegmentEnd {
        /// The segment context being left.
        context: ContextId,
        /// Time at which the segment ends.
        time: Time,
    },
    /// A completed event (function invocation) inside the current segment.
    Event(Event),
}

impl TraceRecord {
    /// The time stamp associated with the record: marker time, or event
    /// start time for event records.
    pub fn time(&self) -> Time {
        match self {
            TraceRecord::SegmentBegin { time, .. } | TraceRecord::SegmentEnd { time, .. } => *time,
            TraceRecord::Event(e) => e.start,
        }
    }

    /// Returns the contained event, if this record is an event.
    pub fn as_event(&self) -> Option<&Event> {
        match self {
            TraceRecord::Event(e) => Some(e),
            _ => None,
        }
    }

    /// True if the record is a segment marker (begin or end).
    pub fn is_marker(&self) -> bool {
        matches!(
            self,
            TraceRecord::SegmentBegin { .. } | TraceRecord::SegmentEnd { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RegionId;

    #[test]
    fn record_time_accessors() {
        let begin = TraceRecord::SegmentBegin {
            context: ContextId(0),
            time: Time::from_nanos(10),
        };
        let event = TraceRecord::Event(Event::compute(
            RegionId(1),
            Time::from_nanos(12),
            Time::from_nanos(20),
        ));
        let end = TraceRecord::SegmentEnd {
            context: ContextId(0),
            time: Time::from_nanos(25),
        };
        assert_eq!(begin.time().as_nanos(), 10);
        assert_eq!(event.time().as_nanos(), 12);
        assert_eq!(end.time().as_nanos(), 25);
        assert!(begin.is_marker());
        assert!(end.is_marker());
        assert!(!event.is_marker());
        assert!(event.as_event().is_some());
        assert!(begin.as_event().is_none());
    }
}
