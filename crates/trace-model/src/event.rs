//! Events: completed program activities with entry/exit time stamps.
//!
//! Following the paper, an *event* is a completed invocation of a traced
//! region: it has a start time stamp, an end time stamp, an identifier (the
//! region), and, for message-passing calls, the call parameters.  Segment
//! matching requires that candidate segments contain the same events in the
//! same order and that "all message passing calls and parameters are the
//! same" (Section 4.3.2), which is why the communication metadata is part of
//! the event identity.

use crate::ids::{Rank, RegionId};
use crate::time::{Duration, Time};

/// The collective operation performed by a collective event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CollectiveOp {
    /// `MPI_Barrier`-style N-to-N synchronization with no payload.
    Barrier,
    /// `MPI_Bcast`: 1-to-N, root sends to all.
    Bcast,
    /// `MPI_Scatter`: 1-to-N, root distributes distinct pieces.
    Scatter,
    /// `MPI_Gather`: N-to-1, root collects from all.
    Gather,
    /// `MPI_Reduce`: N-to-1 with a reduction at the root.
    Reduce,
    /// `MPI_Allgather`: N-to-N gather to every rank.
    Allgather,
    /// `MPI_Allreduce`: N-to-N reduction to every rank.
    Allreduce,
    /// `MPI_Alltoall`: N-to-N personalized exchange.
    Alltoall,
}

impl CollectiveOp {
    /// True for operations where every participant must wait for every other
    /// participant (the "N-to-N" communication pattern of the paper).
    pub fn is_n_to_n(self) -> bool {
        matches!(
            self,
            CollectiveOp::Barrier
                | CollectiveOp::Allgather
                | CollectiveOp::Allreduce
                | CollectiveOp::Alltoall
        )
    }

    /// True for 1-to-N operations (late root blocks all receivers).
    pub fn is_one_to_n(self) -> bool {
        matches!(self, CollectiveOp::Bcast | CollectiveOp::Scatter)
    }

    /// True for N-to-1 operations (late senders block the root).
    pub fn is_n_to_one(self) -> bool {
        matches!(self, CollectiveOp::Gather | CollectiveOp::Reduce)
    }

    /// Canonical MPI-style function name for this operation.
    pub fn mpi_name(self) -> &'static str {
        match self {
            CollectiveOp::Barrier => "MPI_Barrier",
            CollectiveOp::Bcast => "MPI_Bcast",
            CollectiveOp::Scatter => "MPI_Scatter",
            CollectiveOp::Gather => "MPI_Gather",
            CollectiveOp::Reduce => "MPI_Reduce",
            CollectiveOp::Allgather => "MPI_Allgather",
            CollectiveOp::Allreduce => "MPI_Allreduce",
            CollectiveOp::Alltoall => "MPI_Alltoall",
        }
    }

    /// All collective operations, used by tests and the codec.
    pub const ALL: [CollectiveOp; 8] = [
        CollectiveOp::Barrier,
        CollectiveOp::Bcast,
        CollectiveOp::Scatter,
        CollectiveOp::Gather,
        CollectiveOp::Reduce,
        CollectiveOp::Allgather,
        CollectiveOp::Allreduce,
        CollectiveOp::Alltoall,
    ];
}

/// Communication metadata attached to an event.
///
/// `Compute` events carry no metadata; point-to-point events carry the peer,
/// tag and payload size; collectives carry the operation, root and
/// communicator size.  These parameters participate in segment-match
/// eligibility.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum CommInfo {
    /// A purely local computation region (e.g. `do_work`).
    #[default]
    Compute,
    /// A blocking or synchronous send to `peer`.
    Send {
        /// Destination rank.
        peer: Rank,
        /// Message tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A blocking receive from `peer`.
    Recv {
        /// Source rank.
        peer: Rank,
        /// Message tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A combined send/receive exchange (e.g. `MPI_Sendrecv`).
    SendRecv {
        /// Destination rank of the send half.
        to: Rank,
        /// Source rank of the receive half.
        from: Rank,
        /// Message tag.
        tag: u32,
        /// Payload size in bytes (per direction).
        bytes: u64,
    },
    /// A collective operation over `comm_size` ranks.
    Collective {
        /// Which collective operation.
        op: CollectiveOp,
        /// Root rank (meaningful for rooted collectives; 0 otherwise).
        root: Rank,
        /// Number of participating ranks.
        comm_size: u32,
        /// Per-rank payload size in bytes.
        bytes: u64,
    },
}

impl CommInfo {
    /// True if the event represents any message-passing call.
    pub fn is_communication(&self) -> bool {
        !matches!(self, CommInfo::Compute)
    }

    /// True if the event is a collective operation.
    pub fn is_collective(&self) -> bool {
        matches!(self, CommInfo::Collective { .. })
    }
}

/// A completed invocation of a traced region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Event {
    /// The traced region (function) that executed.
    pub region: RegionId,
    /// Entry time stamp.  Absolute in a [`crate::trace::RankTrace`], relative
    /// to the segment start inside a [`crate::segment::Segment`].
    pub start: Time,
    /// Exit time stamp (same base as `start`).
    pub end: Time,
    /// Communication metadata / call parameters.
    pub comm: CommInfo,
    /// Time within the event spent blocked waiting on other ranks.  The
    /// simulator records this to make the ground-truth analysis exact; the
    /// analysis crate recomputes wait states from timings alone when
    /// diagnosing reconstructed traces.
    pub wait: Duration,
}

impl Event {
    /// Creates a computation event.
    pub fn compute(region: RegionId, start: Time, end: Time) -> Self {
        Event {
            region,
            start,
            end,
            comm: CommInfo::Compute,
            wait: Duration::ZERO,
        }
    }

    /// Creates an event with communication metadata.
    pub fn with_comm(region: RegionId, start: Time, end: Time, comm: CommInfo) -> Self {
        Event {
            region,
            start,
            end,
            comm,
            wait: Duration::ZERO,
        }
    }

    /// Sets the blocked-waiting portion of the event and returns it.
    pub fn with_wait(mut self, wait: Duration) -> Self {
        self.wait = wait;
        self
    }

    /// Wall-clock duration of the event.
    #[inline]
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// True if the event's timestamps are ordered (`start <= end`).
    #[inline]
    pub fn is_well_formed(&self) -> bool {
        self.start <= self.end && self.wait <= self.duration()
    }

    /// Returns the event with both time stamps shifted earlier by `base`
    /// (used when rebasing a segment to its start time).
    pub fn rebased(&self, base: Time) -> Event {
        Event {
            start: self.start - base,
            end: self.end - base,
            ..*self
        }
    }

    /// Returns the event with both time stamps shifted later by `offset`
    /// (used when reconstructing an approximate full trace).
    pub fn offset(&self, offset: Time) -> Event {
        Event {
            start: self.start + offset,
            end: self.end + offset,
            ..*self
        }
    }

    /// True if two events may be considered for a match: same region, same
    /// kind of call and same call parameters (peer/tag/size/op/root).
    ///
    /// This is the "same events in the same order, and all message passing
    /// calls and parameters are the same" requirement of the paper; the
    /// timings are *not* part of eligibility, they are what the similarity
    /// metrics compare.
    pub fn matches_shape(&self, other: &Event) -> bool {
        self.region == other.region && self.comm == other.comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(id: u32) -> RegionId {
        RegionId(id)
    }

    #[test]
    fn collective_categories_are_disjoint() {
        for op in CollectiveOp::ALL {
            let cats = [op.is_n_to_n(), op.is_one_to_n(), op.is_n_to_one()];
            assert_eq!(
                cats.iter().filter(|&&c| c).count(),
                1,
                "{op:?} must be in exactly one category"
            );
        }
    }

    #[test]
    fn mpi_names_unique() {
        let mut names: Vec<_> = CollectiveOp::ALL.iter().map(|o| o.mpi_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CollectiveOp::ALL.len());
    }

    #[test]
    fn rebase_and_offset_round_trip() {
        let e = Event::compute(region(1), Time::from_nanos(120), Time::from_nanos(180));
        let rebased = e.rebased(Time::from_nanos(100));
        assert_eq!(rebased.start.as_nanos(), 20);
        assert_eq!(rebased.end.as_nanos(), 80);
        let back = rebased.offset(Time::from_nanos(100));
        assert_eq!(back, e);
    }

    #[test]
    fn duration_and_well_formed() {
        let e = Event::compute(region(0), Time::from_nanos(5), Time::from_nanos(25));
        assert_eq!(e.duration().as_nanos(), 20);
        assert!(e.is_well_formed());
        let bad = Event {
            start: Time::from_nanos(30),
            end: Time::from_nanos(10),
            ..e
        };
        assert!(!bad.is_well_formed());
        let too_much_wait = e.with_wait(Duration::from_nanos(21));
        assert!(!too_much_wait.is_well_formed());
    }

    #[test]
    fn matches_shape_requires_same_parameters() {
        let send_a = Event::with_comm(
            region(2),
            Time::ZERO,
            Time::from_nanos(10),
            CommInfo::Send {
                peer: Rank(1),
                tag: 7,
                bytes: 1024,
            },
        );
        let send_b = Event::with_comm(
            region(2),
            Time::from_nanos(100),
            Time::from_nanos(160),
            CommInfo::Send {
                peer: Rank(1),
                tag: 7,
                bytes: 1024,
            },
        );
        let send_other_peer = Event::with_comm(
            region(2),
            Time::ZERO,
            Time::from_nanos(10),
            CommInfo::Send {
                peer: Rank(2),
                tag: 7,
                bytes: 1024,
            },
        );
        assert!(send_a.matches_shape(&send_b), "timings do not matter");
        assert!(!send_a.matches_shape(&send_other_peer), "peer matters");
    }

    #[test]
    fn comm_info_classification() {
        assert!(!CommInfo::Compute.is_communication());
        let coll = CommInfo::Collective {
            op: CollectiveOp::Alltoall,
            root: Rank(0),
            comm_size: 8,
            bytes: 64,
        };
        assert!(coll.is_communication());
        assert!(coll.is_collective());
    }
}
