//! Small numeric helpers shared by the evaluation and analysis crates.

/// Arithmetic mean of a slice; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation of a slice; 0.0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// The `q`-quantile (0.0..=1.0) of the values using the nearest-rank method.
///
/// The paper's *approximation distance* is the 90th percentile of absolute
/// time-stamp differences, i.e. `percentile(diffs, 0.9)`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted: Vec<f64> = values.to_vec();
    // total_cmp gives NaNs a fixed position instead of the
    // comparator-dependent placement partial_cmp would allow.
    sorted.sort_by(f64::total_cmp);
    // lint:allow(float_eq) -- exact sentinel check: q was just clamped, 0.0 means "the minimum"
    if q == 0.0 {
        return sorted[0];
    }
    // Nearest-rank: smallest value such that at least q·N values are <= it.
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The maximum of a slice; 0.0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0f64, f64::max)
}

/// Relative difference between two scalars as used by the `relDiff` metric:
/// `|x1 - x2| / max(|x1|, |x2|)`, defined as 0 when both values are 0.
pub fn relative_difference(x1: f64, x2: f64) -> f64 {
    let denom = x1.abs().max(x2.abs());
    // lint:allow(float_eq) -- exact zero guard against dividing by zero, per the relDiff definition
    if denom == 0.0 {
        0.0
    } else {
        (x1 - x2).abs() / denom
    }
}

/// Minkowski distance of order `m` between two equal-length vectors.
/// `m = 1` is the Manhattan distance, `m = 2` the Euclidean distance.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is used.
pub fn minkowski_distance(a: &[f64], b: &[f64], m: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs().powf(m)).sum();
    sum.powf(1.0 / m)
}

/// Manhattan (L1) distance between two equal-length vectors: the sum of the
/// absolute component differences.  Equivalent to
/// [`minkowski_distance`]`(a, b, 1.0)` but computed without `powf`, so the
/// similarity fast path and the naive reference path share the exact same
/// floating-point result.
pub fn manhattan_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Chebyshev (L-infinity) distance between two equal-length vectors: the
/// largest absolute component difference.
pub fn chebyshev_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 15.0);
        assert_eq!(percentile(&v, 0.30), 20.0);
        assert_eq!(percentile(&v, 0.40), 20.0);
        assert_eq!(percentile(&v, 0.50), 35.0);
        assert_eq!(percentile(&v, 1.0), 50.0);
        assert_eq!(percentile(&[], 0.9), 0.0);
    }

    #[test]
    fn percentile_90_matches_paper_definition() {
        // 10 values, the 90th percentile is the 9th smallest.
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.9), 9.0);
    }

    #[test]
    fn relative_difference_examples_from_paper() {
        // Comparing events that start at times 1 and 2 gives 0.5.
        assert!((relative_difference(1.0, 2.0) - 0.5).abs() < 1e-12);
        // Comparing 100 and 125 gives 0.2.
        assert!((relative_difference(100.0, 125.0) - 0.2).abs() < 1e-12);
        // x1=17, x2=40 gives 0.575 (the paper rounds to 0.58).
        assert!((relative_difference(17.0, 40.0) - 0.575).abs() < 1e-12);
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
    }

    #[test]
    fn distances_match_figure_2_example() {
        // s2 = (49, 1, 17, 18, 48) vs s1 = (51, 1, 40, 41, 50)
        let s2 = [49.0, 1.0, 17.0, 18.0, 48.0];
        let s1 = [51.0, 1.0, 40.0, 41.0, 50.0];
        assert_eq!(minkowski_distance(&s2, &s1, 1.0), 50.0);
        assert!((minkowski_distance(&s2, &s1, 2.0) - 32.6).abs() < 0.1);
        assert_eq!(chebyshev_distance(&s2, &s1), 23.0);

        // s2 vs s0 = (50, 1, 20, 21, 49): distances 8, ~4.5, 3.
        let s0 = [50.0, 1.0, 20.0, 21.0, 49.0];
        assert_eq!(minkowski_distance(&s2, &s0, 1.0), 8.0);
        assert!((euclidean_distance(&s2, &s0) - 4.47).abs() < 0.05);
        assert_eq!(chebyshev_distance(&s2, &s0), 3.0);
    }

    #[test]
    fn euclidean_equals_minkowski_order_two() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((euclidean_distance(&a, &b) - minkowski_distance(&a, &b, 2.0)).abs() < 1e-12);
        assert_eq!(euclidean_distance(&a, &b), 5.0);
    }

    #[test]
    fn manhattan_equals_minkowski_order_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(manhattan_distance(&a, &b), 7.0);
        assert!((manhattan_distance(&a, &b) - minkowski_distance(&a, &b, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn max_helper() {
        assert_eq!(max(&[]), 0.0);
        assert_eq!(max(&[1.0, 7.0, 3.0]), 7.0);
    }
}
