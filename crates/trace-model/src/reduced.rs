//! Reduced traces: representative segments plus a segment-execution log.
//!
//! The reduction keeps, per rank, a list of *stored segments* (one
//! representative per behaviour found by the similarity metric) and a list of
//! *segment executions* `(representative id, absolute start time)` — the
//! `storedSegments` and `segmentExecs` structures of Section 3.1.  A full
//! trace can be approximated again by replaying each execution's
//! representative at its recorded start time.

use std::collections::BTreeSet;

use crate::ids::{ContextTable, Rank, RegionTable};
use crate::segment::Segment;
use crate::time::Time;
use crate::trace::{AppTrace, RankTrace};

/// Identifier of a stored representative segment within one rank's reduced
/// trace.
pub type StoredSegmentId = u32;

/// A representative segment kept in the reduced trace.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSegment {
    /// Identifier referenced by [`SegmentExec`] entries.
    pub id: StoredSegmentId,
    /// The representative segment (rebased to its own start).
    pub segment: Segment,
    /// How many segment instances this representative stands for (including
    /// itself).  Used by the averaging reducer and by reporting.
    pub represented: u32,
}

/// One entry of the segment-execution log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentExec {
    /// Which stored segment executed.
    pub segment: StoredSegmentId,
    /// Absolute start time of this execution in the original trace.
    pub start: Time,
}

/// The reduced trace of a single rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReducedRankTrace {
    /// The rank this reduced trace belongs to.
    pub rank: Rank,
    /// Stored representative segments, indexed by their id.
    pub stored: Vec<StoredSegment>,
    /// Execution log in original trace order.
    pub execs: Vec<SegmentExec>,
}

impl ReducedRankTrace {
    /// Creates an empty reduced trace for `rank`.
    pub fn new(rank: Rank) -> Self {
        ReducedRankTrace {
            rank,
            stored: Vec::new(),
            execs: Vec::new(),
        }
    }

    /// Number of stored representative segments.
    pub fn stored_count(&self) -> usize {
        self.stored.len()
    }

    /// Number of segment executions (equals the number of segment instances
    /// in the original trace).
    pub fn exec_count(&self) -> usize {
        self.execs.len()
    }

    /// Number of matches that occurred: executions that reused an existing
    /// representative instead of storing a new one.
    pub fn match_count(&self) -> usize {
        self.exec_count().saturating_sub(self.stored_count())
    }

    /// Number of *possible* matches, limited by program structure: an
    /// execution can only possibly match if an earlier segment instance had
    /// the same context, events and call parameters (Section 4.3.2).
    pub fn possible_match_count(&self) -> usize {
        let distinct_keys: BTreeSet<_> = self.stored.iter().map(|s| s.segment.key()).collect();
        self.exec_count().saturating_sub(distinct_keys.len())
    }

    /// Degree of matching: matches / possible matches, in `[0, 1]`.
    /// Returns 1.0 when no matches are possible (nothing was missed).
    pub fn degree_of_matching(&self) -> f64 {
        let possible = self.possible_match_count();
        if possible == 0 {
            1.0
        } else {
            self.match_count() as f64 / possible as f64
        }
    }

    /// Looks up a stored segment by id.
    pub fn stored_segment(&self, id: StoredSegmentId) -> Option<&StoredSegment> {
        self.stored
            .get(id as usize)
            .filter(|s| s.id == id)
            .or_else(|| {
                // Fall back to a linear scan if ids are not dense (they are dense
                // for every reducer in this workspace, but the format permits it).
                self.stored.iter().find(|s| s.id == id)
            })
    }

    /// Reconstructs an approximate full rank trace by replaying each
    /// execution's representative segment at its recorded start time.
    ///
    /// Unknown segment ids are skipped; every reducer in this workspace
    /// produces self-consistent ids, so skipping only happens for corrupted
    /// inputs.
    pub fn reconstruct(&self) -> RankTrace {
        let mut trace = RankTrace::new(self.rank);
        for exec in &self.execs {
            let Some(stored) = self.stored_segment(exec.segment) else {
                continue;
            };
            let seg = &stored.segment;
            trace.begin_segment(seg.context, exec.start);
            for event in &seg.events {
                trace.push_event(event.offset(exec.start));
            }
            trace.end_segment(seg.context, exec.start + seg.end);
        }
        trace
    }
}

/// The reduced trace of a whole application run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReducedAppTrace {
    /// Name of the traced program.
    pub name: String,
    /// Region name table (shared with the full trace).
    pub regions: RegionTable,
    /// Context name table (shared with the full trace).
    pub contexts: ContextTable,
    /// Per-rank reduced traces.
    pub ranks: Vec<ReducedRankTrace>,
}

impl ReducedAppTrace {
    /// Creates an empty reduced application trace that shares the name
    /// tables of `full`.
    pub fn for_app(full: &AppTrace) -> Self {
        ReducedAppTrace {
            name: full.name.clone(),
            regions: full.regions.clone(),
            contexts: full.contexts.clone(),
            ranks: Vec::with_capacity(full.rank_count()),
        }
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Total stored representative segments across ranks.
    pub fn total_stored(&self) -> usize {
        self.ranks.iter().map(ReducedRankTrace::stored_count).sum()
    }

    /// Total segment executions across ranks.
    pub fn total_execs(&self) -> usize {
        self.ranks.iter().map(ReducedRankTrace::exec_count).sum()
    }

    /// Application-wide degree of matching: total matches over total
    /// possible matches (Section 4.3.2).
    pub fn degree_of_matching(&self) -> f64 {
        let matches: usize = self.ranks.iter().map(ReducedRankTrace::match_count).sum();
        let possible: usize = self
            .ranks
            .iter()
            .map(ReducedRankTrace::possible_match_count)
            .sum();
        if possible == 0 {
            1.0
        } else {
            matches as f64 / possible as f64
        }
    }

    /// Reconstructs an approximate full application trace.
    pub fn reconstruct(&self) -> AppTrace {
        AppTrace {
            name: self.name.clone(),
            regions: self.regions.clone(),
            contexts: self.contexts.clone(),
            ranks: self
                .ranks
                .iter()
                .map(ReducedRankTrace::reconstruct)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ids::{ContextId, RegionId};

    fn segment(context: u32, duration: u64, event_end: u64) -> Segment {
        Segment {
            context: ContextId(context),
            start: Time::ZERO,
            end: Time::from_nanos(duration),
            events: vec![Event::compute(
                RegionId(0),
                Time::from_nanos(1),
                Time::from_nanos(event_end),
            )],
        }
    }

    fn reduced_with_two_reps() -> ReducedRankTrace {
        let mut r = ReducedRankTrace::new(Rank(0));
        r.stored.push(StoredSegment {
            id: 0,
            segment: segment(0, 50, 20),
            represented: 2,
        });
        r.stored.push(StoredSegment {
            id: 1,
            segment: segment(0, 80, 70),
            represented: 1,
        });
        r.execs = vec![
            SegmentExec {
                segment: 0,
                start: Time::from_nanos(0),
            },
            SegmentExec {
                segment: 1,
                start: Time::from_nanos(100),
            },
            SegmentExec {
                segment: 0,
                start: Time::from_nanos(200),
            },
        ];
        r
    }

    #[test]
    fn counting_matches_and_possible_matches() {
        let r = reduced_with_two_reps();
        assert_eq!(r.exec_count(), 3);
        assert_eq!(r.stored_count(), 2);
        assert_eq!(r.match_count(), 1);
        // Both representatives share the same key (same context and shape),
        // so 2 of the 3 instances could possibly have matched.
        assert_eq!(r.possible_match_count(), 2);
        assert!((r.degree_of_matching() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_of_matching_is_one_when_nothing_possible() {
        let mut r = ReducedRankTrace::new(Rank(0));
        r.stored.push(StoredSegment {
            id: 0,
            segment: segment(0, 10, 5),
            represented: 1,
        });
        r.execs.push(SegmentExec {
            segment: 0,
            start: Time::ZERO,
        });
        assert_eq!(r.possible_match_count(), 0);
        assert_eq!(r.degree_of_matching(), 1.0);
    }

    #[test]
    fn reconstruct_replays_segments_at_exec_starts() {
        let r = reduced_with_two_reps();
        let trace = r.reconstruct();
        assert_eq!(trace.segment_instance_count(), 3);
        assert_eq!(trace.event_count(), 3);
        let events: Vec<_> = trace.events().collect();
        assert_eq!(events[0].start.as_nanos(), 1);
        assert_eq!(events[1].start.as_nanos(), 101);
        assert_eq!(events[1].end.as_nanos(), 170);
        assert_eq!(events[2].start.as_nanos(), 201);
        assert!(trace.is_well_formed());
    }

    #[test]
    fn reconstruct_skips_unknown_ids() {
        let mut r = reduced_with_two_reps();
        r.execs.push(SegmentExec {
            segment: 99,
            start: Time::from_nanos(500),
        });
        let trace = r.reconstruct();
        assert_eq!(trace.segment_instance_count(), 3);
    }

    #[test]
    fn app_level_aggregation() {
        let mut app = ReducedAppTrace::default();
        app.ranks.push(reduced_with_two_reps());
        app.ranks.push(reduced_with_two_reps());
        assert_eq!(app.total_stored(), 4);
        assert_eq!(app.total_execs(), 6);
        assert!((app.degree_of_matching() - 0.5).abs() < 1e-12);
        let full = app.reconstruct();
        assert_eq!(full.rank_count(), 2);
    }
}
