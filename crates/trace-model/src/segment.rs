//! Segments: the unit of similarity comparison.
//!
//! A segment is the stretch of a rank trace between a `SegmentBegin` and the
//! matching `SegmentEnd` marker.  Before comparison the segment is *rebased*:
//! every event time stamp (and the segment end) is made relative to the
//! segment start, which itself becomes zero.  The absolute start time is kept
//! alongside so that a full trace can be reconstructed later.

use crate::event::Event;
use crate::ids::ContextId;
use crate::time::Time;

/// The structural identity of a segment used to decide *eligibility* for a
/// match: same code location (context), same events in the same order, same
/// message-passing parameters.
///
/// Two segments with equal keys may still fail to match under a similarity
/// metric; two segments with different keys can never match.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentKey {
    /// Segment context (code location).
    pub context: ContextId,
    /// Region and call-parameter shape of every event, in order.
    pub shape: Vec<(crate::ids::RegionId, crate::event::CommInfo)>,
}

/// A rebased segment of a rank trace.
#[derive(Clone, PartialEq, Debug)]
pub struct Segment {
    /// The segment context (code location) this segment was collected from.
    pub context: ContextId,
    /// Absolute start time of the segment in the original trace.
    pub start: Time,
    /// Segment end time, relative to `start` (i.e. the segment duration).
    pub end: Time,
    /// Events with time stamps relative to `start`, in trace order.
    pub events: Vec<Event>,
}

impl Segment {
    /// Builds a segment from absolute-time events, rebasing everything to
    /// `start`.
    pub fn from_absolute(
        context: ContextId,
        start: Time,
        end: Time,
        events: impl IntoIterator<Item = Event>,
    ) -> Self {
        Segment {
            context,
            start,
            end: end - start,
            events: events.into_iter().map(|e| e.rebased(start)).collect(),
        }
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the segment holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Duration of the segment (its rebased end time).
    pub fn duration(&self) -> Time {
        self.end
    }

    /// The structural identity of this segment (see [`SegmentKey`]).
    pub fn key(&self) -> SegmentKey {
        SegmentKey {
            context: self.context,
            shape: self.events.iter().map(|e| (e.region, e.comm)).collect(),
        }
    }

    /// True if `other` is *eligible* to match this segment: same context,
    /// same number of events, same event regions and call parameters in the
    /// same order.  Mirrors `compareSegments` in the paper up to (but not
    /// including) the similarity test.
    pub fn same_shape(&self, other: &Segment) -> bool {
        self.context == other.context
            && self.events.len() == other.events.len()
            && self
                .events
                .iter()
                .zip(&other.events)
                .all(|(a, b)| a.matches_shape(b))
    }

    /// Number of entries in [`Segment::measurement_vector`].
    pub fn measurement_len(&self) -> usize {
        1 + 2 * self.events.len()
    }

    /// The measurement vector compared by the distance metrics: the segment
    /// end time followed by each event's start and end time (all relative to
    /// the segment start), matching the vectors used in Figure 2 of the
    /// paper, e.g. `(49, 1, 17, 18, 48)` for a two-event segment.
    pub fn measurement_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.measurement_len());
        self.measurement_vector_into(&mut v);
        v
    }

    /// Fills `out` with the measurement vector (see
    /// [`Segment::measurement_vector`]), clearing it first.  Reusing one
    /// buffer across segments keeps the hot similarity-matching loop free of
    /// per-comparison allocations.
    pub fn measurement_vector_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.measurement_len());
        out.push(self.end.as_f64());
        for e in &self.events {
            out.push(e.start.as_f64());
            out.push(e.end.as_f64());
        }
    }

    /// The time-stamp vector fed to the wavelet transforms: the relative
    /// segment start (always 0), each event's entry and exit time stamps,
    /// and finally the segment exit time (Section 3.2.1, *Wavelet
    /// transform*).  The caller is responsible for zero-padding to a power
    /// of two.
    pub fn wavelet_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 + 2 * self.events.len());
        self.wavelet_vector_into(&mut v);
        v
    }

    /// Fills `out` with the time-stamp vector (see
    /// [`Segment::wavelet_vector`]), clearing it first.  The scratch-buffer
    /// counterpart used by the allocation-free similarity kernels.
    pub fn wavelet_vector_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(2 + 2 * self.events.len());
        out.push(0.0);
        for e in &self.events {
            out.push(e.start.as_f64());
            out.push(e.end.as_f64());
        }
        out.push(self.end.as_f64());
    }

    /// Total time spent in events that are message-passing calls.
    pub fn communication_time(&self) -> Time {
        self.events
            .iter()
            .filter(|e| e.comm.is_communication())
            .map(|e| e.duration())
            .sum()
    }

    /// Total time spent in compute (non-communication) events.
    pub fn compute_time(&self) -> Time {
        self.events
            .iter()
            .filter(|e| !e.comm.is_communication())
            .map(|e| e.duration())
            .sum()
    }

    /// True if every event lies within the segment bounds and is itself
    /// well formed.  Used by property tests and debug assertions.
    pub fn is_well_formed(&self) -> bool {
        self.events
            .iter()
            .all(|e| e.is_well_formed() && e.end <= self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CommInfo;
    use crate::ids::{Rank, RegionId};

    fn two_event_segment(start: u64, e0: (u64, u64), e1: (u64, u64), end: u64) -> Segment {
        let events = vec![
            Event::compute(
                RegionId(0),
                Time::from_nanos(start + e0.0),
                Time::from_nanos(start + e0.1),
            ),
            Event::with_comm(
                RegionId(1),
                Time::from_nanos(start + e1.0),
                Time::from_nanos(start + e1.1),
                CommInfo::Collective {
                    op: crate::event::CollectiveOp::Allgather,
                    root: Rank(0),
                    comm_size: 8,
                    bytes: 128,
                },
            ),
        ];
        Segment::from_absolute(
            ContextId(0),
            Time::from_nanos(start),
            Time::from_nanos(start + end),
            events,
        )
    }

    #[test]
    fn rebase_produces_relative_times() {
        // Mirrors s2 from Figure 2: events at relative (1,17) and (18,48),
        // segment end at 49.
        let s = two_event_segment(100, (1, 17), (18, 48), 49);
        assert_eq!(s.start.as_nanos(), 100);
        assert_eq!(s.end.as_nanos(), 49);
        assert_eq!(s.events[0].start.as_nanos(), 1);
        assert_eq!(s.events[0].end.as_nanos(), 17);
        assert_eq!(s.events[1].start.as_nanos(), 18);
        assert_eq!(s.events[1].end.as_nanos(), 48);
        assert!(s.is_well_formed());
    }

    #[test]
    fn measurement_vector_matches_paper_layout() {
        let s = two_event_segment(0, (1, 17), (18, 48), 49);
        assert_eq!(s.measurement_vector(), vec![49.0, 1.0, 17.0, 18.0, 48.0]);
    }

    #[test]
    fn wavelet_vector_starts_at_zero_and_ends_at_exit() {
        let s = two_event_segment(0, (1, 17), (18, 48), 49);
        assert_eq!(s.wavelet_vector(), vec![0.0, 1.0, 17.0, 18.0, 48.0, 49.0]);
    }

    #[test]
    fn vector_fill_apis_clear_and_match_the_allocating_versions() {
        let s = two_event_segment(0, (1, 17), (18, 48), 49);
        let mut buf = vec![f64::NAN; 32];
        s.measurement_vector_into(&mut buf);
        assert_eq!(buf, s.measurement_vector());
        assert_eq!(buf.len(), s.measurement_len());
        s.wavelet_vector_into(&mut buf);
        assert_eq!(buf, s.wavelet_vector());
    }

    #[test]
    fn same_shape_ignores_timing_but_not_structure() {
        let a = two_event_segment(0, (1, 17), (18, 48), 49);
        let b = two_event_segment(500, (1, 40), (41, 50), 51);
        assert!(a.same_shape(&b));
        assert_eq!(a.key(), b.key());

        let mut c = b.clone();
        c.events.pop();
        assert!(!a.same_shape(&c), "different event count");

        let mut d = b.clone();
        d.context = ContextId(9);
        assert!(!a.same_shape(&d), "different context");
    }

    #[test]
    fn compute_and_communication_time_partition() {
        let s = two_event_segment(0, (1, 17), (18, 48), 49);
        assert_eq!(s.compute_time().as_nanos(), 16);
        assert_eq!(s.communication_time().as_nanos(), 30);
    }
}
