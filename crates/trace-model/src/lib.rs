#![forbid(unsafe_code)]
//! Trace data model for similarity-based trace reduction.
//!
//! This crate defines the event-trace representation shared by the whole
//! workspace:
//!
//! * [`time::Time`] — fixed-point (nanosecond) time stamps with saturating
//!   arithmetic and float conversions used by the similarity metrics.
//! * [`ids`] — interned identifiers for code regions, segment contexts and
//!   ranks, together with their string tables.
//! * [`event::Event`] — one completed program activity (function invocation,
//!   message-passing call, computation phase) with entry/exit time stamps and
//!   optional communication metadata.
//! * [`record::TraceRecord`] — the raw, per-rank stream written by the
//!   tracer: segment begin/end markers interleaved with events.
//! * [`trace::RankTrace`] / [`trace::AppTrace`] — full per-rank and merged
//!   application traces.
//! * [`segment::Segment`] — a rebased slice of a rank trace delimited by
//!   segment markers; the unit of similarity comparison.
//! * [`reduced::ReducedRankTrace`] / [`reduced::ReducedAppTrace`] — the
//!   output of the reduction: representative segments plus the
//!   `(segment id, start time)` execution log.
//! * [`codec`] — the compact binary encoding used for every file-size
//!   measurement in the evaluation.
//! * [`stats`] — small numeric helpers (percentiles, means) shared by the
//!   evaluation and analysis crates.
//!
//! The model follows Section 3 of Mohror & Karavanic, *Evaluating
//! Similarity-based Trace Reduction Techniques for Scalable Performance
//! Analysis* (2009).

#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod ids;
pub mod record;
pub mod reduced;
pub mod segment;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{CollectiveOp, CommInfo, Event};
pub use ids::{ContextId, ContextTable, Rank, RegionId, RegionTable};
pub use record::TraceRecord;
pub use reduced::{ReducedAppTrace, ReducedRankTrace, SegmentExec, StoredSegment};
pub use segment::{Segment, SegmentKey};
pub use time::{Duration, Time};
pub use trace::{AppTrace, RankTrace};
