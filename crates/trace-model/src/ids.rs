//! Interned identifiers and their string tables.
//!
//! Regions (functions / code phases) and segment contexts (hierarchical loop
//! names such as `main.2.1`) are referenced everywhere by small integer ids.
//! The string tables are stored once per application trace and serialized
//! once per trace file, which is part of what makes the reduced trace format
//! compact.

use std::collections::BTreeMap;
use std::fmt;

/// A process (MPI task) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Rank(pub u32);

impl Rank {
    /// Numeric rank value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Numeric rank value as a usize index.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(v: u32) -> Self {
        Rank(v)
    }
}

impl From<usize> for Rank {
    fn from(v: usize) -> Self {
        Rank(v as u32)
    }
}

/// Identifier of a code region (function, MPI call, or computation phase).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Numeric value of the region id.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

/// Identifier of a segment context (hierarchical loop / phase name).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContextId(pub u32);

impl ContextId {
    /// Numeric value of the context id.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

/// A generic interning table mapping names to dense integer ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct InternTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl InternTable {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    fn len(&self) -> usize {
        self.names.len()
    }

    fn names(&self) -> &[String] {
        &self.names
    }

    fn from_names<I: IntoIterator<Item = String>>(names: I) -> Self {
        let mut t = InternTable::default();
        for n in names {
            t.intern(&n);
        }
        t
    }
}

/// Table of code-region names.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionTable {
    inner: InternTable,
}

impl RegionTable {
    /// Creates an empty region table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a region name, returning its id (existing or new).
    pub fn intern(&mut self, name: &str) -> RegionId {
        RegionId(self.inner.intern(name))
    }

    /// Looks up an existing region by name.
    pub fn lookup(&self, name: &str) -> Option<RegionId> {
        self.inner.lookup(name).map(RegionId)
    }

    /// Returns the name of a region id, if known.
    pub fn name(&self, id: RegionId) -> Option<&str> {
        self.inner.name(id.0)
    }

    /// Returns the name of a region id, or `"<unknown>"`.
    pub fn name_or_unknown(&self, id: RegionId) -> &str {
        self.name(id).unwrap_or("<unknown>")
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no regions have been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// All region names in id order.
    pub fn names(&self) -> &[String] {
        self.inner.names()
    }

    /// Rebuilds a table from a name list in id order (used by the codec).
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> Self {
        RegionTable {
            inner: InternTable::from_names(names),
        }
    }
}

/// Table of segment-context names (e.g. `init`, `main.1`, `main.2.1`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContextTable {
    inner: InternTable,
}

impl ContextTable {
    /// Creates an empty context table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a context name, returning its id (existing or new).
    pub fn intern(&mut self, name: &str) -> ContextId {
        ContextId(self.inner.intern(name))
    }

    /// Looks up an existing context by name.
    pub fn lookup(&self, name: &str) -> Option<ContextId> {
        self.inner.lookup(name).map(ContextId)
    }

    /// Returns the name of a context id, if known.
    pub fn name(&self, id: ContextId) -> Option<&str> {
        self.inner.name(id.0)
    }

    /// Returns the name of a context id, or `"<unknown>"`.
    pub fn name_or_unknown(&self, id: ContextId) -> &str {
        self.name(id).unwrap_or("<unknown>")
    }

    /// Number of interned contexts.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no contexts have been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// All context names in id order.
    pub fn names(&self) -> &[String] {
        self.inner.names()
    }

    /// Rebuilds a table from a name list in id order (used by the codec).
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> Self {
        ContextTable {
            inner: InternTable::from_names(names),
        }
    }

    /// Returns the parent context name of a hierarchical context name, e.g.
    /// the parent of `main.2.1` is `main.2`; top-level names have no parent.
    pub fn parent_name(name: &str) -> Option<&str> {
        name.rfind('.').map(|idx| &name[..idx])
    }

    /// Nesting depth of a hierarchical context name (`main` is depth 0,
    /// `main.2.1` is depth 2).
    pub fn depth(name: &str) -> usize {
        name.matches('.').count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = RegionTable::new();
        let a = t.intern("MPI_Recv");
        let b = t.intern("do_work");
        let a2 = t.intern("MPI_Recv");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), Some("MPI_Recv"));
        assert_eq!(t.lookup("do_work"), Some(b));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn context_hierarchy_helpers() {
        assert_eq!(ContextTable::parent_name("main.2.1"), Some("main.2"));
        assert_eq!(ContextTable::parent_name("main"), None);
        assert_eq!(ContextTable::depth("main"), 0);
        assert_eq!(ContextTable::depth("main.2.1"), 2);
    }

    #[test]
    fn from_names_preserves_order() {
        let t = ContextTable::from_names(vec!["init".into(), "main.1".into(), "final".into()]);
        assert_eq!(t.name(ContextId(0)), Some("init"));
        assert_eq!(t.name(ContextId(1)), Some("main.1"));
        assert_eq!(t.name(ContextId(2)), Some("final"));
        assert_eq!(t.lookup("main.1"), Some(ContextId(1)));
    }

    #[test]
    fn name_or_unknown_fallback() {
        let t = RegionTable::new();
        assert_eq!(t.name_or_unknown(RegionId(42)), "<unknown>");
    }

    #[test]
    fn rank_conversions() {
        let r: Rank = 7usize.into();
        assert_eq!(r.as_u32(), 7);
        assert_eq!(r.as_usize(), 7);
        assert_eq!(format!("{r}"), "rank 7");
    }
}
