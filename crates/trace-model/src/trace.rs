//! Full per-rank and application traces.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::ids::{ContextId, ContextTable, Rank, RegionTable};
use crate::record::TraceRecord;
use crate::time::{Duration, Time};

/// The full trace of a single rank: a time-ordered stream of records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankTrace {
    /// The rank this trace was collected from.
    pub rank: Rank,
    /// Raw trace records in collection order.
    pub records: Vec<TraceRecord>,
}

impl RankTrace {
    /// Creates an empty rank trace.
    pub fn new(rank: Rank) -> Self {
        RankTrace {
            rank,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Appends a segment-begin marker.
    pub fn begin_segment(&mut self, context: ContextId, time: Time) {
        self.push(TraceRecord::SegmentBegin { context, time });
    }

    /// Appends a segment-end marker.
    pub fn end_segment(&mut self, context: ContextId, time: Time) {
        self.push(TraceRecord::SegmentEnd { context, time });
    }

    /// Appends an event record.
    pub fn push_event(&mut self, event: Event) {
        self.push(TraceRecord::Event(event));
    }

    /// Number of records (markers plus events).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterator over the event records only.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().filter_map(TraceRecord::as_event)
    }

    /// Number of event records.
    pub fn event_count(&self) -> usize {
        self.events().count()
    }

    /// The end time of the trace: the largest time stamp seen.
    pub fn end_time(&self) -> Time {
        self.records
            .iter()
            .map(|r| match r {
                TraceRecord::Event(e) => e.end,
                other => other.time(),
            })
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total time spent in a given region across the whole trace.
    pub fn time_in_region(&self, region: crate::ids::RegionId) -> Duration {
        self.events()
            .filter(|e| e.region == region)
            .map(|e| e.duration())
            .sum()
    }

    /// Collects all event time stamps (start and end of every event, in
    /// record order).  This is the sequence compared by the approximation
    /// distance metric.
    pub fn timestamp_vector(&self) -> Vec<Time> {
        let mut v = Vec::with_capacity(2 * self.event_count());
        for e in self.events() {
            v.push(e.start);
            v.push(e.end);
        }
        v
    }

    /// True if records are sorted by time stamp and all events are well
    /// formed.  Used by property tests and the simulator's self-checks.
    pub fn is_well_formed(&self) -> bool {
        let times_ok = self.records.windows(2).all(|w| w[0].time() <= w[1].time());
        let events_ok = self.events().all(Event::is_well_formed);
        times_ok && events_ok
    }

    /// Number of `SegmentBegin` markers, i.e. how many segment instances the
    /// trace contains.
    pub fn segment_instance_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::SegmentBegin { .. }))
            .count()
    }
}

/// A merged application trace: one [`RankTrace`] per rank plus the shared
/// region and context name tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppTrace {
    /// Human-readable name of the traced program (e.g. `late_sender`).
    pub name: String,
    /// Region (function) name table shared by all ranks.
    pub regions: RegionTable,
    /// Segment-context name table shared by all ranks.
    pub contexts: ContextTable,
    /// Per-rank traces, indexed by rank order.
    pub ranks: Vec<RankTrace>,
}

impl AppTrace {
    /// Creates an empty application trace with `n_ranks` empty rank traces.
    pub fn new(name: impl Into<String>, n_ranks: usize) -> Self {
        AppTrace {
            name: name.into(),
            regions: RegionTable::new(),
            contexts: ContextTable::new(),
            ranks: (0..n_ranks)
                .map(|r| RankTrace::new(Rank::from(r)))
                .collect(),
        }
    }

    /// Number of ranks in the trace.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Total number of event records across all ranks.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(RankTrace::event_count).sum()
    }

    /// Total number of records (markers and events) across all ranks.
    pub fn total_records(&self) -> usize {
        self.ranks.iter().map(RankTrace::len).sum()
    }

    /// The end time of the whole run (max across ranks).
    pub fn end_time(&self) -> Time {
        self.ranks
            .iter()
            .map(RankTrace::end_time)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Per-region total inclusive time summed over all ranks, keyed by
    /// region name.  Useful for coarse profile-style summaries in examples
    /// and tests.
    pub fn region_time_profile(&self) -> BTreeMap<String, Duration> {
        let mut profile: BTreeMap<String, Duration> = BTreeMap::new();
        for rank in &self.ranks {
            for event in rank.events() {
                let name = self.regions.name_or_unknown(event.region).to_owned();
                *profile.entry(name).or_insert(Duration::ZERO) += event.duration();
            }
        }
        profile
    }

    /// True if every rank trace is well formed.
    pub fn is_well_formed(&self) -> bool {
        self.ranks.iter().all(RankTrace::is_well_formed)
    }

    /// Returns the trace of a given rank, if present.
    pub fn rank(&self, rank: Rank) -> Option<&RankTrace> {
        self.ranks.get(rank.as_usize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CommInfo;
    use crate::ids::RegionId;

    fn sample_trace() -> AppTrace {
        let mut app = AppTrace::new("sample", 2);
        let work = app.regions.intern("do_work");
        let recv = app.regions.intern("MPI_Recv");
        let ctx = app.contexts.intern("main.1");
        for (r, offset) in [(0usize, 0u64), (1, 5)] {
            let rank = &mut app.ranks[r];
            rank.begin_segment(ctx, Time::from_nanos(offset));
            rank.push_event(Event::compute(
                work,
                Time::from_nanos(offset + 1),
                Time::from_nanos(offset + 10),
            ));
            rank.push_event(Event::with_comm(
                recv,
                Time::from_nanos(offset + 10),
                Time::from_nanos(offset + 30),
                CommInfo::Recv {
                    peer: Rank(((r + 1) % 2) as u32),
                    tag: 0,
                    bytes: 8,
                },
            ));
            rank.end_segment(ctx, Time::from_nanos(offset + 31));
        }
        app
    }

    #[test]
    fn rank_trace_accessors() {
        let app = sample_trace();
        let rt = &app.ranks[0];
        assert_eq!(rt.len(), 4);
        assert_eq!(rt.event_count(), 2);
        assert_eq!(rt.segment_instance_count(), 1);
        assert_eq!(rt.end_time().as_nanos(), 31);
        assert!(rt.is_well_formed());
        assert_eq!(rt.timestamp_vector().len(), 4);
    }

    #[test]
    fn time_in_region_sums_durations() {
        let app = sample_trace();
        let work = app.regions.lookup("do_work").unwrap();
        assert_eq!(app.ranks[0].time_in_region(work).as_nanos(), 9);
        let missing = RegionId(99);
        assert_eq!(app.ranks[0].time_in_region(missing).as_nanos(), 0);
    }

    #[test]
    fn app_trace_totals() {
        let app = sample_trace();
        assert_eq!(app.rank_count(), 2);
        assert_eq!(app.total_events(), 4);
        assert_eq!(app.total_records(), 8);
        assert_eq!(app.end_time().as_nanos(), 36);
        assert!(app.is_well_formed());
        let profile = app.region_time_profile();
        assert_eq!(profile["do_work"].as_nanos(), 18);
        assert_eq!(profile["MPI_Recv"].as_nanos(), 40);
    }

    #[test]
    fn out_of_order_records_detected() {
        let mut rt = RankTrace::new(Rank(0));
        rt.push_event(Event::compute(
            RegionId(0),
            Time::from_nanos(50),
            Time::from_nanos(60),
        ));
        rt.push_event(Event::compute(
            RegionId(0),
            Time::from_nanos(10),
            Time::from_nanos(20),
        ));
        assert!(!rt.is_well_formed());
    }
}
