//! Self-lint smoke test: the workspace itself must stay clean, so the
//! tier-1 `cargo test` gate fails the moment a violation lands — even
//! before CI runs the dedicated lint job.

use xtask::{lint_workspace, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace lint violations:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "suspiciously small scan");
}
