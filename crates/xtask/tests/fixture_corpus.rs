//! Rule-fixture corpus: every rule the pass can emit must fire on its
//! fixture under `tests/fixtures/`, and the clean fixture must stay silent
//! on every surface.  The coverage test cross-checks the corpus against
//! [`xtask::rules::RULE_NAMES`] so a new rule cannot land without a fixture.

use std::path::Path;

use xtask::rules::{lint_source, RULE_NAMES};
use xtask::surface::FileClass;

const LIB: FileClass = FileClass {
    decode_surface: false,
    determinism: false,
    bin_crate: false,
    crate_root: false,
};
const DECODE: FileClass = FileClass {
    decode_surface: true,
    ..LIB
};
const DETERMINISM: FileClass = FileClass {
    determinism: true,
    ..LIB
};
const CRATE_ROOT: FileClass = FileClass {
    crate_root: true,
    ..LIB
};

/// `(fixture file, rule that must fire, classification to lint under)`.
const CASES: &[(&str, &str, FileClass)] = &[
    ("unwrap.rs", "unwrap", DECODE),
    ("expect.rs", "expect", DECODE),
    ("panic.rs", "panic", DECODE),
    ("indexing.rs", "indexing", DECODE),
    ("hash_collection.rs", "hash_collection", DETERMINISM),
    ("wall_clock.rs", "wall_clock", DETERMINISM),
    ("float_eq.rs", "float_eq", DETERMINISM),
    ("partial_cmp.rs", "partial_cmp", DETERMINISM),
    ("thread_count.rs", "thread_count", DETERMINISM),
    ("forbid_unsafe.rs", "forbid_unsafe", CRATE_ROOT),
    ("process_exit.rs", "process_exit", LIB),
    ("print_stdout.rs", "print_stdout", LIB),
    ("dbg.rs", "dbg", LIB),
    ("bad_allow.rs", "bad_allow", DECODE),
    ("unused_allow.rs", "unused_allow", DECODE),
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_rule_fires_on_its_fixture() {
    for &(file, rule, class) in CASES {
        let findings = lint_source(&fixture(file), class);
        assert!(
            findings.violations.iter().any(|v| v.rule == rule),
            "{file}: expected rule `{rule}` to fire, got {:?}",
            findings.violations
        );
    }
}

#[test]
fn the_corpus_covers_every_rule() {
    for &rule in RULE_NAMES {
        assert!(
            CASES.iter().any(|&(_, r, _)| r == rule),
            "rule `{rule}` has no fixture in tests/fixtures/"
        );
    }
}

#[test]
fn fixtures_only_trip_their_own_family() {
    // The decode-surface fixtures must stay silent when linted as plain
    // library code, and vice versa — proves classification gates the rules.
    for &(file, rule, class) in CASES {
        if class == DECODE && rule != "bad_allow" && rule != "unused_allow" {
            let findings = lint_source(&fixture(file), LIB);
            assert!(
                findings.violations.is_empty(),
                "{file}: decode rules must not fire off the decode surface, got {:?}",
                findings.violations
            );
        }
        if class == DETERMINISM {
            let findings = lint_source(&fixture(file), LIB);
            assert!(
                findings.violations.is_empty(),
                "{file}: determinism rules must not fire outside determinism crates, got {:?}",
                findings.violations
            );
        }
    }
}

#[test]
fn bad_allow_does_not_suppress() {
    let findings = lint_source(&fixture("bad_allow.rs"), DECODE);
    assert!(
        findings.violations.iter().any(|v| v.rule == "unwrap"),
        "an unjustified allow must not hide the unwrap: {:?}",
        findings.violations
    );
}

#[test]
fn justified_allow_suppresses_and_is_inventoried() {
    let findings = lint_source(&fixture("allowed.rs"), DECODE);
    assert!(
        findings.violations.is_empty(),
        "justified allow must suppress: {:?}",
        findings.violations
    );
    assert_eq!(findings.allows.len(), 1);
    assert_eq!(findings.allows[0].rule, "indexing");
    assert!(findings.allows[0].justification.contains("non-empty slice"));
}

#[test]
fn audited_wall_clock_allow_suppresses_but_unjustified_reads_still_fire() {
    // The `trace_obs::clock` pattern: justified allows keep the one audited
    // monotonic source lintable — silent, but inventoried for review.
    let findings = lint_source(&fixture("wall_clock_allowed.rs"), DETERMINISM);
    assert!(
        findings.violations.is_empty(),
        "audited clock must pass under determinism rules: {:?}",
        findings.violations
    );
    let clock_allows: Vec<_> = findings
        .allows
        .iter()
        .filter(|a| a.rule == "wall_clock")
        .collect();
    assert_eq!(clock_allows.len(), 2, "both audited sites are inventoried");
    assert!(clock_allows
        .iter()
        .all(|a| a.justification.contains("audited")));

    // The same crate classification still rejects a bare clock read — the
    // allow is per-site, not per-crate.
    let findings = lint_source(&fixture("wall_clock.rs"), DETERMINISM);
    assert!(
        findings.violations.iter().any(|v| v.rule == "wall_clock"),
        "unjustified wall-clock reads must keep failing: {:?}",
        findings.violations
    );
}

#[test]
fn clean_fixture_is_silent_on_every_surface() {
    for class in [LIB, DECODE, DETERMINISM] {
        let findings = lint_source(&fixture("clean.rs"), class);
        assert!(
            findings.violations.is_empty(),
            "clean.rs must not trip anything under {class:?}: {:?}",
            findings.violations
        );
    }
}
