// Fixture: `.unwrap()` on a decode surface must trip the `unwrap` rule.
pub fn parse(input: Option<u32>) -> u32 {
    input.unwrap()
}
