// Fixture: `.partial_cmp()` in a determinism crate must trip `partial_cmp`
// (use `total_cmp` for floats instead).
pub fn ascending(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
