// Fixture: panic-free decode-surface code with near-miss identifiers
// (`unwrap_or`, array literals, test-only unwraps) must produce zero
// findings on any surface.
pub fn add(a: u32, b: u32) -> u32 {
    a.checked_add(b).unwrap_or(u32::MAX)
}

pub fn table() -> [u8; 3] {
    [1, 2, 3]
}

pub fn head(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_index() {
        let v = vec![1u8, 2, 3];
        assert_eq!(v[0], 1);
        assert_eq!(head(&v).unwrap(), 1);
    }
}
