// Fixture: a crate root without `#![forbid(unsafe_code)]` must trip
// `forbid_unsafe`.
pub fn lib_entry() -> u32 {
    7
}
