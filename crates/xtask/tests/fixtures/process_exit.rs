// Fixture: `process::exit` outside a binary-interface crate must trip
// `process_exit` (libraries return errors, they do not kill the process).
pub fn bail() -> ! {
    std::process::exit(2)
}
