// Fixture: a justified `lint:allow` suppresses the violation and is
// inventoried instead.
pub fn first(bytes: &[u8]) -> u8 {
    // lint:allow(indexing) -- the caller guarantees a non-empty slice
    bytes[0]
}
