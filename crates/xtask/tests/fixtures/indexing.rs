// Fixture: slice indexing on a decode surface must trip the `indexing`
// rule; the full-range form `[..]` stays exempt.
pub fn first(bytes: &[u8]) -> u8 {
    let whole = &bytes[..];
    whole[0]
}
