// Fixture: wall-clock reads in a determinism crate must trip `wall_clock`.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
