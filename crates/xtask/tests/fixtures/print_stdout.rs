// Fixture: `println!` outside a binary-interface crate must trip
// `print_stdout`.
pub fn report(total: usize) {
    println!("total: {total}");
}
