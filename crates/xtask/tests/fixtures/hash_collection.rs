// Fixture: `HashMap` in a determinism crate must trip `hash_collection`
// (iteration order varies run to run).
use std::collections::HashMap;

pub fn build() -> HashMap<String, u32> {
    HashMap::new()
}
