// Fixture: the audited clock pattern from `trace_obs::clock` — a justified
// `lint:allow(wall_clock)` keeps the monotonic source in a determinism
// crate, silently, while landing in the allow inventory for review.
pub struct MonotonicClock {
    origin: std::time::Instant, // lint:allow(wall_clock) -- the audited monotonic time source
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            // lint:allow(wall_clock) -- audited origin stamp; only differences are reported
            origin: std::time::Instant::now(),
        }
    }

    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}
