// Fixture: a `lint:allow` without a `-- justification` must trip
// `bad_allow` and must NOT suppress the underlying violation.
pub fn parse(input: Option<u32>) -> u32 {
    // lint:allow(unwrap)
    input.unwrap()
}
