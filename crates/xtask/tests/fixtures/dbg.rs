// Fixture: a leftover `dbg!` must trip the `dbg` rule everywhere.
pub fn inspect(value: u32) -> u32 {
    dbg!(value)
}
