// Fixture: float `==`/`!=` in a determinism crate must trip `float_eq`.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
