// Fixture: panic-family macros on a decode surface must trip the `panic`
// rule — both the direct form and the unreachable! variant.
pub fn decode(byte: u8) -> u8 {
    if byte > 0x7f {
        panic!("byte out of range");
    }
    match byte {
        0 => 0,
        b if b < 0x80 => b,
        _ => unreachable!("guarded above"),
    }
}
