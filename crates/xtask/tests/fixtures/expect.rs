// Fixture: `.expect()` on a decode surface must trip the `expect` rule.
pub fn parse(input: Option<u32>) -> u32 {
    input.expect("the caller promised a value")
}
