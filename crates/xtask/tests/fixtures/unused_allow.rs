// Fixture: a justified allow that suppresses nothing must trip
// `unused_allow` so stale escapes get cleaned up.
// lint:allow(unwrap) -- nothing on the next line unwraps
pub fn benign() -> u32 {
    7
}
