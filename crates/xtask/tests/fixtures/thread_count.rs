// Fixture: deriving behaviour from the machine's parallelism in a
// determinism crate must trip `thread_count`.
pub fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
