//! The three rule families and the `lint:allow` escape hatch.
//!
//! Rules operate on the token stream from [`crate::lexer`], never on raw
//! text, so string/comment contents cannot trip them.  Code under
//! `#[cfg(test)]` is stripped before the rules run: tests may unwrap and
//! index freely — the invariants protect production decode and reduction
//! paths, not assertions.

use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::surface::FileClass;

/// Names of every rule the pass can emit, used by the CLI and docs.
pub const RULE_NAMES: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "indexing",
    "hash_collection",
    "wall_clock",
    "float_eq",
    "partial_cmp",
    "thread_count",
    "forbid_unsafe",
    "process_exit",
    "print_stdout",
    "dbg",
    "bad_allow",
    "unused_allow",
];

/// One rule violation in one file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// 1-based source line.
    pub line: usize,
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// One used `lint:allow` escape hatch, inventoried for the JSON report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// 1-based line of the allow comment.
    pub line: usize,
    /// The rule being allowed.
    pub rule: String,
    /// The written justification after `--`.
    pub justification: String,
}

/// The outcome of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileFindings {
    /// Violations not covered by a justified allow.
    pub violations: Vec<Violation>,
    /// Allows that suppressed at least one violation.
    pub allows: Vec<AllowEntry>,
}

/// Lints one file's source text under the given classification.
pub fn lint_source(source: &str, class: FileClass) -> FileFindings {
    let lexed = lex(source);
    let stripped = strip_test_code(&lexed.tokens);
    let mut candidates = scan(&stripped, class);
    if class.crate_root && !has_forbid_unsafe(&lexed.tokens) {
        candidates.push(Violation {
            line: 1,
            rule: "forbid_unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    apply_allows(candidates, &lexed.comments)
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` stripping
// ---------------------------------------------------------------------------

/// Returns the token stream with every `#[cfg(test)]`- or `#[test]`-gated
/// item removed.  Detection is exact-match on the attribute tokens, so
/// `#[cfg(not(test))]` (production code) is kept.
fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && matches(tokens, i + 1, &["["]) {
            let attr_end = match matching_bracket(tokens, i + 1) {
                Some(e) => e,
                None => {
                    out.push(tokens[i].clone());
                    i += 1;
                    continue;
                }
            };
            let attr: Vec<&str> = tokens[i..=attr_end]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            let is_test_gate =
                attr == ["#", "[", "cfg", "(", "test", ")", "]"] || attr == ["#", "[", "test", "]"];
            if is_test_gate {
                i = skip_item(tokens, attr_end + 1);
                continue;
            }
            // Any other attribute: copy it through verbatim.
            out.extend_from_slice(&tokens[i..=attr_end]);
            i = attr_end + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

fn matches(tokens: &[Token], at: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, t)| tokens.get(at + k).is_some_and(|tok| tok.text == *t))
}

/// Given the index of a `[`, returns the index of its matching `]`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Skips one item starting at `from` (any further attributes, then either a
/// braced body or a `;`-terminated item) and returns the index just past it.
fn skip_item(tokens: &[Token], mut from: usize) -> usize {
    // Skip stacked attributes on the same item.
    while from < tokens.len() && tokens[from].text == "#" && matches(tokens, from + 1, &["["]) {
        match matching_bracket(tokens, from + 1) {
            Some(e) => from = e + 1,
            None => return tokens.len(),
        }
    }
    let mut depth = 0usize;
    while from < tokens.len() {
        match tokens[from].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return from + 1;
                }
            }
            ";" if depth == 0 => return from + 1,
            _ => {}
        }
        from += 1;
    }
    from
}

// ---------------------------------------------------------------------------
// Token-level rules
// ---------------------------------------------------------------------------

/// Identifier-position keywords: a `[` after one of these opens a slice
/// pattern or array expression, not an index operation.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn scan(tokens: &[Token], class: FileClass) -> Vec<Violation> {
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            line,
            rule,
            message,
        });
    };
    for (i, tok) in tokens.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);
        let prev_text = prev.map(|t| t.text.as_str()).unwrap_or("");
        let next_text = next.map(|t| t.text.as_str()).unwrap_or("");
        match tok.kind {
            TokenKind::Ident => match tok.text.as_str() {
                "unwrap" if class.decode_surface && prev_text == "." => push(
                    &mut out,
                    tok.line,
                    "unwrap",
                    "`.unwrap()` on a decode surface; return a typed error".to_string(),
                ),
                "expect" if class.decode_surface && prev_text == "." => push(
                    &mut out,
                    tok.line,
                    "expect",
                    "`.expect()` on a decode surface; return a typed error".to_string(),
                ),
                m if class.decode_surface && PANIC_MACROS.contains(&m) && next_text == "!" => {
                    push(
                        &mut out,
                        tok.line,
                        "panic",
                        format!("`{m}!` on a decode surface; return a typed error"),
                    );
                }
                "HashMap" | "HashSet" if class.determinism => push(
                    &mut out,
                    tok.line,
                    "hash_collection",
                    format!(
                        "`{}` in a determinism crate; use the BTree equivalent",
                        tok.text
                    ),
                ),
                "Instant" | "SystemTime" if class.determinism => push(
                    &mut out,
                    tok.line,
                    "wall_clock",
                    format!("`{}` in a determinism crate; wall-clock reads are nondeterministic", tok.text),
                ),
                "partial_cmp" if class.determinism && prev_text == "." => push(
                    &mut out,
                    tok.line,
                    "partial_cmp",
                    "`.partial_cmp()` in a determinism crate; use `total_cmp` for floats".to_string(),
                ),
                "available_parallelism" if class.determinism => push(
                    &mut out,
                    tok.line,
                    "thread_count",
                    "thread-count query in a determinism crate; output must not depend on worker count"
                        .to_string(),
                ),
                "process"
                    if !class.bin_crate
                        && next_text == "::"
                        && tokens
                            .get(i + 2)
                            .is_some_and(|t| t.text == "exit" || t.text == "abort") =>
                {
                    push(
                        &mut out,
                        tok.line,
                        "process_exit",
                        "`std::process::exit`/`abort` outside the cli crate".to_string(),
                    );
                }
                "println" | "print" if !class.bin_crate && next_text == "!" => push(
                    &mut out,
                    tok.line,
                    "print_stdout",
                    format!("`{}!` in a library crate; return or log instead", tok.text),
                ),
                "dbg" if next_text == "!" => push(
                    &mut out,
                    tok.line,
                    "dbg",
                    "`dbg!` left in source".to_string(),
                ),
                _ => {}
            },
            TokenKind::Punct if tok.text == "[" && class.decode_surface => {
                let indexes = prev.is_some_and(|p| {
                    (p.kind == TokenKind::Ident && !KEYWORDS.contains(&p.text.as_str()))
                        || p.text == ")"
                        || p.text == "]"
                        || p.text == "?"
                });
                if indexes && !is_full_range(tokens, i) {
                    push(
                        &mut out,
                        tok.line,
                        "indexing",
                        "indexing can panic on a decode surface; use `.get()`/`first_chunk` or bound-check"
                            .to_string(),
                    );
                }
            }
            TokenKind::Punct if (tok.text == "==" || tok.text == "!=") && class.determinism => {
                let float_adjacent = prev.is_some_and(|p| p.kind == TokenKind::Float)
                    || next.is_some_and(|n| n.kind == TokenKind::Float);
                if float_adjacent {
                    push(
                        &mut out,
                        tok.line,
                        "float_eq",
                        "float equality comparison in a determinism crate".to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// True when the `[` at `open` encloses exactly `..` (a full-range slice,
/// which cannot panic).
fn is_full_range(tokens: &[Token], open: usize) -> bool {
    matching_bracket(tokens, open)
        .is_some_and(|close| close == open + 2 && tokens[open + 1].text == "..")
}

fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

// ---------------------------------------------------------------------------
// lint:allow
// ---------------------------------------------------------------------------

struct ParsedAllow {
    line: usize,
    target_line: usize,
    rules: Vec<String>,
    justification: Option<String>,
    used: bool,
}

/// Parses `lint:allow(rule, …) -- justification` comments.  A trailing
/// comment covers its own line; a comment alone on a line covers the next
/// line.
fn parse_allows(comments: &[Comment]) -> Vec<ParsedAllow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest
            .get(..close)
            .unwrap_or("")
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest.get(close + 1..).unwrap_or("").trim();
        let justification = after
            .strip_prefix("--")
            .map(|j| j.trim().to_string())
            .filter(|j| !j.is_empty());
        out.push(ParsedAllow {
            line: c.line,
            target_line: if c.leading { c.line + 1 } else { c.line },
            rules,
            justification,
            used: false,
        });
    }
    out
}

fn apply_allows(candidates: Vec<Violation>, comments: &[Comment]) -> FileFindings {
    let mut allows = parse_allows(comments);
    let mut findings = FileFindings::default();
    for v in candidates {
        let cover = allows.iter_mut().find(|a| {
            a.target_line == v.line
                && a.rules.iter().any(|r| r == v.rule)
                && a.justification.is_some()
        });
        if let Some(a) = cover {
            a.used = true;
        } else {
            findings.violations.push(v);
        }
    }
    for a in &allows {
        if a.justification.is_none() {
            findings.violations.push(Violation {
                line: a.line,
                rule: "bad_allow",
                message: "lint:allow without a `-- justification`".to_string(),
            });
        } else if !a.used {
            findings.violations.push(Violation {
                line: a.line,
                rule: "unused_allow",
                message: format!(
                    "lint:allow({}) does not suppress anything on its target line",
                    a.rules.join(", ")
                ),
            });
        } else {
            for rule in &a.rules {
                findings.allows.push(AllowEntry {
                    line: a.line,
                    rule: rule.clone(),
                    justification: a.justification.clone().unwrap_or_default(),
                });
            }
        }
    }
    findings.violations.sort_by_key(|v| (v.line, v.rule));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode() -> FileClass {
        FileClass {
            decode_surface: true,
            ..FileClass::default()
        }
    }

    fn det() -> FileClass {
        FileClass {
            determinism: true,
            ..FileClass::default()
        }
    }

    fn rules_of(f: &FileFindings) -> Vec<&str> {
        f.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_fires_only_on_decode_surface() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_of(&lint_source(src, decode())), ["unwrap"]);
        assert!(lint_source(src, FileClass::default()).violations.is_empty());
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint_source(src, decode()).violations.is_empty());
        // But cfg(not(test)) is production code.
        let src = "#[cfg(not(test))]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_source(src, decode())), ["unwrap"]);
    }

    #[test]
    fn indexing_flags_panicky_brackets_only() {
        let fired = |src: &str| !lint_source(src, decode()).violations.is_empty();
        assert!(fired("fn f(b: &[u8]) -> u8 { b[0] }"));
        assert!(fired("fn f(b: &[u8]) -> &[u8] { &b[1..] }"));
        assert!(!fired("fn f(b: &[u8]) -> &[u8] { &b[..] }"), "full range");
        assert!(!fired("fn f() -> [u8; 2] { [1, 2] }"), "array literal");
        assert!(
            !fired("fn f(b: [u8; 2]) -> u8 { let [x, _] = b; x }"),
            "pattern"
        );
        assert!(!fired("#[derive(Clone)] struct S;"), "attribute");
        assert!(!fired("fn f() -> Vec<u8> { vec![1] }"), "macro bang");
    }

    #[test]
    fn determinism_rules() {
        let f = lint_source(
            "use std::collections::HashMap;\nfn f(a: f64) -> bool { a == 1.0 }\n",
            det(),
        );
        assert_eq!(rules_of(&f), ["hash_collection", "float_eq"]);
        let f = lint_source(
            "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }",
            det(),
        );
        assert_eq!(rules_of(&f), ["partial_cmp"]);
        let f = lint_source("use std::time::Instant;", det());
        assert_eq!(rules_of(&f), ["wall_clock"]);
    }

    #[test]
    fn allow_suppresses_and_is_inventoried() {
        let src =
            "fn f(b: &[u8]) -> u8 {\n    b[0] // lint:allow(indexing) -- caller checked len\n}\n";
        let f = lint_source(src, decode());
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "indexing");
        assert_eq!(f.allows[0].justification, "caller checked len");
    }

    #[test]
    fn leading_allow_covers_the_next_line() {
        let src = "fn f(b: &[u8]) -> u8 {\n    // lint:allow(indexing) -- caller checked len\n    b[0]\n}\n";
        assert!(lint_source(src, decode()).violations.is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] } // lint:allow(indexing)\n";
        let findings = lint_source(src, decode());
        let rules = rules_of(&findings);
        assert!(rules.contains(&"bad_allow"), "{rules:?}");
        assert!(rules.contains(&"indexing"), "bad allow must not suppress");
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "fn f() {} // lint:allow(unwrap) -- nothing here\n";
        assert_eq!(rules_of(&lint_source(src, decode())), ["unused_allow"]);
    }

    #[test]
    fn forbid_unsafe_checked_on_crate_roots() {
        let root = FileClass {
            crate_root: true,
            ..FileClass::default()
        };
        let f = lint_source("pub fn f() {}", root);
        assert_eq!(rules_of(&f), ["forbid_unsafe"]);
        let f = lint_source("#![forbid(unsafe_code)]\npub fn f() {}", root);
        assert!(f.violations.is_empty());
    }

    #[test]
    fn hygiene_rules_respect_bin_crates() {
        let lib = FileClass::default();
        let bin = FileClass {
            bin_crate: true,
            ..FileClass::default()
        };
        let src = "fn f() { println!(\"x\"); std::process::exit(1); }";
        let findings = lint_source(src, lib);
        let rules = rules_of(&findings);
        assert!(rules.contains(&"print_stdout"));
        assert!(rules.contains(&"process_exit"));
        assert!(lint_source(src, bin).violations.is_empty());
        assert_eq!(rules_of(&lint_source("fn f() { dbg!(1); }", bin)), ["dbg"]);
    }
}
