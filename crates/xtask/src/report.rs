//! Workspace-level lint report: text rendering for humans, hand-rolled JSON
//! for the CI artifact (no serde in the tree — the build environment has no
//! crates registry).

use crate::rules::{AllowEntry, Violation};

/// A violation tagged with the workspace-relative file it was found in.
#[derive(Clone, Debug)]
pub struct FileViolation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// The violation itself.
    pub violation: Violation,
}

/// A used allow tagged with its file.
#[derive(Clone, Debug)]
pub struct FileAllow {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// The inventoried allow.
    pub allow: AllowEntry,
}

/// The outcome of linting the whole workspace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed violations, sorted by (file, line).
    pub violations: Vec<FileViolation>,
    /// Every justified, used `lint:allow`, sorted by (file, line).
    pub allows: Vec<FileAllow>,
    /// Number of `.rs` files the pass scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable report, one `file:line: [rule] message` per violation.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file, v.violation.line, v.violation.rule, v.violation.message
            ));
        }
        out.push_str(&format!(
            "{} violation{} across {} file{} scanned; {} lint:allow escape{} in use\n",
            self.violations.len(),
            plural(self.violations.len()),
            self.files_scanned,
            plural(self.files_scanned),
            self.allows.len(),
            plural(self.allows.len()),
        ));
        out
    }

    /// Machine-readable report with the allow inventory, for the CI artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
                json_str(&v.file),
                v.violation.line,
                json_str(v.violation.rule),
                json_str(&v.violation.message),
                comma(i, self.violations.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}{}\n",
                json_str(&a.file),
                a.allow.line,
                json_str(&a.allow.rule),
                json_str(&a.allow.justification),
                comma(i, self.allows.len()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![FileViolation {
                file: "crates/x/src/lib.rs".to_string(),
                violation: Violation {
                    line: 3,
                    rule: "unwrap",
                    message: "a \"quoted\" message".to_string(),
                },
            }],
            allows: vec![FileAllow {
                file: "crates/y/src/lib.rs".to_string(),
                allow: AllowEntry {
                    line: 9,
                    rule: "indexing".to_string(),
                    justification: "bounds checked above".to_string(),
                },
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn text_report_lists_violations_with_spans() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/lib.rs:3: [unwrap]"));
        assert!(text.contains("1 violation across 2 files"));
    }

    #[test]
    fn json_report_escapes_and_inventories_allows() {
        let json = sample().render_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"justification\": \"bounds checked above\""));
        assert!(json.contains("\"files_scanned\": 2"));
        // Sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
