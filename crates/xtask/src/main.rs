#![forbid(unsafe_code)]
//! `cargo run -p xtask -- lint [--json]` — run the in-house static-analysis
//! pass over the workspace.  Exits 0 when clean, 1 when any rule fires.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut command = None;
    for arg in &args {
        match arg.as_str() {
            "--json" => json = true,
            "lint" if command.is_none() => command = Some("lint"),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("lint") {
        usage();
        return ExitCode::from(2);
    }

    let root = xtask::workspace_root();
    let report = match xtask::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("xtask lint: failed to scan workspace: {err}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- lint [--json]");
    eprintln!();
    eprintln!("Rules enforced (see docs/static-analysis.md):");
    for rule in xtask::rules::RULE_NAMES {
        eprintln!("  {rule}");
    }
}
