//! Which files get which rule families.
//!
//! The classification is path-based and file-granular so the rule engine
//! stays purely lexical: a file either is decode surface (untrusted-input
//! parsing) or it is not, and the list below is the single place that
//! decision lives.  `docs/static-analysis.md` documents the same lists for
//! humans; keep the two in sync.

use std::path::Path;

/// Rule families that apply to one scanned file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Panic-freedom rules apply: the file parses or decodes input that may
    /// be malformed (truncated files, corrupt chunks, hostile traces).
    pub decode_surface: bool,
    /// Determinism rules apply: the file belongs to a crate whose behaviour
    /// feeds reduction output, which must be bit-identical across runs,
    /// drivers and thread counts.
    pub determinism: bool,
    /// The file belongs to a binary-interface crate (`cli`, `xtask`) where
    /// stdout printing and process exit are the product, not a leak.
    pub bin_crate: bool,
    /// The file is a crate root (`lib.rs` / `main.rs`) and must carry
    /// `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// Crates whose outputs must be deterministic (directory names under
/// `crates/`).
///
/// `obs` is deliberately in this list even though it is the one crate that
/// reads the monotonic clock: its two audited `lint:allow(wall_clock)`
/// sites in `clock.rs` are the *only* places the whole workspace may touch
/// time, and keeping the crate under the determinism rules means any new
/// clock read elsewhere in it fails the lint instead of slipping in.
pub const DETERMINISM_CRATES: &[&str] = &[
    "core",
    "wavelet",
    "trace-model",
    "stream",
    "clustering",
    "obs",
    "report",
];

/// Binary-interface crates exempt from the stdout/exit hygiene rules.
pub const BIN_CRATES: &[&str] = &["cli", "xtask"];

/// Decode-surface files, relative to the workspace root.  A `/` suffix
/// marks a whole directory.
pub const DECODE_SURFACE: &[&str] = &[
    "crates/container/src/",
    "crates/compress/src/",
    "crates/format/src/parse.rs",
    "crates/format/src/record.rs",
    "crates/stream/src/parser.rs",
    "crates/stream/src/binary.rs",
    "crates/trace-model/src/codec/",
    "crates/obs/src/json.rs",
    "crates/obs/src/chrome.rs",
    "crates/report/src/",
];

/// Classifies a workspace-relative `.rs` path, or returns `None` when the
/// file is out of scope (vendored shims, integration tests, benches,
/// examples, build output).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if rel_str.ends_with(".rs") {
        // fall through
    } else {
        return None;
    }
    let mut parts = rel_str.split('/');
    let first = parts.next()?;
    let (crate_name, in_src) = match first {
        "vendor" | "target" | "docs" | ".github" => return None,
        "crates" => {
            let name = parts.next()?;
            (name, parts.next() == Some("src"))
        }
        // The workspace root is itself a package (the umbrella facade).
        "src" => ("trace_reduction", true),
        _ => return None,
    };
    if !in_src {
        // tests/, benches/, examples/, fixtures — out of scope.
        return None;
    }
    let crate_root = rel_str.ends_with("/src/lib.rs")
        || rel_str.ends_with("/src/main.rs")
        || rel_str == "src/lib.rs"
        || rel_str == "src/main.rs";
    Some(FileClass {
        decode_surface: DECODE_SURFACE.iter().any(|d| {
            if let Some(dir) = d.strip_suffix('/') {
                rel_str.starts_with(dir) && rel_str.len() > dir.len()
            } else {
                rel_str == *d
            }
        }),
        determinism: DETERMINISM_CRATES.contains(&crate_name),
        bin_crate: BIN_CRATES.contains(&crate_name),
        crate_root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(p: &str) -> Option<FileClass> {
        classify(Path::new(p))
    }

    #[test]
    fn vendor_tests_and_benches_are_out_of_scope() {
        assert_eq!(class("vendor/rand/src/lib.rs"), None);
        assert_eq!(class("crates/container/tests/roundtrip.rs"), None);
        assert_eq!(class("crates/bench/benches/reduce.rs"), None);
        assert_eq!(class("crates/xtask/tests/fixtures/unwrap.rs"), None);
        assert_eq!(class("crates/container/src/reader.txt"), None);
    }

    #[test]
    fn decode_surface_is_file_granular() {
        assert!(
            class("crates/container/src/reader.rs")
                .unwrap()
                .decode_surface
        );
        assert!(class("crates/compress/src/lz.rs").unwrap().decode_surface);
        assert!(class("crates/format/src/parse.rs").unwrap().decode_surface);
        assert!(!class("crates/format/src/write.rs").unwrap().decode_surface);
        assert!(class("crates/stream/src/parser.rs").unwrap().decode_surface);
        assert!(!class("crates/stream/src/reduce.rs").unwrap().decode_surface);
        assert!(
            class("crates/trace-model/src/codec/varint.rs")
                .unwrap()
                .decode_surface
        );
        assert!(
            !class("crates/trace-model/src/event.rs")
                .unwrap()
                .decode_surface
        );
        // The run-report JSON parser reads files from disk — untrusted.
        assert!(class("crates/obs/src/json.rs").unwrap().decode_surface);
        assert!(!class("crates/obs/src/recorder.rs").unwrap().decode_surface);
        // The shared chrome-trace reader parses foreign JSON documents.
        assert!(class("crates/obs/src/chrome.rs").unwrap().decode_surface);
        // The report crate consumes reduced traces and run reports from
        // disk, so the whole src tree is decode surface.
        assert!(class("crates/report/src/html.rs").unwrap().decode_surface);
        assert!(class("crates/report/src/lib.rs").unwrap().decode_surface);
    }

    #[test]
    fn determinism_and_bin_crates() {
        assert!(class("crates/core/src/reducer.rs").unwrap().determinism);
        assert!(class("crates/stream/src/shard.rs").unwrap().determinism);
        assert!(!class("crates/sim/src/lib.rs").unwrap().determinism);
        // The observability crate holds the sole audited clock: keeping it
        // under the determinism rules makes every new time read a lint hit.
        assert!(class("crates/obs/src/clock.rs").unwrap().determinism);
        // Report sinks promise byte-identical output across runs/drivers.
        assert!(
            class("crates/report/src/divergence.rs")
                .unwrap()
                .determinism
        );
        assert!(class("crates/cli/src/main.rs").unwrap().bin_crate);
        assert!(class("crates/xtask/src/main.rs").unwrap().bin_crate);
        assert!(!class("crates/eval/src/lib.rs").unwrap().bin_crate);
    }

    #[test]
    fn crate_roots_including_the_facade() {
        assert!(class("src/lib.rs").unwrap().crate_root);
        assert!(class("crates/cli/src/main.rs").unwrap().crate_root);
        assert!(class("crates/container/src/lib.rs").unwrap().crate_root);
        assert!(!class("crates/container/src/reader.rs").unwrap().crate_root);
    }
}
