#![forbid(unsafe_code)]
//! Workspace automation tasks, chiefly `xtask lint`: an in-house
//! static-analysis pass enforcing the workspace's three invariant families —
//! panic-freedom on decode surfaces, determinism in reduction-output crates,
//! and crate hygiene.  See `docs/static-analysis.md` for the rule catalogue
//! and the escape-hatch policy.
//!
//! The pass is deliberately self-contained (no `syn`, no registry
//! dependencies): [`lexer`] tokenizes Rust source, [`surface`] classifies
//! files, [`rules`] runs the token-level checks, and [`report`] renders the
//! outcome for humans and for the CI artifact.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod surface;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use report::{FileAllow, FileViolation, Report};

/// Directory names never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "node_modules"];

/// Lints every in-scope `.rs` file under `root` (a workspace checkout) and
/// returns the combined report.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let Some(class) = surface::classify(&rel) else {
            continue;
        };
        let source = fs::read_to_string(root.join(&rel))?;
        report.files_scanned += 1;
        let findings = rules::lint_source(&source, class);
        let file = rel.to_string_lossy().replace('\\', "/");
        for violation in findings.violations {
            report.violations.push(FileViolation {
                file: file.clone(),
                violation,
            });
        }
        for allow in findings.allows {
            report.allows.push(FileAllow {
                file: file.clone(),
                allow,
            });
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.violation.line).cmp(&(&b.file, b.violation.line)));
    report
        .allows
        .sort_by(|a, b| (&a.file, a.allow.line).cmp(&(&b.file, b.allow.line)));
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Locates the workspace root from this crate's manifest directory
/// (`crates/xtask` → two levels up).  Used by the binary and the self-lint
/// test so both operate on the real tree regardless of invocation directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
