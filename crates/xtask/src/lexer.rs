//! A small, token-aware lexer for Rust source.
//!
//! The lint pass cannot use `syn` (the build environment has no crates
//! registry), so this module implements just enough of the Rust lexical
//! grammar to make the rules reliable: string literals (plain, raw, byte),
//! character literals vs. lifetimes, line and block comments (including
//! nesting and doc comments), and numeric literals with a float/integer
//! distinction.  Everything the rules match on — identifiers, punctuation —
//! comes out of this stream, so a `"unwrap()"` inside a string or a
//! `HashMap` mentioned in a doc comment can never trip a rule.

/// The kind of a significant token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `match`, `r#type`).
    Ident,
    /// Punctuation; multi-character operators the rules care about
    /// (`::`, `==`, `!=`, `..`, `..=`) are fused into one token.
    Punct,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `1e-3`, `2f64`).
    Float,
    /// A string or byte-string literal (plain or raw).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One significant token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// What sort of token this is.
    pub kind: TokenKind,
    /// The token text (for `Str` the raw source text, delimiters included).
    pub text: String,
}

/// A comment, kept separately from the token stream so the rules can look
/// for `lint:allow` directives without comments affecting token adjacency.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body with the `//`, `///`, `/*`, … markers stripped.
    pub text: String,
    /// True when no significant token precedes the comment on its line,
    /// i.e. the comment is the first thing on the line.
    pub leading: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into significant tokens and comments.
///
/// The lexer is intentionally forgiving: source that rustc would reject
/// (unterminated string, stray byte) is lexed on a best-effort basis rather
/// than reported, because everything the linter scans is also compiled.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    /// Line number of the most recently pushed token (to compute `leading`).
    last_token_line: usize,
    out: Lexed,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            last_token_line: 0,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_token(&mut self, line: usize, kind: TokenKind, text: String) {
        self.last_token_line = line;
        self.out.tokens.push(Token { line, kind, text });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) => {
                    // `r"…"` / `r#"…"#` are raw strings; `r#ident` is a raw
                    // identifier.
                    let mut hashes = 0;
                    while self.peek(1 + hashes) == Some('#') {
                        hashes += 1;
                    }
                    if self.peek(1 + hashes) == Some('"') {
                        self.bump();
                        self.raw_string(line);
                    } else {
                        self.bump(); // r
                        self.bump(); // #
                        self.ident(line);
                    }
                }
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        // Strip doc markers: `///`, `//!`.
        while matches!(self.peek(0), Some('/' | '!')) {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let leading = self.last_token_line != line;
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_string(),
            leading,
        });
    }

    fn block_comment(&mut self, line: usize) {
        let leading = self.last_token_line != line;
        self.bump();
        self.bump();
        if matches!(self.peek(0), Some('*' | '!')) && self.peek(1) != Some('/') {
            self.bump();
        }
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            text: text.trim().to_string(),
            leading,
        });
    }

    fn string(&mut self, line: usize) {
        let mut text = String::new();
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push_token(line, TokenKind::Str, text);
    }

    fn raw_string(&mut self, line: usize) {
        // Positioned at `#`* `"` — count hashes, then scan for `"` + hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::from("r\"");
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes {
                    if self.peek(0) == Some('#') {
                        self.bump();
                        matched += 1;
                    } else {
                        text.push('"');
                        for _ in 0..matched {
                            text.push('#');
                        }
                        continue 'outer;
                    }
                }
                break;
            }
            text.push(c);
        }
        text.push('"');
        self.push_token(line, TokenKind::Str, text);
    }

    fn char_or_lifetime(&mut self, line: usize) {
        // Disambiguate `'a'` (char) from `'a` (lifetime): a quote two
        // characters ahead, or an escape, means a char literal.
        let next = self.peek(1);
        if next == Some('\\') || self.peek(2) == Some('\'') {
            self.char_literal(line);
        } else if next.is_some_and(|c| c.is_alphabetic() || c == '_') {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(line, TokenKind::Lifetime, text);
        } else {
            self.char_literal(line);
        }
    }

    fn char_literal(&mut self, line: usize) {
        let mut text = String::new();
        text.push('\'');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '\'' {
                break;
            }
        }
        self.push_token(line, TokenKind::Char, text);
    }

    fn number(&mut self, line: usize) {
        let mut text = String::new();
        let mut is_float = false;
        let hex = self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'X'));
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let exponent = matches!(c, 'e' | 'E')
                    && (self.peek(1).is_some_and(|a| a.is_ascii_digit())
                        || (matches!(self.peek(1), Some('+' | '-'))
                            && self.peek(2).is_some_and(|a| a.is_ascii_digit())));
                if !hex && exponent {
                    is_float = true;
                    text.push(c);
                    self.bump();
                    if matches!(self.peek(0), Some('+' | '-')) {
                        text.push(self.bump().unwrap_or('+'));
                    }
                    continue;
                }
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.0` continues the literal; `1..2` and `1.max(…)` do not.
                let after = self.peek(1);
                if !hex && after.is_some_and(|a| a.is_ascii_digit()) && !is_float {
                    is_float = true;
                    text.push(c);
                    self.bump();
                } else if !hex
                    && !is_float
                    && !matches!(after, Some('.') | Some('_'))
                    && !after.is_some_and(|a| a.is_alphabetic())
                {
                    // Trailing-dot float: `1.`.
                    is_float = true;
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if !hex && (text.ends_with("f32") || text.ends_with("f64")) {
            is_float = true;
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(line, kind, text);
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(line, TokenKind::Ident, text);
    }

    fn punct(&mut self, line: usize) {
        let c = self.bump().unwrap_or(' ');
        let mut text = String::from(c);
        // Fuse the multi-character operators the rules inspect.
        match (c, self.peek(0)) {
            (':', Some(':'))
            | ('=', Some('='))
            | ('!', Some('='))
            | ('-', Some('>'))
            | ('=', Some('>')) => {
                text.push(self.bump().unwrap_or(' '));
            }
            ('.', Some('.')) => {
                text.push(self.bump().unwrap_or(' '));
                if self.peek(0) == Some('=') {
                    text.push(self.bump().unwrap_or(' '));
                }
            }
            _ => {}
        }
        self.push_token(line, TokenKind::Punct, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let lexed = lex("let s = \"x.unwrap()\"; // calls .unwrap()\n");
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert!(!lexed.comments[0].leading);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#; let t = 1;"####);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(toks.iter().any(|(_, t)| t == "t"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("let a = 1.5; let b = 10; for i in 0..10 {} let c = 2e3;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Float && t == "1.5"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Float && t == "2e3"));
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let lexed =
            lex("/* outer /* inner */ still comment */ fn f() {}\n/// doc HashMap\nfn g() {}");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"));
    }

    #[test]
    fn fused_operators_and_lines() {
        let lexed = lex("a == b;\nx != y;\nstd::process::exit(1);");
        let eq = lexed.tokens.iter().find(|t| t.text == "==").expect("==");
        assert_eq!(eq.line, 1);
        let ne = lexed.tokens.iter().find(|t| t.text == "!=").expect("!=");
        assert_eq!(ne.line, 2);
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.text == "::").count(),
            2,
            "both paths fused"
        );
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 3;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "type"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds("let a = b\"bytes\"; let c = b'\\n'; let r = br#\"raw\"#;");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }
}
