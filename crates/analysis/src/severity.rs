//! The severity matrix produced by the analysis and its CUBE-like rendering.

use std::collections::BTreeMap;

use crate::metrics::MetricKind;

/// Severities of one `(metric, code location)` pair, one value per rank, in
/// milliseconds.  Values may be negative when the analysed trace's time
/// stamps are skewed (which is how the paper detects broken reductions).
#[derive(Clone, Debug, PartialEq)]
pub struct SeverityEntry {
    /// The performance metric.
    pub metric: MetricKind,
    /// The code location (region / function name).
    pub region: String,
    /// Severity per rank in milliseconds.
    pub per_rank_ms: Vec<f64>,
}

impl SeverityEntry {
    /// Total severity over all ranks (milliseconds; may be negative).
    pub fn total_ms(&self) -> f64 {
        self.per_rank_ms.iter().sum()
    }

    /// Largest single-rank magnitude.
    pub fn max_abs_ms(&self) -> f64 {
        self.per_rank_ms.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// The per-rank severities normalized so the largest magnitude is 1
    /// (all zeros stay zero).  Used when comparing rank *patterns*.
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.max_abs_ms();
        if max == 0.0 {
            return vec![0.0; self.per_rank_ms.len()];
        }
        self.per_rank_ms.iter().map(|v| v / max).collect()
    }
}

/// The full diagnosis of one trace: a severity matrix over
/// `(metric, code location, rank)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Diagnosis {
    /// Name of the analysed program / trace.
    pub trace_name: String,
    /// Number of ranks in the analysed trace.
    pub ranks: usize,
    /// All severity entries, keyed by `(metric, region)`.
    pub entries: BTreeMap<(MetricKind, String), SeverityEntry>,
}

impl Diagnosis {
    /// Creates an empty diagnosis.
    pub fn new(trace_name: impl Into<String>, ranks: usize) -> Self {
        Diagnosis {
            trace_name: trace_name.into(),
            ranks,
            entries: BTreeMap::new(),
        }
    }

    /// Adds `value_ms` to the severity of `(metric, region)` for `rank`.
    pub fn add(&mut self, metric: MetricKind, region: &str, rank: usize, value_ms: f64) {
        let entry = self
            .entries
            .entry((metric, region.to_owned()))
            .or_insert_with(|| SeverityEntry {
                metric,
                region: region.to_owned(),
                per_rank_ms: vec![0.0; self.ranks],
            });
        if rank < entry.per_rank_ms.len() {
            entry.per_rank_ms[rank] += value_ms;
        }
    }

    /// Looks up the entry for `(metric, region)`.
    pub fn entry(&self, metric: MetricKind, region: &str) -> Option<&SeverityEntry> {
        self.entries.get(&(metric, region.to_owned()))
    }

    /// Severity of `(metric, region)` for one rank (0 when absent).
    pub fn severity(&self, metric: MetricKind, region: &str, rank: usize) -> f64 {
        self.entry(metric, region)
            .and_then(|e| e.per_rank_ms.get(rank))
            .copied()
            .unwrap_or(0.0)
    }

    /// Total severity of a metric summed over regions and ranks.
    pub fn metric_total_ms(&self, metric: MetricKind) -> f64 {
        self.entries
            .values()
            .filter(|e| e.metric == metric)
            .map(SeverityEntry::total_ms)
            .sum()
    }

    /// Total execution time over all ranks and regions (the denominator used
    /// when judging whether a wait-state severity is significant).
    pub fn total_time_ms(&self) -> f64 {
        self.metric_total_ms(MetricKind::ExecutionTime)
    }

    /// All wait-state entries whose total magnitude exceeds `fraction` of
    /// the total execution time, largest first.
    pub fn significant_wait_states(&self, fraction: f64) -> Vec<&SeverityEntry> {
        let budget = self.total_time_ms() * fraction;
        let mut entries: Vec<&SeverityEntry> = self
            .entries
            .values()
            .filter(|e| e.metric.is_wait_state() && e.total_ms().abs() >= budget)
            .collect();
        entries.sort_by(|a, b| {
            b.total_ms()
                .abs()
                .partial_cmp(&a.total_ms().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        entries
    }

    /// Renders the diagnosis as a Figure 7/8 style text chart: one row per
    /// `(metric, region)` with a severity bucket character per rank
    /// (`.` ≈ 0, then `1`–`4` for quartiles of the largest severity,
    /// `-` for negative values).
    pub fn render_chart(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} ({} ranks)\n", self.trace_name, self.ranks));
        let global_max = self
            .entries
            .values()
            .filter(|e| e.metric.is_wait_state())
            .map(SeverityEntry::max_abs_ms)
            .fold(0.0, f64::max)
            .max(1e-9);
        for entry in self.entries.values() {
            if !entry.metric.is_wait_state() && entry.region != "do_work" {
                continue;
            }
            let scale = if entry.metric.is_wait_state() {
                global_max
            } else {
                entry.max_abs_ms().max(1e-9)
            };
            out.push_str(&format!(
                "{:>3} {:<22} ",
                entry.metric.abbreviation(),
                entry.region
            ));
            for &v in &entry.per_rank_ms {
                let c = if v < -0.01 * scale {
                    '-'
                } else if v.abs() <= 0.02 * scale {
                    '.'
                } else {
                    let bucket = (v / scale * 4.0).ceil().clamp(1.0, 4.0) as u8;
                    char::from(b'0' + bucket)
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnosis {
        let mut d = Diagnosis::new("sample", 4);
        d.add(MetricKind::ExecutionTime, "do_work", 0, 10.0);
        d.add(MetricKind::ExecutionTime, "do_work", 3, 30.0);
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 0, 8.0);
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 1, 4.0);
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 0, 2.0);
        d.add(MetricKind::LateSender, "MPI_Recv", 2, -1.0);
        d
    }

    #[test]
    fn add_accumulates_per_rank() {
        let d = sample();
        assert_eq!(d.severity(MetricKind::WaitAtNxN, "MPI_Alltoall", 0), 10.0);
        assert_eq!(d.severity(MetricKind::WaitAtNxN, "MPI_Alltoall", 1), 4.0);
        assert_eq!(d.severity(MetricKind::WaitAtNxN, "MPI_Alltoall", 2), 0.0);
        assert_eq!(d.severity(MetricKind::WaitAtNxN, "MPI_Barrier", 0), 0.0);
    }

    #[test]
    fn totals_and_significance() {
        let d = sample();
        assert_eq!(d.total_time_ms(), 40.0);
        assert_eq!(d.metric_total_ms(MetricKind::WaitAtNxN), 14.0);
        let significant = d.significant_wait_states(0.1);
        assert_eq!(significant.len(), 1);
        assert_eq!(significant[0].region, "MPI_Alltoall");
        // Lower threshold also picks up the (negative) late-sender entry.
        let all = d.significant_wait_states(0.01);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn normalization_handles_zero_and_scales_to_one() {
        let d = sample();
        let entry = d.entry(MetricKind::WaitAtNxN, "MPI_Alltoall").unwrap();
        let norm = entry.normalized();
        assert_eq!(norm[0], 1.0);
        assert_eq!(norm[1], 0.4);
        let zero = SeverityEntry {
            metric: MetricKind::WaitAtBarrier,
            region: "x".into(),
            per_rank_ms: vec![0.0; 3],
        };
        assert_eq!(zero.normalized(), vec![0.0; 3]);
    }

    #[test]
    fn chart_rendering_marks_negative_and_zero() {
        let d = sample();
        let chart = d.render_chart();
        assert!(chart.contains("NN"), "{chart}");
        assert!(chart.contains("MPI_Alltoall"));
        assert!(
            chart.contains('-'),
            "negative severities must be visible: {chart}"
        );
        assert!(
            chart.contains('.'),
            "zero severities must be visible: {chart}"
        );
    }
}
