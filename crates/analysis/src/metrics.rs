//! The performance metrics (inefficiency patterns) the analysis reports.

use std::fmt;

/// A performance metric reported by the analysis, following KOJAK/EXPERT's
/// pattern hierarchy restricted to the patterns exercised by the paper's
/// benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum MetricKind {
    /// Total (inclusive) execution time of a code location.
    ExecutionTime,
    /// Blocking receive started before the matching send ("Late Sender").
    LateSender,
    /// Synchronous send started before the matching receive
    /// ("Late Receiver").
    LateReceiver,
    /// Root of an N→1 collective arrived before its senders
    /// ("Early Reduce" / "Early Gather").
    EarlyGatherReduce,
    /// Non-root ranks of a 1→N collective arrived before the root
    /// ("Late Broadcast" / "Late Scatter").
    LateBroadcastScatter,
    /// Waiting time at an explicit barrier ("Wait at Barrier").
    WaitAtBarrier,
    /// Waiting time at an N×N collective such as all-to-all or all-reduce
    /// ("Wait at N×N").
    WaitAtNxN,
}

impl MetricKind {
    /// All metrics, in report order.
    pub const ALL: [MetricKind; 7] = [
        MetricKind::ExecutionTime,
        MetricKind::LateSender,
        MetricKind::LateReceiver,
        MetricKind::EarlyGatherReduce,
        MetricKind::LateBroadcastScatter,
        MetricKind::WaitAtBarrier,
        MetricKind::WaitAtNxN,
    ];

    /// Full display name (as KOJAK's CUBE shows it).
    pub fn display_name(self) -> &'static str {
        match self {
            MetricKind::ExecutionTime => "Execution Time",
            MetricKind::LateSender => "Late Sender",
            MetricKind::LateReceiver => "Late Receiver",
            MetricKind::EarlyGatherReduce => "Early Gather/Reduce",
            MetricKind::LateBroadcastScatter => "Late Broadcast/Scatter",
            MetricKind::WaitAtBarrier => "Wait at Barrier",
            MetricKind::WaitAtNxN => "Wait at N x N",
        }
    }

    /// Short abbreviation used in the Figure 4/7/8 style charts
    /// (e.g. `NN` for "Wait at N x N").
    pub fn abbreviation(self) -> &'static str {
        match self {
            MetricKind::ExecutionTime => "T",
            MetricKind::LateSender => "LS",
            MetricKind::LateReceiver => "LR",
            MetricKind::EarlyGatherReduce => "N1",
            MetricKind::LateBroadcastScatter => "1N",
            MetricKind::WaitAtBarrier => "BR",
            MetricKind::WaitAtNxN => "NN",
        }
    }

    /// True for wait-state metrics (everything except execution time).
    pub fn is_wait_state(self) -> bool {
        self != MetricKind::ExecutionTime
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_are_unique() {
        let mut abbrs: Vec<_> = MetricKind::ALL.iter().map(|m| m.abbreviation()).collect();
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), MetricKind::ALL.len());
    }

    #[test]
    fn wait_state_classification() {
        assert!(!MetricKind::ExecutionTime.is_wait_state());
        assert!(MetricKind::WaitAtNxN.is_wait_state());
        assert_eq!(MetricKind::WaitAtNxN.abbreviation(), "NN");
        assert_eq!(format!("{}", MetricKind::LateSender), "Late Sender");
    }
}
