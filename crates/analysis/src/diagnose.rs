//! The analysis driver: from an application trace to a severity matrix.
//!
//! All severities are computed from event time stamps and message/collective
//! matching across ranks — never from simulator ground truth — so the same
//! code analyses full traces and traces reconstructed from reduced ones.
//! Reduction error therefore perturbs the reported severities exactly the
//! way the paper describes, including negative values when per-rank time
//! stamps become mutually inconsistent.
//!
//! Pattern definitions (restricted to what the paper's workloads exercise):
//!
//! * **Late Sender** — for a standard-send/blocking-receive pair, the
//!   receiver's waiting time `send.start − recv.start`, attributed to the
//!   receive location on the receiving rank.
//! * **Late Receiver** — for a synchronous send, the sender's waiting time
//!   `recv.start − send.start`, attributed to the send location on the
//!   sending rank.
//! * **Early Gather/Reduce** — for an N→1 collective, the root's time in the
//!   operation in excess of the last-arriving sender's time.
//! * **Late Broadcast/Scatter** — for a 1→N collective, each non-root rank's
//!   time in the operation in excess of the root's time.
//! * **Wait at Barrier / Wait at N×N** — for an N→N collective, each rank's
//!   time in the operation in excess of the last-arriving rank's time.
//! * **Execution Time** — inclusive time per code location and rank.

use std::collections::HashMap;

use trace_model::{AppTrace, CollectiveOp, CommInfo, Event};

use crate::metrics::MetricKind;
use crate::severity::Diagnosis;

const NS_PER_MS: f64 = 1_000_000.0;

fn ms(ns: f64) -> f64 {
    ns / NS_PER_MS
}

/// Runs the full analysis over an application trace.
pub fn diagnose(app: &AppTrace) -> Diagnosis {
    let mut diagnosis = Diagnosis::new(app.name.clone(), app.rank_count());
    execution_time(app, &mut diagnosis);
    point_to_point(app, &mut diagnosis);
    collectives(app, &mut diagnosis);
    sendrecv_exchanges(app, &mut diagnosis);
    diagnosis
}

/// Inclusive execution time per (region, rank).
fn execution_time(app: &AppTrace, diagnosis: &mut Diagnosis) {
    for (rank_idx, rank) in app.ranks.iter().enumerate() {
        for event in rank.events() {
            let region = app.regions.name_or_unknown(event.region);
            diagnosis.add(
                MetricKind::ExecutionTime,
                region,
                rank_idx,
                ms(event.duration().as_f64()),
            );
        }
    }
}

/// Matches standard sends with blocking receives (and synchronous sends with
/// their receives) and attributes Late Sender / Late Receiver severities.
fn point_to_point(app: &AppTrace, diagnosis: &mut Diagnosis) {
    type Key = (usize, usize, u32); // (sender, receiver, tag)
    let mut sends: HashMap<Key, Vec<&Event>> = HashMap::new();
    let mut recvs: HashMap<Key, Vec<&Event>> = HashMap::new();

    for (rank_idx, rank) in app.ranks.iter().enumerate() {
        for event in rank.events() {
            match event.comm {
                CommInfo::Send { peer, tag, .. } => {
                    sends
                        .entry((rank_idx, peer.as_usize(), tag))
                        .or_default()
                        .push(event);
                }
                CommInfo::Recv { peer, tag, .. } => {
                    recvs
                        .entry((peer.as_usize(), rank_idx, tag))
                        .or_default()
                        .push(event);
                }
                _ => {}
            }
        }
    }

    for (key, send_events) in &sends {
        let Some(recv_events) = recvs.get(key) else {
            continue;
        };
        let (sender, receiver, _tag) = *key;
        for (send, recv) in send_events.iter().zip(recv_events) {
            let send_region = app.regions.name_or_unknown(send.region);
            let recv_region = app.regions.name_or_unknown(recv.region);
            let skew_ms = ms(send.start.as_f64() - recv.start.as_f64());
            if send_region.contains("Ssend") {
                // Synchronous send: the sender blocks on a late receiver.
                diagnosis.add(MetricKind::LateReceiver, send_region, sender, -skew_ms);
            } else {
                // Standard send with a blocking receive: the receiver blocks
                // on a late sender.
                diagnosis.add(MetricKind::LateSender, recv_region, receiver, skew_ms);
            }
        }
    }
}

/// Groups collective events by (operation, root, communicator size) and
/// instance index, and attributes the per-pattern waiting times.
fn collectives(app: &AppTrace, diagnosis: &mut Diagnosis) {
    type Key = (CollectiveOp, u32, u32); // (op, root, comm_size)
                                         // key -> per-rank ordered list of events
    let mut groups: HashMap<Key, Vec<Vec<&Event>>> = HashMap::new();
    for (rank_idx, rank) in app.ranks.iter().enumerate() {
        for event in rank.events() {
            if let CommInfo::Collective {
                op,
                root,
                comm_size,
                ..
            } = event.comm
            {
                let entry = groups
                    .entry((op, root.as_u32(), comm_size))
                    .or_insert_with(|| vec![Vec::new(); app.rank_count()]);
                entry[rank_idx].push(event);
            }
        }
    }

    for ((op, root, _comm_size), per_rank) in &groups {
        let root = *root as usize;
        let instances = per_rank.iter().map(Vec::len).max().unwrap_or(0);
        for instance in 0..instances {
            // Participants of this instance: (rank, event).
            let participants: Vec<(usize, &Event)> = per_rank
                .iter()
                .enumerate()
                .filter_map(|(rank, events)| events.get(instance).map(|e| (rank, *e)))
                .collect();
            if participants.len() < 2 {
                continue;
            }
            // The reference is the rank that entered the operation last: by
            // construction it does not wait, so every other rank's waiting
            // time is its own duration in excess of the reference duration.
            let latest = participants
                .iter()
                .max_by_key(|(_, e)| e.start)
                .expect("non-empty participants");
            let reference_duration = latest.1.duration().as_f64();
            let root_duration = participants
                .iter()
                .find(|(rank, _)| *rank == root)
                .map(|(_, e)| e.duration().as_f64());

            for (rank, event) in &participants {
                let region = app.regions.name_or_unknown(event.region);
                let own = event.duration().as_f64();
                if op.is_n_to_n() {
                    let metric = if *op == CollectiveOp::Barrier {
                        MetricKind::WaitAtBarrier
                    } else {
                        MetricKind::WaitAtNxN
                    };
                    diagnosis.add(metric, region, *rank, ms(own - reference_duration));
                } else if op.is_n_to_one() {
                    if *rank == root {
                        diagnosis.add(
                            MetricKind::EarlyGatherReduce,
                            region,
                            *rank,
                            ms(own - reference_duration),
                        );
                    }
                } else if op.is_one_to_n() && *rank != root {
                    if let Some(root_duration) = root_duration {
                        diagnosis.add(
                            MetricKind::LateBroadcastScatter,
                            region,
                            *rank,
                            ms(own - root_duration),
                        );
                    }
                }
            }
        }
    }
}

/// Pairwise `MPI_Sendrecv` exchanges behave like a two-rank N×N operation.
fn sendrecv_exchanges(app: &AppTrace, diagnosis: &mut Diagnosis) {
    type Key = (usize, usize, u32); // (low rank, high rank, tag)
    let mut groups: HashMap<Key, Vec<Vec<&Event>>> = HashMap::new();
    for (rank_idx, rank) in app.ranks.iter().enumerate() {
        for event in rank.events() {
            if let CommInfo::SendRecv { to, tag, .. } = event.comm {
                let peer = to.as_usize();
                let key = (rank_idx.min(peer), rank_idx.max(peer), tag);
                let entry = groups.entry(key).or_insert_with(|| vec![Vec::new(); 2]);
                let slot = usize::from(rank_idx != rank_idx.min(peer));
                entry[slot].push(event);
            }
        }
    }
    for ((low, high, _tag), slots) in &groups {
        // Unmatched trailing instances are dropped, as zip stops at the
        // shorter side.
        for (&a, &b) in slots[0].iter().zip(slots[1].iter()) {
            let reference = if a.start >= b.start { a } else { b };
            for (rank, event) in [(*low, a), (*high, b)] {
                let region = app.regions.name_or_unknown(event.region);
                diagnosis.add(
                    MetricKind::WaitAtNxN,
                    region,
                    rank,
                    ms(event.duration().as_f64() - reference.duration().as_f64()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_sim::ats::{self, RegularParams};
    use trace_sim::dynload::{dyn_load_balance, DynLoadParams};
    use trace_sim::sweep3d::{sweep3d, Sweep3dParams};

    fn params() -> RegularParams {
        RegularParams::small()
    }

    #[test]
    fn late_sender_is_diagnosed_at_the_receive() {
        let app = ats::late_sender(&params());
        let d = diagnose(&app);
        let entry = d
            .entry(MetricKind::LateSender, "MPI_Recv")
            .expect("late sender entry");
        // Receivers are the odd ranks.
        assert!(entry.per_rank_ms[1] > 1.0);
        assert!(entry.per_rank_ms[0].abs() < 1e-6);
        // No significant late-receiver diagnosis.
        assert!(d.metric_total_ms(MetricKind::LateReceiver).abs() < 1e-6);
    }

    #[test]
    fn late_receiver_is_diagnosed_at_the_synchronous_send() {
        let app = ats::late_receiver(&params());
        let d = diagnose(&app);
        let entry = d
            .entry(MetricKind::LateReceiver, "MPI_Ssend")
            .expect("late receiver entry");
        assert!(entry.per_rank_ms[0] > 1.0, "{:?}", entry.per_rank_ms);
        assert!(entry.per_rank_ms[1].abs() < 1e-6);
        assert!(d.metric_total_ms(MetricKind::LateSender).abs() < 1e-6);
    }

    #[test]
    fn early_gather_is_diagnosed_at_the_root() {
        let app = ats::early_gather(&params());
        let d = diagnose(&app);
        let entry = d
            .entry(MetricKind::EarlyGatherReduce, "MPI_Gather")
            .expect("early gather entry");
        assert!(entry.per_rank_ms[0] > 1.0);
        for rank in 1..app.rank_count() {
            assert!(entry.per_rank_ms[rank].abs() < 1e-6);
        }
    }

    #[test]
    fn late_broadcast_is_diagnosed_at_the_receivers() {
        let app = ats::late_broadcast(&params());
        let d = diagnose(&app);
        let entry = d
            .entry(MetricKind::LateBroadcastScatter, "MPI_Bcast")
            .expect("late broadcast entry");
        assert!(entry.per_rank_ms[0].abs() < 1e-6, "root does not wait");
        assert!(entry.per_rank_ms[1] > 1.0);
    }

    #[test]
    fn barrier_imbalance_is_diagnosed_with_rank_gradient() {
        let p = params();
        let app = ats::imbalance_at_mpi_barrier(&p);
        let d = diagnose(&app);
        let entry = d
            .entry(MetricKind::WaitAtBarrier, "MPI_Barrier")
            .expect("barrier entry");
        // Rank 0 does the least work so it waits the most; the last rank
        // effectively does not wait.
        assert!(entry.per_rank_ms[0] > entry.per_rank_ms[p.ranks - 1] + 1.0);
        assert!(entry.per_rank_ms[p.ranks - 1].abs() < 0.5);
        // On a consistent full trace the waits are non-negative.
        assert!(entry.per_rank_ms.iter().all(|&v| v > -1e-6));
    }

    #[test]
    fn dyn_load_balance_shows_wait_at_nxn_for_lower_ranks() {
        let p = DynLoadParams::paper();
        let app = dyn_load_balance(&p);
        let d = diagnose(&app);
        let wait = d
            .entry(MetricKind::WaitAtNxN, "MPI_Alltoall")
            .expect("alltoall entry");
        let work = d
            .entry(MetricKind::ExecutionTime, "do_work")
            .expect("work entry");
        // The paper's Figure 7: lower ranks wait in MPI_Alltoall because the
        // upper ranks spend more time in do_work.
        assert!(wait.per_rank_ms[0] > wait.per_rank_ms[p.ranks - 1] + 1.0);
        assert!(work.per_rank_ms[p.ranks - 1] > work.per_rank_ms[0] + 1.0);
    }

    #[test]
    fn sweep3d_shows_late_sender_in_the_pipeline() {
        let app = sweep3d("sweep3d_test", &Sweep3dParams::small());
        let d = diagnose(&app);
        let entry = d
            .entry(MetricKind::LateSender, "MPI_Recv")
            .expect("pipeline waits");
        assert!(entry.total_ms() > 0.1);
    }

    #[test]
    fn execution_time_covers_every_region() {
        let app = ats::late_sender(&params());
        let d = diagnose(&app);
        for region in app.regions.names() {
            assert!(
                d.entry(MetricKind::ExecutionTime, region).is_some(),
                "missing execution time for {region}"
            );
        }
        let total = d.total_time_ms();
        let expected: f64 = app
            .ranks
            .iter()
            .flat_map(|rt| rt.events())
            .map(|e| e.duration().as_f64() / 1_000_000.0)
            .sum();
        assert!((total - expected).abs() < 1e-6);
    }

    #[test]
    fn full_trace_wait_severities_match_simulator_ground_truth() {
        // The analysis recomputes waits from time stamps; on the original
        // trace they must agree with the wait the simulator recorded.
        let app = ats::early_gather(&params());
        let d = diagnose(&app);
        let gather = app.regions.lookup("MPI_Gather").unwrap();
        let ground_truth_ms: f64 = app.ranks[0]
            .events()
            .filter(|e| e.region == gather)
            .map(|e| e.wait.as_f64() / 1_000_000.0)
            .sum();
        let diagnosed = d.severity(MetricKind::EarlyGatherReduce, "MPI_Gather", 0);
        let relative_error = (diagnosed - ground_truth_ms).abs() / ground_truth_ms.max(1e-9);
        assert!(
            relative_error < 0.05,
            "diagnosed {diagnosed} vs ground truth {ground_truth_ms}"
        );
    }
}
