//! Trend-retention comparison between two diagnoses.
//!
//! The paper's most important evaluation criterion asks whether an analyst
//! looking at the reduced trace's diagnosis would come to the same
//! conclusions as with the full trace (Section 4.3.4).  The paper applies a
//! fixed set of guidelines by hand; this module encodes equivalent
//! guidelines so every method is judged by the same rules:
//!
//! 1. every significant wait-state finding of the full trace must still be
//!    significant in the reduced trace, with a total severity of the same
//!    sign and comparable magnitude;
//! 2. the *rank pattern* of each significant finding must be preserved (the
//!    ranks that dominate the severity must still dominate);
//! 3. the reduced trace must not introduce new significant findings (or
//!    significant negative severities) that the full trace does not show;
//! 4. strongly imbalanced execution-time distributions (e.g. `do_work` in
//!    `dyn_load_balance`) must keep their imbalance direction.

use crate::metrics::MetricKind;
use crate::severity::{Diagnosis, SeverityEntry};

/// Tunable thresholds for the trend comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComparisonConfig {
    /// A wait-state finding is *significant* when its total magnitude
    /// exceeds this fraction of total execution time.
    pub significance_fraction: f64,
    /// Allowed relative deviation of a significant finding's total severity.
    pub magnitude_tolerance: f64,
    /// Maximum allowed mean absolute difference between the normalized
    /// per-rank severity patterns of a finding.
    pub pattern_tolerance: f64,
    /// A new finding (absent from the full trace) is only an error when its
    /// magnitude exceeds this fraction of total execution time.
    pub spurious_fraction: f64,
}

impl Default for ComparisonConfig {
    fn default() -> Self {
        ComparisonConfig {
            significance_fraction: 0.02,
            magnitude_tolerance: 0.5,
            pattern_tolerance: 0.25,
            spurious_fraction: 0.05,
        }
    }
}

/// One discrepancy between the reference and candidate diagnoses.
#[derive(Clone, Debug, PartialEq)]
pub struct Discrepancy {
    /// The metric and code location concerned.
    pub metric: MetricKind,
    /// Code location (region name).
    pub region: String,
    /// Human-readable description of what differs.
    pub description: String,
}

/// The outcome of comparing a candidate (reduced/reconstructed) diagnosis to
/// the reference (full-trace) diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendComparison {
    /// True when an analyst would reach the same conclusions.
    pub retained: bool,
    /// A score in `[0, 1]`: the fraction of checks that passed.
    pub score: f64,
    /// Everything that differed beyond tolerance.
    pub discrepancies: Vec<Discrepancy>,
}

fn pattern_distance(a: &SeverityEntry, b: &SeverityEntry) -> f64 {
    let na = a.normalized();
    let nb = b.normalized();
    if na.is_empty() {
        return 0.0;
    }
    na.iter().zip(&nb).map(|(x, y)| (x - y).abs()).sum::<f64>() / na.len() as f64
}

/// Compares a candidate diagnosis against the reference diagnosis.
pub fn compare_diagnoses(
    reference: &Diagnosis,
    candidate: &Diagnosis,
    config: &ComparisonConfig,
) -> TrendComparison {
    let mut checks = 0usize;
    let mut passed = 0usize;
    let mut discrepancies = Vec::new();
    let total_time = reference.total_time_ms().max(1e-9);

    // 1 & 2: every significant reference finding must be retained with the
    // same sign, comparable magnitude, and a similar rank pattern.
    for entry in reference.significant_wait_states(config.significance_fraction) {
        let candidate_entry = candidate.entry(entry.metric, &entry.region);
        // Sign and magnitude.
        checks += 1;
        let ref_total = entry.total_ms();
        let cand_total = candidate_entry.map(SeverityEntry::total_ms).unwrap_or(0.0);
        let magnitude_ok = cand_total.signum() == ref_total.signum()
            && (cand_total - ref_total).abs()
                <= config.magnitude_tolerance * ref_total.abs()
                    + config.significance_fraction * total_time;
        if magnitude_ok {
            passed += 1;
        } else {
            discrepancies.push(Discrepancy {
                metric: entry.metric,
                region: entry.region.clone(),
                description: format!(
                    "total severity changed from {ref_total:.2}ms to {cand_total:.2}ms"
                ),
            });
        }
        // Rank pattern.
        checks += 1;
        match candidate_entry {
            Some(cand) => {
                let distance = pattern_distance(entry, cand);
                if distance <= config.pattern_tolerance {
                    passed += 1;
                } else {
                    discrepancies.push(Discrepancy {
                        metric: entry.metric,
                        region: entry.region.clone(),
                        description: format!(
                            "per-rank severity pattern changed (mean abs diff {distance:.2})"
                        ),
                    });
                }
            }
            None => discrepancies.push(Discrepancy {
                metric: entry.metric,
                region: entry.region.clone(),
                description: "finding disappeared from the reduced trace".into(),
            }),
        }
    }

    // 3: no significant spurious findings (including large negative ones).
    for entry in candidate.significant_wait_states(config.spurious_fraction) {
        let in_reference = reference
            .significant_wait_states(config.significance_fraction)
            .iter()
            .any(|r| r.metric == entry.metric && r.region == entry.region);
        checks += 1;
        if in_reference {
            passed += 1;
        } else {
            discrepancies.push(Discrepancy {
                metric: entry.metric,
                region: entry.region.clone(),
                description: format!(
                    "spurious finding with total severity {:.2}ms not present in the full trace",
                    entry.total_ms()
                ),
            });
        }
    }

    // 4: strongly imbalanced execution-time distributions keep their shape.
    for ((metric, region), entry) in &reference.entries {
        if *metric != MetricKind::ExecutionTime {
            continue;
        }
        let max = entry.per_rank_ms.iter().copied().fold(f64::MIN, f64::max);
        let min = entry.per_rank_ms.iter().copied().fold(f64::MAX, f64::min);
        let imbalanced = max > 1.5 * min.max(1e-9) && max > 0.05 * total_time;
        if !imbalanced {
            continue;
        }
        checks += 1;
        match candidate.entry(*metric, region) {
            Some(cand) => {
                let distance = pattern_distance(entry, cand);
                if distance <= config.pattern_tolerance {
                    passed += 1;
                } else {
                    discrepancies.push(Discrepancy {
                        metric: *metric,
                        region: region.clone(),
                        description: format!(
                            "execution-time imbalance pattern changed (mean abs diff {distance:.2})"
                        ),
                    });
                }
            }
            None => discrepancies.push(Discrepancy {
                metric: *metric,
                region: region.clone(),
                description: "code location disappeared from the reduced trace".into(),
            }),
        }
    }

    let score = if checks == 0 {
        1.0
    } else {
        passed as f64 / checks as f64
    };
    TrendComparison {
        retained: discrepancies.is_empty(),
        score,
        discrepancies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference() -> Diagnosis {
        let mut d = Diagnosis::new("ref", 4);
        for rank in 0..4 {
            d.add(MetricKind::ExecutionTime, "do_work", rank, 100.0);
        }
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 0, 40.0);
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 1, 30.0);
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 2, 5.0);
        d.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 3, 1.0);
        d
    }

    #[test]
    fn identical_diagnoses_are_retained() {
        let r = reference();
        let cmp = compare_diagnoses(&r, &r.clone(), &ComparisonConfig::default());
        assert!(cmp.retained);
        assert_eq!(cmp.score, 1.0);
        assert!(cmp.discrepancies.is_empty());
    }

    #[test]
    fn small_perturbations_are_tolerated() {
        let r = reference();
        let mut c = r.clone();
        c.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 0, 5.0);
        c.add(MetricKind::WaitAtNxN, "MPI_Alltoall", 3, 2.0);
        let cmp = compare_diagnoses(&r, &c, &ComparisonConfig::default());
        assert!(cmp.retained, "{:?}", cmp.discrepancies);
    }

    #[test]
    fn lost_finding_is_detected() {
        let r = reference();
        let mut c = Diagnosis::new("cand", 4);
        for rank in 0..4 {
            c.add(MetricKind::ExecutionTime, "do_work", rank, 100.0);
        }
        let cmp = compare_diagnoses(&r, &c, &ComparisonConfig::default());
        assert!(!cmp.retained);
        assert!(cmp.score < 1.0);
        assert!(cmp
            .discrepancies
            .iter()
            .any(|d| d.description.contains("disappeared") || d.description.contains("changed")));
    }

    #[test]
    fn flipped_rank_pattern_is_detected() {
        let r = reference();
        let mut c = reference();
        // Swap the waiting ranks: now ranks 2 and 3 wait instead of 0 and 1.
        let entry = c
            .entries
            .get_mut(&(MetricKind::WaitAtNxN, "MPI_Alltoall".to_owned()))
            .unwrap();
        entry.per_rank_ms = vec![1.0, 5.0, 30.0, 40.0];
        let cmp = compare_diagnoses(&r, &c, &ComparisonConfig::default());
        assert!(!cmp.retained);
    }

    #[test]
    fn spurious_negative_finding_is_detected() {
        let r = reference();
        let mut c = reference();
        c.add(MetricKind::LateSender, "MPI_Recv", 2, -60.0);
        let cmp = compare_diagnoses(&r, &c, &ComparisonConfig::default());
        assert!(!cmp.retained);
        assert!(cmp
            .discrepancies
            .iter()
            .any(|d| d.metric == MetricKind::LateSender));
    }

    #[test]
    fn sign_flip_of_a_finding_is_detected() {
        let r = reference();
        let mut c = reference();
        let entry = c
            .entries
            .get_mut(&(MetricKind::WaitAtNxN, "MPI_Alltoall".to_owned()))
            .unwrap();
        entry.per_rank_ms = vec![-40.0, -30.0, -5.0, -1.0];
        let cmp = compare_diagnoses(&r, &c, &ComparisonConfig::default());
        assert!(!cmp.retained);
    }

    #[test]
    fn lost_execution_time_imbalance_is_detected() {
        let mut r = reference();
        // Make do_work strongly imbalanced in the reference.
        let entry = r
            .entries
            .get_mut(&(MetricKind::ExecutionTime, "do_work".to_owned()))
            .unwrap();
        entry.per_rank_ms = vec![50.0, 50.0, 200.0, 200.0];
        let mut c = r.clone();
        let centry = c
            .entries
            .get_mut(&(MetricKind::ExecutionTime, "do_work".to_owned()))
            .unwrap();
        centry.per_rank_ms = vec![125.0, 125.0, 125.0, 125.0];
        let cmp = compare_diagnoses(&r, &c, &ComparisonConfig::default());
        assert!(!cmp.retained);
        assert!(cmp
            .discrepancies
            .iter()
            .any(|d| d.metric == MetricKind::ExecutionTime));
    }
}
