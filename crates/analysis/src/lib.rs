#![forbid(unsafe_code)]
//! EXPERT/CUBE-style automatic performance analysis.
//!
//! The paper evaluates *retention of performance trends* by feeding both the
//! full trace and the trace reconstructed from a reduced trace into the
//! KOJAK tool set (EXPERT analysis + CUBE visualization) and checking that
//! an analyst would reach the same conclusions.  This crate plays the role
//! of KOJAK:
//!
//! * [`metrics::MetricKind`] — the wait-state patterns relevant to the
//!   paper's benchmarks (Late Sender, Late Receiver, Early Gather/Reduce,
//!   Late Broadcast/Scatter, Wait at Barrier, Wait at N×N) plus plain
//!   execution time.
//! * [`mod@diagnose`] — computes a per-(metric, code location, rank) severity
//!   matrix from event time stamps alone, by matching point-to-point
//!   messages and collective instances across ranks.  Because severities
//!   are derived from time stamps (not from any simulator ground truth),
//!   time-stamp error introduced by a reduction method shows up exactly the
//!   way the paper describes — including *negative* severities when time
//!   stamps are skewed.
//! * [`severity`] — the severity grid (CUBE-like view) and its text
//!   rendering, mirroring the charts of Figures 4, 7 and 8.
//! * [`compare`] — the trend-retention test: given the diagnosis of the
//!   full trace and of a reconstructed trace, decide whether the reduced
//!   trace still supports the same performance conclusions.

#![warn(missing_docs)]

pub mod compare;
pub mod diagnose;
pub mod metrics;
pub mod severity;

pub use compare::{compare_diagnoses, ComparisonConfig, TrendComparison};
pub use diagnose::diagnose;
pub use metrics::MetricKind;
pub use severity::{Diagnosis, SeverityEntry};
