//! The trace-confidence evaluation measure (Gamblin et al.).
//!
//! Gamblin et al. evaluate sampled traces with a *confidence* measure: the
//! percentage of time the mean trace of the sampled processes stays within a
//! specified error bound of the mean trace of the full data.  This module
//! implements that measure over the workspace's trace model so it can be
//! reported alongside the paper's four criteria for any reduction method
//! (similarity-based, sampling-based, or clustering-based).

use trace_model::{stats, AppTrace};

/// The result of a trace-confidence comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfidenceReport {
    /// Fraction of compared time stamps whose absolute error is within the
    /// bound, in `[0, 1]`.
    pub timestamp_confidence: f64,
    /// Fraction of positions where the cross-rank *mean* time stamp of the
    /// approximated trace is within the bound of the full trace's mean.
    pub mean_trace_confidence: f64,
    /// The error bound that was used, in microseconds.
    pub error_bound_us: f64,
    /// Number of time stamps compared.
    pub compared: usize,
}

impl ConfidenceReport {
    /// True if both confidence values reach `level` (e.g. 0.95).
    pub fn meets(&self, level: f64) -> bool {
        self.timestamp_confidence >= level && self.mean_trace_confidence >= level
    }
}

/// Per-position mean of the rank time-stamp vectors, truncated to the
/// shortest rank (ranks usually have identical event counts).
fn mean_timestamp_vector(app: &AppTrace) -> Vec<f64> {
    let vectors: Vec<Vec<f64>> = app
        .ranks
        .iter()
        .map(|r| r.timestamp_vector().iter().map(|t| t.as_f64()).collect())
        .collect();
    let min_len = vectors.iter().map(Vec::len).min().unwrap_or(0);
    (0..min_len)
        .map(|i| stats::mean(&vectors.iter().map(|v| v[i]).collect::<Vec<_>>()))
        .collect()
}

/// Computes the trace confidence of `approximated` against `full` with the
/// given absolute error bound in microseconds.
pub fn trace_confidence(
    full: &AppTrace,
    approximated: &AppTrace,
    error_bound_us: f64,
) -> ConfidenceReport {
    let bound_ns = error_bound_us * 1_000.0;
    let mut within = 0usize;
    let mut compared = 0usize;
    for (full_rank, approx_rank) in full.ranks.iter().zip(&approximated.ranks) {
        let a = full_rank.timestamp_vector();
        let b = approx_rank.timestamp_vector();
        for (x, y) in a.iter().zip(&b) {
            compared += 1;
            if x.abs_diff(*y).as_f64() <= bound_ns {
                within += 1;
            }
        }
        // Any missing trailing time stamps count as out of bound.
        compared += a.len().abs_diff(b.len());
    }
    let timestamp_confidence = if compared == 0 {
        1.0
    } else {
        within as f64 / compared as f64
    };

    let full_mean = mean_timestamp_vector(full);
    let approx_mean = mean_timestamp_vector(approximated);
    let positions = full_mean.len().min(approx_mean.len());
    let mean_within = (0..positions)
        .filter(|&i| (full_mean[i] - approx_mean[i]).abs() <= bound_ns)
        .count();
    let denom = full_mean.len().max(approx_mean.len());
    let mean_trace_confidence = if denom == 0 {
        1.0
    } else {
        mean_within as f64 / denom as f64
    };

    ConfidenceReport {
        timestamp_confidence,
        mean_trace_confidence,
        error_bound_us,
        compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sample_app, SamplingPolicy};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn identical_traces_have_full_confidence() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let report = trace_confidence(&app, &app, 0.0);
        assert_eq!(report.timestamp_confidence, 1.0);
        assert_eq!(report.mean_trace_confidence, 1.0);
        assert!(report.meets(1.0));
        assert!(report.compared > 0);
    }

    #[test]
    fn empty_traces_are_trivially_confident() {
        let empty = AppTrace::new("empty", 0);
        let report = trace_confidence(&empty, &empty, 1.0);
        assert_eq!(report.compared, 0);
        assert_eq!(report.timestamp_confidence, 1.0);
        assert_eq!(report.mean_trace_confidence, 1.0);
    }

    #[test]
    fn confidence_grows_with_the_error_bound() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let approx = sample_app(&app, SamplingPolicy::EveryNth(8)).reconstruct();
        let tight = trace_confidence(&app, &approx, 1.0);
        let loose = trace_confidence(&app, &approx, 100_000.0);
        assert!(loose.timestamp_confidence >= tight.timestamp_confidence);
        assert!(loose.mean_trace_confidence >= tight.mean_trace_confidence);
    }

    #[test]
    fn finer_sampling_is_at_least_as_confident_as_coarser_sampling() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let bound_us = 50.0;
        let fine = sample_app(&app, SamplingPolicy::EveryNth(2)).reconstruct();
        let coarse = sample_app(&app, SamplingPolicy::EveryNth(16)).reconstruct();
        let fine_conf = trace_confidence(&app, &fine, bound_us);
        let coarse_conf = trace_confidence(&app, &coarse, bound_us);
        assert!(
            fine_conf.timestamp_confidence >= coarse_conf.timestamp_confidence,
            "fine {} should be >= coarse {}",
            fine_conf.timestamp_confidence,
            coarse_conf.timestamp_confidence
        );
    }

    #[test]
    fn lossless_sampling_keeps_full_confidence_at_zero_bound() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let approx = sample_app(&app, SamplingPolicy::EveryNth(1)).reconstruct();
        let report = trace_confidence(&app, &approx, 0.0);
        assert_eq!(report.timestamp_confidence, 1.0);
    }
}
