//! Sampling policies: which segment instances to retain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adaptive::AdaptiveConfig;

/// Decides which segment instances of a pattern are retained in full.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SamplingPolicy {
    /// Keep every `n`-th instance of each segment pattern (1-based: `n = 1`
    /// keeps everything).  This is the "trace a reduced number of loop
    /// iterations" ad-hoc practice the paper's introduction describes.
    EveryNth(usize),
    /// Keep each instance independently with probability `fraction`
    /// (Vetter-style statistical sampling applied at segment granularity).
    /// The first instance of every pattern is always kept so reconstruction
    /// has a representative to fall back on.
    Random {
        /// Probability of retaining an instance, in `[0, 1]`.
        fraction: f64,
        /// RNG seed; the same seed always samples the same instances.
        seed: u64,
    },
    /// Keep instances of a pattern until the 95% confidence interval of the
    /// mean segment duration is narrower than `config.relative_error` of the
    /// running mean, then stop (Gamblin et al., IPDPS'08).
    Adaptive(AdaptiveConfig),
}

impl SamplingPolicy {
    /// Short label used in reports, e.g. `every4`, `random(0.25)`,
    /// `adaptive(0.05)`.
    pub fn label(&self) -> String {
        match self {
            SamplingPolicy::EveryNth(n) => format!("every{n}"),
            SamplingPolicy::Random { fraction, .. } => format!("random({fraction})"),
            SamplingPolicy::Adaptive(cfg) => format!("adaptive({})", cfg.relative_error),
        }
    }

    /// True if the policy is deterministic for a given trace (no RNG).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, SamplingPolicy::Random { .. })
    }
}

/// Per-rank sampling state: one decision stream per policy.
pub(crate) struct PolicyState {
    policy: SamplingPolicy,
    rng: Option<StdRng>,
}

impl PolicyState {
    pub(crate) fn new(policy: SamplingPolicy, rank: u32) -> Self {
        let rng = match policy {
            SamplingPolicy::Random { seed, .. } => {
                // Derive a distinct, deterministic stream per rank.
                Some(StdRng::seed_from_u64(
                    seed ^ (u64::from(rank) << 32 | 0x9e37_79b9),
                ))
            }
            _ => None,
        };
        PolicyState { policy, rng }
    }

    /// Decides whether to keep the `index`-th instance (0-based) of a
    /// pattern.  `accumulator_satisfied` reports whether the adaptive
    /// confidence target for that pattern has already been reached.
    pub(crate) fn keep(&mut self, index: usize, accumulator_satisfied: bool) -> bool {
        match self.policy {
            SamplingPolicy::EveryNth(n) => index.is_multiple_of(n.max(1)),
            SamplingPolicy::Random { fraction, .. } => {
                if index == 0 {
                    return true;
                }
                let rng = self.rng.as_mut().expect("random policy has an RNG");
                rng.gen::<f64>() < fraction.clamp(0.0, 1.0)
            }
            SamplingPolicy::Adaptive(_) => !accumulator_satisfied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(SamplingPolicy::EveryNth(4).label(), "every4");
        assert_eq!(
            SamplingPolicy::Random {
                fraction: 0.25,
                seed: 7
            }
            .label(),
            "random(0.25)"
        );
        assert_eq!(
            SamplingPolicy::Adaptive(AdaptiveConfig::default()).label(),
            "adaptive(0.05)"
        );
    }

    #[test]
    fn every_nth_keeps_the_expected_indices() {
        let mut state = PolicyState::new(SamplingPolicy::EveryNth(3), 0);
        let kept: Vec<bool> = (0..7).map(|i| state.keep(i, false)).collect();
        assert_eq!(kept, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn every_zero_is_treated_as_every_one() {
        let mut state = PolicyState::new(SamplingPolicy::EveryNth(0), 0);
        assert!((0..5).all(|i| state.keep(i, false)));
    }

    #[test]
    fn random_always_keeps_the_first_instance_and_is_seed_deterministic() {
        let policy = SamplingPolicy::Random {
            fraction: 0.5,
            seed: 42,
        };
        let decisions = |rank: u32| -> Vec<bool> {
            let mut state = PolicyState::new(policy, rank);
            (0..64).map(|i| state.keep(i, false)).collect()
        };
        let a = decisions(3);
        let b = decisions(3);
        assert_eq!(a, b, "same seed and rank must sample identically");
        assert!(a[0], "first instance is always kept");
        let other_rank = decisions(4);
        assert_ne!(a, other_rank, "different ranks use different streams");
    }

    #[test]
    fn random_fraction_bounds() {
        let mut none = PolicyState::new(
            SamplingPolicy::Random {
                fraction: 0.0,
                seed: 1,
            },
            0,
        );
        assert!(none.keep(0, false));
        assert!((1..32).all(|i| !none.keep(i, false)));
        let mut all = PolicyState::new(
            SamplingPolicy::Random {
                fraction: 1.0,
                seed: 1,
            },
            0,
        );
        assert!((0..32).all(|i| all.keep(i, false)));
    }

    #[test]
    fn adaptive_keeps_until_the_accumulator_is_satisfied() {
        let mut state = PolicyState::new(SamplingPolicy::Adaptive(AdaptiveConfig::default()), 0);
        assert!(state.keep(0, false));
        assert!(state.keep(5, false));
        assert!(!state.keep(6, true));
    }

    #[test]
    fn determinism_classification() {
        assert!(SamplingPolicy::EveryNth(2).is_deterministic());
        assert!(SamplingPolicy::Adaptive(AdaptiveConfig::default()).is_deterministic());
        assert!(!SamplingPolicy::Random {
            fraction: 0.1,
            seed: 0
        }
        .is_deterministic());
    }
}
