//! Dynamic periodicity detection (Freitag et al.).
//!
//! Freitag et al. detect repeating sequences of events at run time and keep a
//! reduced number of iterations of each detected sequence.  Applied to the
//! segment stream of this workspace: the per-rank sequence of segment
//! *contexts* is analysed for its dominant period, and only the first
//! `keep_periods` repetitions of the periodic portion are retained in full;
//! later repetitions are filled in from the corresponding position of the
//! last retained repetition.

use std::collections::HashMap;

use trace_model::{
    AppTrace, ContextId, RankTrace, ReducedAppTrace, ReducedRankTrace, SegmentExec, StoredSegment,
    Time,
};
use trace_reduce::segmenter::segments_of_rank;

/// Configuration of the periodicity-based reducer.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PeriodicityConfig {
    /// How many repetitions of the detected period to keep in full.
    pub keep_periods: usize,
    /// Longest period (in segments) the detector will consider.
    pub max_period: usize,
    /// Minimum fraction of positions that must repeat for a candidate period
    /// to be accepted (1.0 = perfectly periodic).
    pub min_match_fraction: f64,
}

impl Default for PeriodicityConfig {
    fn default() -> Self {
        PeriodicityConfig {
            keep_periods: 2,
            max_period: 64,
            min_match_fraction: 0.9,
        }
    }
}

/// Detects the dominant period of a symbol sequence.
///
/// A candidate period `p` is scored by the fraction of positions `i` with
/// `seq[i] == seq[i + p]`; the smallest period whose score reaches
/// `min_match_fraction` wins.  Returns `None` for sequences that are too
/// short (fewer than two repetitions of any candidate) or not periodic.
pub fn detect_period<T: PartialEq>(
    sequence: &[T],
    max_period: usize,
    min_match_fraction: f64,
) -> Option<usize> {
    if sequence.len() < 2 {
        return None;
    }
    let longest = max_period.min(sequence.len() / 2).max(1);
    for period in 1..=longest {
        let comparisons = sequence.len() - period;
        if comparisons == 0 {
            continue;
        }
        let matches = (0..comparisons)
            .filter(|&i| sequence[i] == sequence[i + period])
            .count();
        if matches as f64 / comparisons as f64 >= min_match_fraction {
            return Some(period);
        }
    }
    None
}

/// Reduces one rank trace by periodicity: detect the dominant period of the
/// segment-context sequence, keep the first `keep_periods` repetitions in
/// full, and map later repetitions onto the corresponding position of the
/// last retained repetition.  Falls back to keeping everything when no
/// period is detected.
///
/// An instance beyond the keep window is only mapped onto a retained
/// instance with the same structural key (same context, events and call
/// parameters); instances that do not line up — a ragged tail, a phase
/// change, or a disturbed iteration with extra events — are stored in full,
/// so the reconstruction always preserves the event structure of the
/// original trace.
pub fn reduce_rank_by_periodicity(
    trace: &RankTrace,
    config: &PeriodicityConfig,
) -> ReducedRankTrace {
    let segments = segments_of_rank(trace);
    let contexts: Vec<ContextId> = segments.iter().map(|s| s.context).collect();
    let period = detect_period(&contexts, config.max_period, config.min_match_fraction);

    let mut reduced = ReducedRankTrace::new(trace.rank);
    // Representative id for each (repetition offset), used to fill in
    // instances beyond the keep window.
    let mut fill_by_offset: HashMap<usize, u32> = HashMap::new();

    for (index, segment) in segments.into_iter().enumerate() {
        let start = segment.start;
        let keep = match period {
            Some(p) => {
                let repetition = index / p;
                repetition < config.keep_periods.max(1)
            }
            None => true,
        };

        // Reuse the retained instance at the same offset within the period,
        // but only if it is structurally identical to this instance.
        let reuse = if keep {
            None
        } else {
            let p = period.expect("instances are only skipped when a period was detected");
            fill_by_offset
                .get(&(index % p))
                .copied()
                .filter(|&id| reduced.stored[id as usize].segment.key() == segment.key())
        };

        match reuse {
            Some(id) => {
                reduced.stored[id as usize].represented += 1;
                reduced.execs.push(SegmentExec { segment: id, start });
            }
            None => {
                let id = reduced.stored.len() as u32;
                if let Some(p) = period {
                    fill_by_offset.insert(index % p, id);
                }
                let mut stored_segment = segment;
                stored_segment.start = Time::ZERO;
                reduced.stored.push(StoredSegment {
                    id,
                    segment: stored_segment,
                    represented: 1,
                });
                reduced.execs.push(SegmentExec { segment: id, start });
            }
        }
    }

    reduced
}

/// Reduces every rank of an application trace by periodicity.
pub fn reduce_by_periodicity(app: &AppTrace, config: &PeriodicityConfig) -> ReducedAppTrace {
    let mut reduced = ReducedAppTrace::for_app(app);
    for rank in &app.ranks {
        reduced.ranks.push(reduce_rank_by_periodicity(rank, config));
    }
    reduced
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{ContextId, Event, Rank, RegionId};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn detects_simple_periods() {
        let seq = [1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3];
        assert_eq!(detect_period(&seq, 16, 1.0), Some(3));
        let constant = [7; 10];
        assert_eq!(detect_period(&constant, 16, 1.0), Some(1));
    }

    #[test]
    fn rejects_aperiodic_and_short_sequences() {
        let aperiodic = [1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(detect_period(&aperiodic, 4, 0.95), None);
        let short = [1];
        assert_eq!(detect_period(&short, 4, 0.9), None);
        let empty: [i32; 0] = [];
        assert_eq!(detect_period(&empty, 4, 0.9), None);
    }

    #[test]
    fn tolerates_small_disturbances_below_the_match_fraction() {
        // Period 2 with one corrupted position out of 15 comparisons.
        let mut seq = [1, 2].repeat(8);
        seq[7] = 9;
        assert_eq!(detect_period(&seq, 8, 0.8), Some(2));
        assert_eq!(detect_period(&seq, 8, 1.0), None);
    }

    /// A rank trace alternating between two loop contexts.
    fn two_phase_trace(repetitions: usize) -> RankTrace {
        let mut rt = RankTrace::new(Rank(0));
        let mut now = 0u64;
        for _ in 0..repetitions {
            for ctx in [0u32, 1] {
                rt.begin_segment(ContextId(ctx), Time::from_nanos(now));
                rt.push_event(Event::compute(
                    RegionId(ctx),
                    Time::from_nanos(now + 5),
                    Time::from_nanos(now + 100),
                ));
                rt.end_segment(ContextId(ctx), Time::from_nanos(now + 110));
                now += 110;
            }
        }
        rt
    }

    #[test]
    fn keeps_only_the_requested_number_of_periods() {
        let rt = two_phase_trace(10);
        let config = PeriodicityConfig {
            keep_periods: 2,
            ..PeriodicityConfig::default()
        };
        let reduced = reduce_rank_by_periodicity(&rt, &config);
        assert_eq!(reduced.exec_count(), 20);
        // Period is 2 segments, keep 2 periods -> 4 stored representatives.
        assert_eq!(reduced.stored_count(), 4);
        let rebuilt = reduced.reconstruct();
        assert_eq!(rebuilt.event_count(), 20);
    }

    #[test]
    fn fill_in_preserves_the_context_of_every_instance() {
        let rt = two_phase_trace(6);
        let reduced = reduce_rank_by_periodicity(&rt, &PeriodicityConfig::default());
        let rebuilt = reduced.reconstruct();
        let original_contexts: Vec<ContextId> = segments_of_rank(&rt)
            .into_iter()
            .map(|s| s.context)
            .collect();
        let rebuilt_contexts: Vec<ContextId> = segments_of_rank(&rebuilt)
            .into_iter()
            .map(|s| s.context)
            .collect();
        assert_eq!(original_contexts, rebuilt_contexts);
    }

    #[test]
    fn aperiodic_traces_are_kept_in_full() {
        // Segment contexts 0,1,2,...,7 never repeat, so nothing is dropped.
        let mut rt = RankTrace::new(Rank(0));
        let mut now = 0u64;
        for ctx in 0u32..8 {
            rt.begin_segment(ContextId(ctx), Time::from_nanos(now));
            rt.push_event(Event::compute(
                RegionId(ctx),
                Time::from_nanos(now + 1),
                Time::from_nanos(now + 10),
            ));
            rt.end_segment(ContextId(ctx), Time::from_nanos(now + 12));
            now += 12;
        }
        let reduced = reduce_rank_by_periodicity(&rt, &PeriodicityConfig::default());
        assert_eq!(reduced.stored_count(), 8);
        assert_eq!(reduced.degree_of_matching(), 1.0);
    }

    #[test]
    fn workload_reduction_is_structurally_consistent() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let reduced = reduce_by_periodicity(&app, &PeriodicityConfig::default());
        assert_eq!(reduced.rank_count(), app.rank_count());
        for (rrt, rt) in reduced.ranks.iter().zip(&app.ranks) {
            assert_eq!(rrt.exec_count(), rt.segment_instance_count());
        }
        let approx = reduced.reconstruct();
        assert_eq!(approx.total_events(), app.total_events());
    }
}
