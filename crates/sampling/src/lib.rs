#![forbid(unsafe_code)]
//! Trace-sampling reduction methods.
//!
//! The paper's conclusion names *trace sampling* as the first candidate for
//! future work, and its related-work section describes three sampling
//! families; this crate implements them against the same trace model and the
//! same reduced-trace format as the similarity-based methods, so the
//! evaluation criteria of Section 4.3 apply unchanged:
//!
//! * [`segment_sampler`] — keeps a subset of segment *instances* per rank
//!   (every `n`-th, an unbiased random fraction, or adaptively until a
//!   confidence interval on the mean segment duration is tight enough —
//!   Gamblin et al., IPDPS'08) and fills the rest in from the nearest
//!   retained instance, producing a [`trace_model::ReducedAppTrace`].
//! * [`event_stats`] — Vetter-style statistical sampling of message-passing
//!   events: every event is *counted*, a sampled subset is retained in
//!   full, and the rest contribute only to per-region statistics.
//! * [`periodicity`] — Freitag-style dynamic periodicity detection over the
//!   per-rank segment-context sequence, plus a reducer that keeps a limited
//!   number of iterations of each detected period.
//! * [`confidence`] — the trace-confidence measure Gamblin et al. use to
//!   evaluate sampled traces (fraction of time stamps within an error bound
//!   of the full trace), usable as an additional evaluation criterion.

#![warn(missing_docs)]

pub mod adaptive;
pub mod confidence;
pub mod event_stats;
pub mod periodicity;
pub mod policy;
pub mod segment_sampler;

pub use adaptive::{AdaptiveConfig, ConfidenceAccumulator};
pub use confidence::{trace_confidence, ConfidenceReport};
pub use event_stats::{statistical_profile, EventSamplingConfig, RegionProfile, RegionStats};
pub use periodicity::{detect_period, reduce_by_periodicity, PeriodicityConfig};
pub use policy::SamplingPolicy;
pub use segment_sampler::{sample_app, sample_rank, SegmentSampler};
