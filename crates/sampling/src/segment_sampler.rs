//! Segment-granularity trace sampling.
//!
//! Instead of deciding whether a new segment is *similar* to a stored one
//! (the paper's approach), a sampling reducer decides up front which segment
//! instances to retain: every `n`-th instance, an unbiased random fraction,
//! or adaptively until a confidence interval on the pattern's mean duration
//! is tight enough.  Instances that are not retained keep only their start
//! time in the execution log and are filled in from the most recently
//! retained instance of the same pattern — the same reconstruction rule the
//! paper uses for `iter_k`.
//!
//! The output is an ordinary [`ReducedAppTrace`], so the file-size,
//! approximation-distance and trend-retention criteria apply to sampling
//! exactly as they do to the similarity methods.

use std::collections::HashMap;

use trace_model::{
    AppTrace, RankTrace, ReducedAppTrace, ReducedRankTrace, SegmentExec, SegmentKey, StoredSegment,
    Time,
};
use trace_reduce::segmenter::segments_of_rank;

use crate::adaptive::{AdaptiveConfig, ConfidenceAccumulator};
use crate::policy::{PolicyState, SamplingPolicy};

/// Per-pattern sampling state.
#[derive(Default)]
struct PatternState {
    /// How many instances of the pattern have been seen.
    seen: usize,
    /// Ids of stored instances of this pattern, in storage order.
    stored_ids: Vec<u32>,
    /// Confidence accumulator over retained instance durations (adaptive).
    accumulator: ConfidenceAccumulator,
}

/// Samples one rank trace under `policy`, producing a reduced rank trace.
pub fn sample_rank(trace: &RankTrace, policy: SamplingPolicy) -> ReducedRankTrace {
    let adaptive_config = match policy {
        SamplingPolicy::Adaptive(cfg) => cfg,
        _ => AdaptiveConfig::default(),
    };
    let mut state = PolicyState::new(policy, trace.rank.as_u32());
    let mut patterns: HashMap<SegmentKey, PatternState> = HashMap::new();
    let mut reduced = ReducedRankTrace::new(trace.rank);

    for segment in segments_of_rank(trace) {
        let key = segment.key();
        let start = segment.start;
        let pattern = patterns.entry(key).or_default();
        let satisfied = matches!(policy, SamplingPolicy::Adaptive(_))
            && pattern.accumulator.is_satisfied(&adaptive_config);
        let keep = state.keep(pattern.seen, satisfied) || pattern.stored_ids.is_empty();
        pattern.seen += 1;

        if keep {
            let id = reduced.stored.len() as u32;
            pattern.stored_ids.push(id);
            pattern.accumulator.push(segment.end.as_f64());
            let mut stored_segment = segment;
            stored_segment.start = Time::ZERO;
            reduced.stored.push(StoredSegment {
                id,
                segment: stored_segment,
                represented: 1,
            });
            reduced.execs.push(SegmentExec { segment: id, start });
        } else {
            let id = *pattern
                .stored_ids
                .last()
                .expect("unsampled instances always have a retained predecessor");
            reduced.stored[id as usize].represented += 1;
            reduced.execs.push(SegmentExec { segment: id, start });
        }
    }

    reduced
}

/// Samples every rank of an application trace under `policy`.
pub fn sample_app(app: &AppTrace, policy: SamplingPolicy) -> ReducedAppTrace {
    let mut reduced = ReducedAppTrace::for_app(app);
    for rank in &app.ranks {
        reduced.ranks.push(sample_rank(rank, policy));
    }
    reduced
}

/// A sampling reducer with the same call shape as
/// [`trace_reduce::Reducer`], so evaluation drivers can treat sampling and
/// similarity-based reduction uniformly.
#[derive(Clone, Copy, Debug)]
pub struct SegmentSampler {
    policy: SamplingPolicy,
}

impl SegmentSampler {
    /// Creates a sampler for the given policy.
    pub fn new(policy: SamplingPolicy) -> Self {
        SegmentSampler { policy }
    }

    /// The policy in use.
    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    /// Samples a single rank trace.
    pub fn reduce_rank(&self, trace: &RankTrace) -> ReducedRankTrace {
        sample_rank(trace, self.policy)
    }

    /// Samples every rank of an application trace.
    pub fn reduce_app(&self, app: &AppTrace) -> ReducedAppTrace {
        sample_app(app, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{ContextId, Event, Rank, RegionId};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    /// A rank trace with one loop whose iteration durations are given.
    fn looped_trace(durations: &[u64]) -> RankTrace {
        let mut rt = RankTrace::new(Rank(0));
        let ctx = ContextId(0);
        let mut now = 0u64;
        for &d in durations {
            rt.begin_segment(ctx, Time::from_nanos(now));
            rt.push_event(Event::compute(
                RegionId(0),
                Time::from_nanos(now + 10),
                Time::from_nanos(now + 10 + d),
            ));
            rt.end_segment(ctx, Time::from_nanos(now + 20 + d));
            now += 20 + d;
        }
        rt
    }

    #[test]
    fn every_first_instance_sampling_is_lossless() {
        let rt = looped_trace(&[100, 250, 90, 400, 120]);
        let sampled = sample_rank(&rt, SamplingPolicy::EveryNth(1));
        assert_eq!(sampled.stored_count(), 5);
        assert_eq!(sampled.exec_count(), 5);
        let rebuilt = sampled.reconstruct();
        let original: Vec<_> = rt.events().copied().collect();
        let replayed: Vec<_> = rebuilt.events().copied().collect();
        assert_eq!(
            original, replayed,
            "every-1 sampling must reproduce every event exactly"
        );
    }

    #[test]
    fn every_nth_keeps_the_expected_number_of_instances() {
        let rt = looped_trace(&[1000; 20]);
        let sampled = sample_rank(&rt, SamplingPolicy::EveryNth(4));
        assert_eq!(sampled.exec_count(), 20);
        assert_eq!(sampled.stored_count(), 5);
        // Unsampled instances refer back to the most recent retained one.
        assert!(sampled.execs.iter().all(|e| (e.segment as usize) < 5));
        let represented: u32 = sampled.stored.iter().map(|s| s.represented).sum();
        assert_eq!(represented, 20);
    }

    #[test]
    fn random_sampling_is_reproducible_and_respects_the_fraction() {
        let rt = looped_trace(&[1000; 200]);
        let policy = SamplingPolicy::Random {
            fraction: 0.25,
            seed: 99,
        };
        let a = sample_rank(&rt, policy);
        let b = sample_rank(&rt, policy);
        assert_eq!(a, b, "same seed must give the same sample");
        assert_eq!(a.exec_count(), 200);
        // Expect roughly 25% retained; allow generous slack for a 200-draw
        // sample while still catching off-by-an-order-of-magnitude bugs.
        assert!(
            a.stored_count() > 20 && a.stored_count() < 110,
            "stored {} should be near 50",
            a.stored_count()
        );
    }

    #[test]
    fn adaptive_sampling_stops_early_for_regular_patterns() {
        let regular = looped_trace(&[1000; 50]);
        let sampled = sample_rank(
            &regular,
            SamplingPolicy::Adaptive(AdaptiveConfig::default()),
        );
        assert_eq!(sampled.exec_count(), 50);
        assert!(
            sampled.stored_count() <= 5,
            "constant durations should satisfy the interval almost immediately, stored {}",
            sampled.stored_count()
        );
    }

    #[test]
    fn adaptive_sampling_keeps_more_of_a_noisy_pattern() {
        let regular = looped_trace(&[1000; 40]);
        let noisy_durations: Vec<u64> = (0..40)
            .map(|i| if i % 2 == 0 { 500 } else { 4000 })
            .collect();
        let noisy = looped_trace(&noisy_durations);
        let policy = SamplingPolicy::Adaptive(AdaptiveConfig::with_relative_error(0.05));
        let kept_regular = sample_rank(&regular, policy).stored_count();
        let kept_noisy = sample_rank(&noisy, policy).stored_count();
        assert!(
            kept_noisy > kept_regular,
            "noisy pattern should need more samples ({kept_noisy}) than regular ({kept_regular})"
        );
    }

    #[test]
    fn sampling_a_workload_preserves_structure() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        for policy in [
            SamplingPolicy::EveryNth(2),
            SamplingPolicy::Random {
                fraction: 0.5,
                seed: 1,
            },
            SamplingPolicy::Adaptive(AdaptiveConfig::default()),
        ] {
            let sampled = SegmentSampler::new(policy).reduce_app(&app);
            assert_eq!(sampled.rank_count(), app.rank_count(), "{}", policy.label());
            for (reduced, full) in sampled.ranks.iter().zip(&app.ranks) {
                assert_eq!(reduced.exec_count(), full.segment_instance_count());
            }
            let approx = sampled.reconstruct();
            assert_eq!(
                approx.total_events(),
                app.total_events(),
                "{}",
                policy.label()
            );
        }
    }

    #[test]
    fn coarser_sampling_stores_fewer_segments() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let fine = sample_app(&app, SamplingPolicy::EveryNth(1)).total_stored();
        let medium = sample_app(&app, SamplingPolicy::EveryNth(4)).total_stored();
        let coarse = sample_app(&app, SamplingPolicy::EveryNth(16)).total_stored();
        assert!(fine > medium, "{fine} > {medium}");
        assert!(medium >= coarse, "{medium} >= {coarse}");
    }
}
