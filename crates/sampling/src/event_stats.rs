//! Vetter-style statistical sampling of message-passing events.
//!
//! Vetter's dynamic statistical profiling intercepts every MPI event and, for
//! each one, decides whether to record it in full, record only statistics, or
//! ignore it.  This module implements the "statistics" side: every event is
//! counted and contributes to per-region duration/byte statistics, and a
//! bounded reservoir of fully retained example events is kept per region.
//! The result is the profile-like summary the paper argues is *insufficient*
//! for diagnosing wait-state problems — having it implemented makes that
//! argument testable (see the `profiles_cannot_distinguish_late_senders`
//! integration test).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trace_model::{AppTrace, Event, Rank};

/// Configuration of the statistical event sampler.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EventSamplingConfig {
    /// Maximum number of fully retained example events per (rank, region).
    pub reservoir_size: usize,
    /// RNG seed for reservoir replacement decisions.
    pub seed: u64,
    /// If true, only message-passing events are sampled (compute events are
    /// still counted); this mirrors Vetter's focus on MPI operations.
    pub communication_only: bool,
}

impl Default for EventSamplingConfig {
    fn default() -> Self {
        EventSamplingConfig {
            reservoir_size: 16,
            seed: 0x5eed,
            communication_only: false,
        }
    }
}

/// Aggregate statistics for one region on one rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionStats {
    /// Number of events observed.
    pub count: u64,
    /// Total inclusive time, nanoseconds.
    pub total_ns: u64,
    /// Minimum event duration, nanoseconds.
    pub min_ns: u64,
    /// Maximum event duration, nanoseconds.
    pub max_ns: u64,
    /// Total payload bytes moved by communication events.
    pub total_bytes: u64,
}

impl RegionStats {
    fn record(&mut self, duration_ns: u64, bytes: u64) {
        if self.count == 0 {
            self.min_ns = duration_ns;
            self.max_ns = duration_ns;
        } else {
            self.min_ns = self.min_ns.min(duration_ns);
            self.max_ns = self.max_ns.max(duration_ns);
        }
        self.count += 1;
        self.total_ns += duration_ns;
        self.total_bytes += bytes;
    }

    /// Mean event duration in nanoseconds (0 when no events were observed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The per-rank statistical profile of one region, with retained examples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionProfile {
    /// Aggregate statistics per rank (indexed by rank order).
    pub per_rank: Vec<RegionStats>,
    /// Reservoir of fully retained example events (absolute time stamps).
    pub examples: Vec<(Rank, Event)>,
}

impl RegionProfile {
    /// Total event count over all ranks.
    pub fn total_count(&self) -> u64 {
        self.per_rank.iter().map(|s| s.count).sum()
    }

    /// Total inclusive time over all ranks, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.per_rank.iter().map(|s| s.total_ns).sum::<u64>() as f64 / 1e6
    }

    /// Per-rank mean durations in nanoseconds.
    pub fn mean_by_rank(&self) -> Vec<f64> {
        self.per_rank.iter().map(RegionStats::mean_ns).collect()
    }
}

/// Number of payload bytes an event moves (0 for compute events).
fn event_bytes(event: &Event) -> u64 {
    use trace_model::CommInfo;
    match event.comm {
        CommInfo::Compute => 0,
        CommInfo::Send { bytes, .. } | CommInfo::Recv { bytes, .. } => bytes,
        CommInfo::SendRecv { bytes, .. } => 2 * bytes,
        CommInfo::Collective { bytes, .. } => bytes,
    }
}

/// Builds the statistical profile of an application trace, keyed by region
/// name.  This is the Vetter-style reduction: counts and statistics for every
/// event, plus a bounded reservoir of examples.
pub fn statistical_profile(
    app: &AppTrace,
    config: &EventSamplingConfig,
) -> BTreeMap<String, RegionProfile> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut profiles: BTreeMap<String, RegionProfile> = BTreeMap::new();
    for (rank_index, rank) in app.ranks.iter().enumerate() {
        for event in rank.events() {
            if config.communication_only && !event.comm.is_communication() {
                // Still count compute time under its region so totals stay
                // meaningful, but do not retain examples.
            }
            let name = app.regions.name_or_unknown(event.region).to_owned();
            let profile = profiles.entry(name).or_default();
            if profile.per_rank.len() < app.rank_count() {
                profile
                    .per_rank
                    .resize(app.rank_count(), RegionStats::default());
            }
            profile.per_rank[rank_index].record(event.duration().as_nanos(), event_bytes(event));

            let retain_examples = !config.communication_only || event.comm.is_communication();
            if retain_examples && config.reservoir_size > 0 {
                let seen = profile.per_rank[rank_index].count;
                if profile.examples.len() < config.reservoir_size {
                    profile.examples.push((rank.rank, *event));
                } else {
                    // Reservoir sampling: replace an existing example with
                    // probability reservoir_size / seen.
                    let slot = rng.gen_range(0..seen as usize);
                    if slot < config.reservoir_size {
                        profile.examples[slot] = (rank.rank, *event);
                    }
                }
            }
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{CommInfo, Time};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn tiny_app() -> AppTrace {
        let mut app = AppTrace::new("profile_test", 2);
        let work = app.regions.intern("do_work");
        let recv = app.regions.intern("MPI_Recv");
        let ctx = app.contexts.intern("main.1");
        for (r, scale) in [(0usize, 1u64), (1, 3)] {
            let rank = &mut app.ranks[r];
            let mut now = 0;
            for _ in 0..5 {
                rank.begin_segment(ctx, Time::from_nanos(now));
                rank.push_event(Event::compute(
                    work,
                    Time::from_nanos(now + 1),
                    Time::from_nanos(now + 1 + 100 * scale),
                ));
                rank.push_event(Event::with_comm(
                    recv,
                    Time::from_nanos(now + 1 + 100 * scale),
                    Time::from_nanos(now + 1 + 100 * scale + 50),
                    CommInfo::Recv {
                        peer: Rank(((r + 1) % 2) as u32),
                        tag: 0,
                        bytes: 64,
                    },
                ));
                rank.end_segment(ctx, Time::from_nanos(now + 200 * scale));
                now += 200 * scale;
            }
        }
        app
    }

    #[test]
    fn statistics_count_every_event() {
        let app = tiny_app();
        let profiles = statistical_profile(&app, &EventSamplingConfig::default());
        assert_eq!(profiles.len(), 2);
        let work = &profiles["do_work"];
        assert_eq!(work.total_count(), 10);
        assert_eq!(work.per_rank[0].count, 5);
        assert_eq!(work.per_rank[0].mean_ns(), 100.0);
        assert_eq!(work.per_rank[1].mean_ns(), 300.0);
        let recv = &profiles["MPI_Recv"];
        assert_eq!(recv.per_rank[0].total_bytes, 5 * 64);
        assert_eq!(recv.per_rank[0].min_ns, 50);
        assert_eq!(recv.per_rank[0].max_ns, 50);
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let config = EventSamplingConfig {
            reservoir_size: 8,
            ..EventSamplingConfig::default()
        };
        let a = statistical_profile(&app, &config);
        let b = statistical_profile(&app, &config);
        assert_eq!(a, b, "same seed must sample the same examples");
        for (region, profile) in &a {
            assert!(
                profile.examples.len() <= 8,
                "{region} reservoir exceeded its bound"
            );
            if profile.total_count() >= 8 {
                assert_eq!(profile.examples.len(), 8, "{region}");
            }
        }
    }

    #[test]
    fn zero_reservoir_keeps_no_examples_but_all_statistics() {
        let app = tiny_app();
        let config = EventSamplingConfig {
            reservoir_size: 0,
            ..EventSamplingConfig::default()
        };
        let profiles = statistical_profile(&app, &config);
        assert!(profiles.values().all(|p| p.examples.is_empty()));
        assert_eq!(profiles["do_work"].total_count(), 10);
    }

    #[test]
    fn communication_only_mode_skips_compute_examples() {
        let app = tiny_app();
        let config = EventSamplingConfig {
            communication_only: true,
            ..EventSamplingConfig::default()
        };
        let profiles = statistical_profile(&app, &config);
        assert!(profiles["do_work"].examples.is_empty());
        assert!(!profiles["MPI_Recv"].examples.is_empty());
        // Statistics still cover everything.
        assert_eq!(profiles["do_work"].total_count(), 10);
    }

    #[test]
    fn profile_totals_match_the_trace_region_profile() {
        let app = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let profiles = statistical_profile(&app, &EventSamplingConfig::default());
        let reference = app.region_time_profile();
        for (region, duration) in reference {
            let profile = &profiles[&region];
            assert_eq!(
                profile.total_ms(),
                duration.as_nanos() as f64 / 1e6,
                "{region}"
            );
        }
    }
}
