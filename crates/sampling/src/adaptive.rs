//! Confidence-interval driven adaptive sampling (Gamblin et al., IPDPS'08).
//!
//! Gamblin et al. sample monitoring data with a user-specified confidence
//! level and error bound: data is collected until the confidence interval of
//! the estimated mean is within the requested relative error, after which
//! further collection is unnecessary.  Applied to segment sampling, each
//! segment pattern keeps collecting full instances until the confidence
//! interval of its mean duration is tight, and only start times afterwards.

/// Configuration for the adaptive policy.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AdaptiveConfig {
    /// Target relative half-width of the confidence interval: sampling stops
    /// once `half_width <= relative_error * mean`.
    pub relative_error: f64,
    /// z-score of the confidence level (1.96 ≈ 95%).
    pub z_score: f64,
    /// Minimum number of instances to keep per pattern before the interval
    /// test is allowed to stop sampling.
    pub min_samples: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            relative_error: 0.05,
            z_score: 1.96,
            min_samples: 3,
        }
    }
}

impl AdaptiveConfig {
    /// Creates a configuration with the given relative error at 95%
    /// confidence and the default minimum sample count.
    pub fn with_relative_error(relative_error: f64) -> Self {
        AdaptiveConfig {
            relative_error,
            ..AdaptiveConfig::default()
        }
    }
}

/// Welford online mean/variance accumulator with the confidence-interval
/// stopping test.
#[derive(Clone, Debug, Default)]
pub struct ConfidenceAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl ConfidenceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the confidence interval of the mean at the given
    /// z-score (`z * s / sqrt(n)`); infinite with fewer than two samples.
    pub fn interval_half_width(&self, z_score: f64) -> f64 {
        if self.count < 2 {
            f64::INFINITY
        } else {
            z_score * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// True once the confidence interval is narrow enough under `config`:
    /// at least `min_samples` observations and
    /// `half_width <= relative_error * mean`.
    ///
    /// A zero mean (degenerate segments with no measurable duration) is
    /// treated as satisfied as soon as the minimum sample count is reached,
    /// because the interval can never tighten relative to a zero mean.
    pub fn is_satisfied(&self, config: &AdaptiveConfig) -> bool {
        if (self.count as usize) < config.min_samples {
            return false;
        }
        if self.mean <= 0.0 {
            return true;
        }
        self.interval_half_width(config.z_score) <= config.relative_error * self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_mean_and_variance() {
        let values = [4.0, 8.0, 6.0, 10.0, 2.0];
        let mut acc = ConfidenceAccumulator::new();
        for &v in &values {
            acc.push(v);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - 6.0).abs() < 1e-12);
        // Direct unbiased variance: sum((x-6)^2) / 4 = (4+4+0+16+16)/4 = 10.
        assert!((acc.variance() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let mut acc = ConfidenceAccumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert!(acc.interval_half_width(1.96).is_infinite());
        acc.push(5.0);
        assert_eq!(acc.variance(), 0.0);
        assert!(acc.interval_half_width(1.96).is_infinite());
    }

    #[test]
    fn constant_observations_satisfy_quickly() {
        let config = AdaptiveConfig::default();
        let mut acc = ConfidenceAccumulator::new();
        for _ in 0..config.min_samples {
            acc.push(1000.0);
        }
        assert!(
            acc.is_satisfied(&config),
            "zero variance satisfies immediately"
        );
    }

    #[test]
    fn min_samples_gate_is_respected() {
        let config = AdaptiveConfig {
            min_samples: 5,
            ..AdaptiveConfig::default()
        };
        let mut acc = ConfidenceAccumulator::new();
        for _ in 0..4 {
            acc.push(1000.0);
        }
        assert!(!acc.is_satisfied(&config));
        acc.push(1000.0);
        assert!(acc.is_satisfied(&config));
    }

    #[test]
    fn noisy_observations_need_more_samples_than_clean_ones() {
        let config = AdaptiveConfig::with_relative_error(0.05);
        let samples_needed = |noise: f64| -> usize {
            let mut acc = ConfidenceAccumulator::new();
            for i in 0..10_000usize {
                // Deterministic alternating noise around 1000.
                let v = 1000.0 + if i % 2 == 0 { noise } else { -noise };
                acc.push(v);
                if acc.is_satisfied(&config) {
                    return i + 1;
                }
            }
            10_000
        };
        let clean = samples_needed(10.0);
        let noisy = samples_needed(400.0);
        assert!(
            clean < noisy,
            "clean {clean} should satisfy before noisy {noisy}"
        );
    }

    #[test]
    fn zero_mean_is_satisfied_at_min_samples() {
        let config = AdaptiveConfig::default();
        let mut acc = ConfidenceAccumulator::new();
        for _ in 0..3 {
            acc.push(0.0);
        }
        assert!(acc.is_satisfied(&config));
    }
}
