//! Property-based tests for the sampling reducers.

use proptest::prelude::*;

use trace_model::{ContextId, Event, Rank, RankTrace, RegionId, Time};
use trace_sampling::{
    detect_period, sample_rank, trace_confidence, AdaptiveConfig, SamplingPolicy,
};
use trace_sim::{SizePreset, Workload, WorkloadKind};

/// Builds a single-loop rank trace whose iteration durations are given.
fn looped_trace(durations: &[u64]) -> RankTrace {
    let mut rt = RankTrace::new(Rank(0));
    let ctx = ContextId(0);
    let mut now = 0u64;
    for &d in durations {
        let d = d.max(1);
        rt.begin_segment(ctx, Time::from_nanos(now));
        rt.push_event(Event::compute(
            RegionId(0),
            Time::from_nanos(now + 1),
            Time::from_nanos(now + 1 + d),
        ));
        rt.end_segment(ctx, Time::from_nanos(now + 2 + d));
        now += 2 + d;
    }
    rt
}

fn durations() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..1_000_000, 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampling_preserves_the_execution_log_length(ds in durations(), n in 1usize..8) {
        let rt = looped_trace(&ds);
        let sampled = sample_rank(&rt, SamplingPolicy::EveryNth(n));
        prop_assert_eq!(sampled.exec_count(), ds.len());
        prop_assert!(sampled.stored_count() >= 1);
        prop_assert!(sampled.stored_count() <= ds.len());
    }

    #[test]
    fn every_nth_stores_ceil_of_instances_over_n(ds in durations(), n in 1usize..8) {
        let rt = looped_trace(&ds);
        let sampled = sample_rank(&rt, SamplingPolicy::EveryNth(n));
        let expected = ds.len().div_ceil(n);
        prop_assert_eq!(sampled.stored_count(), expected);
    }

    #[test]
    fn reconstruction_preserves_event_counts(ds in durations(), seed in any::<u64>()) {
        let rt = looped_trace(&ds);
        let policy = SamplingPolicy::Random { fraction: 0.3, seed };
        let sampled = sample_rank(&rt, policy);
        let rebuilt = sampled.reconstruct();
        prop_assert_eq!(rebuilt.event_count(), rt.event_count());
        prop_assert_eq!(rebuilt.segment_instance_count(), rt.segment_instance_count());
    }

    #[test]
    fn adaptive_sampling_never_stores_more_than_everything(ds in durations()) {
        let rt = looped_trace(&ds);
        let sampled = sample_rank(
            &rt,
            SamplingPolicy::Adaptive(AdaptiveConfig::with_relative_error(0.1)),
        );
        prop_assert!(sampled.stored_count() <= ds.len());
        prop_assert_eq!(sampled.exec_count(), ds.len());
    }

    #[test]
    fn detected_periods_divide_constructed_periodic_sequences(
        period in 1usize..6,
        repeats in 2usize..8,
    ) {
        // A strictly periodic sequence of distinct symbols 0..period repeated.
        let seq: Vec<usize> = (0..period).cycle().take(period * repeats).collect();
        let detected = detect_period(&seq, 32, 1.0);
        prop_assert!(detected.is_some());
        // The detector returns the smallest satisfying period, which must
        // divide the constructed one.
        prop_assert_eq!(period % detected.unwrap(), 0);
    }

    #[test]
    fn confidence_is_monotone_in_the_bound(n in 2usize..10, b1 in 0.0..100.0f64, b2 in 0.0..100.0f64) {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let approx = trace_sampling::sample_app(&app, SamplingPolicy::EveryNth(n)).reconstruct();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let c_lo = trace_confidence(&app, &approx, lo);
        let c_hi = trace_confidence(&app, &approx, hi);
        prop_assert!(c_hi.timestamp_confidence >= c_lo.timestamp_confidence);
        prop_assert!(c_hi.mean_trace_confidence >= c_lo.mean_trace_confidence);
    }
}
