//! The threshold study (Section 5.1): sweep each method over its threshold
//! grid and record file size, approximation distance and trend retention.
//!
//! The results feed the appendix figures (9–19: file size and approximation
//! distance versus threshold, per method, for the benchmarks and for
//! Sweep3D) and the appendix tables (1–18: retention of performance trends
//! versus threshold, per program).

use trace_model::AppTrace;
use trace_reduce::{Method, MethodConfig};

use crate::evaluation::{evaluate_method, MethodEvaluation};
use crate::report::{fmt_f64, fmt_retained, Table};

/// One point of a threshold sweep: the evaluation of one workload at one
/// threshold of one method.
pub type ThresholdPoint = MethodEvaluation;

/// Runs the threshold study for one method over the given full traces,
/// sweeping the paper's threshold grid for that method.  `iter_avg` has no
/// threshold and yields a single point per workload.
pub fn threshold_study_for_method(traces: &[AppTrace], method: Method) -> Vec<ThresholdPoint> {
    let thresholds = if method.has_threshold() {
        method.threshold_grid()
    } else {
        vec![0.0]
    };
    let mut points = Vec::with_capacity(traces.len() * thresholds.len());
    for trace in traces {
        for &threshold in &thresholds {
            points.push(evaluate_method(trace, MethodConfig::new(method, threshold)));
        }
    }
    points
}

/// Appendix Figures 9–19 data: file size percentage and approximation
/// distance per workload and threshold, for one method.
pub fn threshold_figure_table(method: Method, points: &[ThresholdPoint]) -> Table {
    let mut table = Table::new(
        format!(
            "File size and approximation distance vs. threshold — {}",
            method.name()
        ),
        &[
            "workload",
            "threshold",
            "file size %",
            "approximation distance (us)",
            "degree of matching",
        ],
    );
    for point in points {
        table.push_row(vec![
            point.workload.clone(),
            fmt_f64(point.config.threshold),
            fmt_f64(point.file_size_percent),
            fmt_f64(point.approximation_distance_us),
            fmt_f64(point.degree_of_matching),
        ]);
    }
    table
}

/// Appendix Tables 1–18 data: retention of performance trends per threshold
/// for one workload (rows: method, columns: the method's thresholds).
pub fn trend_retention_by_threshold_table(workload: &str, points: &[ThresholdPoint]) -> Table {
    let mut table = Table::new(
        format!("Retention of performance trends vs. threshold — {workload}"),
        &["method", "threshold", "retained", "score"],
    );
    for point in points.iter().filter(|p| p.workload == workload) {
        table.push_row(vec![
            point.config.method.name().to_string(),
            fmt_f64(point.config.threshold),
            fmt_retained(point.trends_retained),
            fmt_f64(point.trend_score),
        ]);
    }
    table
}

/// Picks the "best" threshold for a method from a set of sweep points using
/// the paper's reasoning: prefer the largest threshold that still retains
/// performance trends on most workloads, breaking ties towards smaller file
/// sizes.  Used by tests to confirm the paper's default choices are sound
/// under this framework.
pub fn recommend_threshold(method: Method, points: &[ThresholdPoint]) -> Option<f64> {
    let thresholds = method.threshold_grid();
    if thresholds.is_empty() {
        return None;
    }
    let mut best: Option<(f64, f64, f64)> = None; // (threshold, retained fraction, avg size)
    for &threshold in &thresholds {
        let at: Vec<&ThresholdPoint> = points
            .iter()
            .filter(|p| p.config.method == method && p.config.threshold == threshold)
            .collect();
        if at.is_empty() {
            continue;
        }
        let retained = at.iter().filter(|p| p.trends_retained).count() as f64 / at.len() as f64;
        let avg_size = at.iter().map(|p| p.file_size_percent).sum::<f64>() / at.len() as f64;
        let candidate = (threshold, retained, avg_size);
        best = Some(match best {
            None => candidate,
            Some(current) => {
                // Higher retention wins; then smaller files; then larger
                // threshold (more reduction potential).
                if (candidate.1, -candidate.2, candidate.0) > (current.1, -current.2, current.0) {
                    candidate
                } else {
                    current
                }
            }
        });
    }
    best.map(|(threshold, _, _)| threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn tiny_traces() -> Vec<AppTrace> {
        vec![Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate()]
    }

    #[test]
    fn sweep_covers_the_papers_grid() {
        let traces = tiny_traces();
        let points = threshold_study_for_method(&traces, Method::Euclidean);
        assert_eq!(points.len(), 6);
        let thresholds: Vec<f64> = points.iter().map(|p| p.config.threshold).collect();
        assert_eq!(thresholds, Method::Euclidean.threshold_grid());
    }

    #[test]
    fn iter_avg_has_a_single_point_per_workload() {
        let traces = tiny_traces();
        let points = threshold_study_for_method(&traces, Method::IterAvg);
        assert_eq!(points.len(), 1);
    }

    #[test]
    fn file_size_decreases_with_increasing_threshold() {
        // The paper's headline observation in every Figure 9-19 panel.
        let traces = tiny_traces();
        let points = threshold_study_for_method(&traces, Method::RelDiff);
        let sizes: Vec<f64> = points.iter().map(|p| p.file_size_percent).collect();
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "file size must not grow with a looser threshold: {sizes:?}"
        );
    }

    #[test]
    fn iter_k_file_size_increases_with_k() {
        let traces = tiny_traces();
        let points = threshold_study_for_method(&traces, Method::IterK);
        let sizes: Vec<f64> = points.iter().map(|p| p.file_size_percent).collect();
        assert!(
            sizes.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "keeping more iterations must not shrink the file: {sizes:?}"
        );
    }

    #[test]
    fn tables_render_for_every_point() {
        let traces = tiny_traces();
        let points = threshold_study_for_method(&traces, Method::AvgWave);
        let fig = threshold_figure_table(Method::AvgWave, &points);
        assert_eq!(fig.rows.len(), points.len());
        let tab = trend_retention_by_threshold_table("late_sender", &points);
        assert_eq!(tab.rows.len(), points.len());
        assert!(tab.render().contains("avgWave"));
    }

    #[test]
    fn recommended_threshold_comes_from_the_grid() {
        let traces = tiny_traces();
        let points = threshold_study_for_method(&traces, Method::Manhattan);
        let best = recommend_threshold(Method::Manhattan, &points).unwrap();
        assert!(Method::Manhattan.threshold_grid().contains(&best));
        assert_eq!(recommend_threshold(Method::IterAvg, &[]), None);
    }
}
