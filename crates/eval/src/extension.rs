//! The extension study: similarity-based reduction versus the other
//! reduction families.
//!
//! The paper's conclusion names two future-work directions — additional
//! difference methods and trace sampling — and its related-work section
//! describes a third family, inter-process statistical clustering.  This
//! module evaluates all of them with the paper's criteria (plus the
//! trace-confidence measure of Gamblin et al.), so the trade-offs between
//! the families can be read off one table:
//!
//! * similarity-based reduction with the paper methods and with the extended
//!   catalogue (`trace-reduce`),
//! * segment sampling and periodicity-based reduction (`trace-sampling`),
//! * representative-rank clustering (`trace-clustering`).

use trace_clustering::{
    cluster_reduce, euclidean_distance_matrix, kmeans, rank_features, KMeansConfig, Normalization,
};
use trace_model::codec::encode_app_trace;
use trace_model::AppTrace;
use trace_reduce::{ExtendedConfig, ExtendedMethod, ExtendedReducer, Method};
use trace_sampling::{
    reduce_by_periodicity, sample_app, trace_confidence, AdaptiveConfig, PeriodicityConfig,
    SamplingPolicy,
};

use crate::criteria::{approximation_distance_us, file_size_percent, trends_retained};
use crate::report::{fmt_f64, fmt_retained, Table};

/// Error bound (microseconds) used for the trace-confidence column.
pub const CONFIDENCE_BOUND_US: f64 = 100.0;

/// One reduction technique evaluated by the extension study.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ExtensionTechnique {
    /// Similarity-based reduction (paper or extended method).
    Similarity(ExtendedConfig),
    /// Segment sampling under a sampling policy.
    Sampling(SamplingPolicy),
    /// Periodicity-based reduction.
    Periodicity(PeriodicityConfig),
    /// Inter-process clustering keeping one representative rank per cluster.
    Clustering {
        /// Number of clusters (clamped to the rank count per workload).
        k: usize,
    },
}

impl ExtensionTechnique {
    /// Display label used in tables, e.g. `dtw(0.2)`, `sampling:every10`,
    /// `clustering:k=4`.
    pub fn label(&self) -> String {
        match self {
            ExtensionTechnique::Similarity(cfg) => cfg.label(),
            ExtensionTechnique::Sampling(policy) => format!("sampling:{}", policy.label()),
            ExtensionTechnique::Periodicity(cfg) => {
                format!("periodicity:keep{}", cfg.keep_periods)
            }
            ExtensionTechnique::Clustering { k } => format!("clustering:k={k}"),
        }
    }

    /// The default catalogue compared by the extension study.
    pub fn default_catalogue() -> Vec<ExtensionTechnique> {
        let mut techniques = Vec::new();
        // The paper's best method (avgWave) plus the strongest baselines as
        // reference points, then every extension method.
        for method in [
            ExtendedMethod::Paper(Method::AvgWave),
            ExtendedMethod::Paper(Method::Euclidean),
            ExtendedMethod::Paper(Method::IterAvg),
        ] {
            techniques.push(ExtensionTechnique::Similarity(
                ExtendedConfig::with_default_threshold(method),
            ));
        }
        for method in ExtendedMethod::EXTENSIONS {
            techniques.push(ExtensionTechnique::Similarity(
                ExtendedConfig::with_default_threshold(method),
            ));
        }
        techniques.push(ExtensionTechnique::Sampling(SamplingPolicy::EveryNth(10)));
        techniques.push(ExtensionTechnique::Sampling(SamplingPolicy::Random {
            fraction: 0.1,
            seed: 0xA5,
        }));
        techniques.push(ExtensionTechnique::Sampling(SamplingPolicy::Adaptive(
            AdaptiveConfig::default(),
        )));
        techniques.push(ExtensionTechnique::Periodicity(PeriodicityConfig::default()));
        techniques.push(ExtensionTechnique::Clustering { k: 4 });
        techniques
    }
}

/// The outcome of evaluating one technique on one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtensionEvaluation {
    /// Workload (trace) name.
    pub workload: String,
    /// Technique label.
    pub technique: String,
    /// Reduced data size as a percentage of the full encoded trace.
    pub file_size_percent: f64,
    /// 90th-percentile absolute time-stamp error, microseconds.
    pub approximation_distance_us: f64,
    /// Whether the KOJAK-style diagnosis of the reconstructed trace matches
    /// the full trace's diagnosis.
    pub trends_retained: bool,
    /// Fraction of trend checks that passed.
    pub trend_score: f64,
    /// Trace confidence at [`CONFIDENCE_BOUND_US`] (fraction of time stamps
    /// within the bound).
    pub confidence: f64,
}

/// Evaluates one technique on one full trace.
pub fn evaluate_technique(full: &AppTrace, technique: ExtensionTechnique) -> ExtensionEvaluation {
    let (size_percent, approx) = match technique {
        ExtensionTechnique::Similarity(config) => {
            let reduced = ExtendedReducer::new(config).reduce_app(full);
            (file_size_percent(full, &reduced), reduced.reconstruct())
        }
        ExtensionTechnique::Sampling(policy) => {
            let reduced = sample_app(full, policy);
            (file_size_percent(full, &reduced), reduced.reconstruct())
        }
        ExtensionTechnique::Periodicity(config) => {
            let reduced = reduce_by_periodicity(full, &config);
            (file_size_percent(full, &reduced), reduced.reconstruct())
        }
        ExtensionTechnique::Clustering { k } => {
            let features = rank_features(full, Normalization::MinMax);
            let matrix = euclidean_distance_matrix(&features);
            let clusters = kmeans(
                &features,
                &KMeansConfig::new(k.min(full.rank_count().max(1))),
            );
            let clustered = cluster_reduce(full, &clusters.assignments, &matrix);
            let full_bytes = encode_app_trace(full).len() as f64;
            let retained_bytes = encode_app_trace(&clustered.retained).len() as f64;
            let percent = if full_bytes > 0.0 {
                100.0 * retained_bytes / full_bytes
            } else {
                0.0
            };
            (percent, clustered.reconstruct())
        }
    };

    let trend = trends_retained(full, &approx);
    let confidence = trace_confidence(full, &approx, CONFIDENCE_BOUND_US);

    ExtensionEvaluation {
        workload: full.name.clone(),
        technique: technique.label(),
        file_size_percent: size_percent,
        approximation_distance_us: approximation_distance_us(full, &approx),
        trends_retained: trend.retained,
        trend_score: trend.score,
        confidence: confidence.timestamp_confidence,
    }
}

/// Runs the default extension catalogue over a set of full traces.
pub fn extension_study(traces: &[AppTrace]) -> Vec<ExtensionEvaluation> {
    let techniques = ExtensionTechnique::default_catalogue();
    let mut evaluations = Vec::with_capacity(traces.len() * techniques.len());
    for trace in traces {
        for &technique in &techniques {
            evaluations.push(evaluate_technique(trace, technique));
        }
    }
    evaluations
}

/// Per-workload detail table of an extension study.
pub fn extension_table(evaluations: &[ExtensionEvaluation]) -> Table {
    let mut table = Table::new(
        "Extension study: similarity vs. sampling vs. clustering",
        &[
            "workload",
            "technique",
            "file size %",
            "approx dist (us)",
            "trends",
            "confidence",
        ],
    );
    for eval in evaluations {
        table.push_row(vec![
            eval.workload.clone(),
            eval.technique.clone(),
            fmt_f64(eval.file_size_percent),
            fmt_f64(eval.approximation_distance_us),
            fmt_retained(eval.trends_retained),
            fmt_f64(eval.confidence),
        ]);
    }
    table
}

/// Summary table: per-technique averages over all workloads plus the number
/// of workloads whose trends were retained.
pub fn extension_summary_table(evaluations: &[ExtensionEvaluation]) -> Table {
    let mut techniques: Vec<String> = Vec::new();
    for eval in evaluations {
        if !techniques.contains(&eval.technique) {
            techniques.push(eval.technique.clone());
        }
    }
    let mut table = Table::new(
        "Extension study summary (averages over workloads)",
        &[
            "technique",
            "avg file size %",
            "avg approx dist (us)",
            "trends retained",
            "avg confidence",
        ],
    );
    for technique in techniques {
        let rows: Vec<&ExtensionEvaluation> = evaluations
            .iter()
            .filter(|e| e.technique == technique)
            .collect();
        let n = rows.len() as f64;
        let avg_size = rows.iter().map(|e| e.file_size_percent).sum::<f64>() / n;
        let avg_dist = rows
            .iter()
            .map(|e| e.approximation_distance_us)
            .sum::<f64>()
            / n;
        let retained = rows.iter().filter(|e| e.trends_retained).count();
        let avg_conf = rows.iter().map(|e| e.confidence).sum::<f64>() / n;
        table.push_row(vec![
            technique,
            fmt_f64(avg_size),
            fmt_f64(avg_dist),
            format!("{retained}/{}", rows.len()),
            fmt_f64(avg_conf),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn workload(kind: WorkloadKind) -> AppTrace {
        Workload::new(kind, SizePreset::Tiny).generate()
    }

    #[test]
    fn default_catalogue_has_unique_labels() {
        let catalogue = ExtensionTechnique::default_catalogue();
        assert!(catalogue.len() >= 12);
        let mut labels: Vec<String> = catalogue.iter().map(|t| t.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), catalogue.len());
    }

    #[test]
    fn similarity_techniques_match_the_method_evaluation_pipeline() {
        let full = workload(WorkloadKind::LateSender);
        let technique = ExtensionTechnique::Similarity(ExtendedConfig::with_default_threshold(
            ExtendedMethod::Paper(Method::AvgWave),
        ));
        let eval = evaluate_technique(&full, technique);
        let reference = crate::evaluation::evaluate_method(
            &full,
            trace_reduce::MethodConfig::with_default_threshold(Method::AvgWave),
        );
        assert!((eval.file_size_percent - reference.file_size_percent).abs() < 1e-9);
        assert_eq!(eval.trends_retained, reference.trends_retained);
    }

    #[test]
    fn lossless_sampling_has_full_size_and_no_error() {
        let full = workload(WorkloadKind::EarlyGather);
        let eval = evaluate_technique(
            &full,
            ExtensionTechnique::Sampling(SamplingPolicy::EveryNth(1)),
        );
        assert_eq!(eval.approximation_distance_us, 0.0);
        assert_eq!(eval.confidence, 1.0);
        assert!(eval.trends_retained);
        assert!(
            eval.file_size_percent > 50.0,
            "keeping every segment cannot shrink much"
        );
    }

    #[test]
    fn coarse_sampling_is_smaller_but_less_confident_than_lossless() {
        let full = workload(WorkloadKind::DynLoadBalance);
        let lossless = evaluate_technique(
            &full,
            ExtensionTechnique::Sampling(SamplingPolicy::EveryNth(1)),
        );
        let coarse = evaluate_technique(
            &full,
            ExtensionTechnique::Sampling(SamplingPolicy::EveryNth(16)),
        );
        assert!(coarse.file_size_percent < lossless.file_size_percent);
        assert!(coarse.confidence <= lossless.confidence);
        assert!(coarse.approximation_distance_us >= lossless.approximation_distance_us);
    }

    #[test]
    fn clustering_with_one_cluster_per_rank_is_lossless() {
        let full = workload(WorkloadKind::LateSender);
        let eval = evaluate_technique(
            &full,
            ExtensionTechnique::Clustering {
                k: full.rank_count(),
            },
        );
        assert_eq!(eval.approximation_distance_us, 0.0);
        assert!(eval.trends_retained);
        assert!(eval.file_size_percent > 95.0);
    }

    #[test]
    fn clustering_with_few_clusters_shrinks_the_retained_data() {
        let full = workload(WorkloadKind::LateSender);
        let eval = evaluate_technique(&full, ExtensionTechnique::Clustering { k: 2 });
        assert!(
            eval.file_size_percent < 60.0,
            "2 clusters out of {} ranks should retain well under 60%, got {}",
            full.rank_count(),
            eval.file_size_percent
        );
    }

    #[test]
    fn extension_study_covers_every_technique_and_workload() {
        let traces = vec![
            workload(WorkloadKind::LateSender),
            workload(WorkloadKind::EarlyGather),
        ];
        let evaluations = extension_study(&traces);
        let catalogue = ExtensionTechnique::default_catalogue();
        assert_eq!(evaluations.len(), traces.len() * catalogue.len());
        let table = extension_table(&evaluations);
        let summary = extension_summary_table(&evaluations);
        let rendered = table.render();
        assert!(rendered.contains("late_sender"));
        let summary_text = summary.render();
        assert!(summary_text.contains("clustering:k=4"));
        assert!(summary_text.contains("sampling:every10"));
        // CSV output stays consistent with the row count.
        assert_eq!(table.to_csv().lines().count(), evaluations.len() + 1);
    }
}
