#![forbid(unsafe_code)]
//! Evaluation framework: the paper's criteria and experiment drivers.
//!
//! Section 4.3 of the paper defines four evaluation criteria; this crate
//! implements them and the two studies built on top of them:
//!
//! * [`criteria`] — percentage of full trace file size, degree of matching,
//!   approximation distance (90th-percentile time-stamp error), and
//!   retention of performance trends (via the `trace-analysis` crate).
//! * [`evaluation`] — evaluates one (workload, method, threshold)
//!   combination and produces a [`evaluation::MethodEvaluation`] record.
//! * [`comparative`] — the comparative study of Section 5.2: every method at
//!   its best threshold over all 18 workloads (Figures 5–8 plus the method
//!   ranking).
//! * [`threshold`] — the threshold study of Section 5.1: every method over
//!   its threshold grid (Figures 9–19, Tables 1–18).
//! * [`extension`] — the extension study (beyond the paper): similarity
//!   methods versus trace sampling, periodicity-based reduction and
//!   inter-process clustering, with a trace-confidence column.
//! * [`report`] — plain-text/CSV table rendering used by the examples and
//!   the benchmark harness.

#![warn(missing_docs)]

pub mod comparative;
pub mod criteria;
pub mod evaluation;
pub mod extension;
pub mod report;
pub mod threshold;

pub use comparative::{comparative_study, ComparativeStudy};
pub use criteria::{approximation_distance_us, file_size_percent, trends_retained};
pub use evaluation::{evaluate_method, MethodEvaluation};
pub use extension::{
    evaluate_technique, extension_study, extension_summary_table, extension_table,
    ExtensionEvaluation, ExtensionTechnique,
};
pub use threshold::{threshold_study_for_method, ThresholdPoint};
