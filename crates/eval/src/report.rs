//! Plain-text and CSV table rendering for experiment output.
//!
//! The benchmark harness and the examples print the regenerated data series
//! for every figure and table through these helpers, so the output format is
//! uniform across experiments.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title printed above the header.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("# {}\n", self.title));
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().max(1) - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first, comma-separated, quoted when
    /// a cell contains a comma or quote).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible fixed precision for tables.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else if value.abs() >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

/// Formats a boolean as the paper's tables do (`yes` / `NO`).
pub fn fmt_retained(retained: bool) -> String {
    if retained {
        "yes".to_string()
    } else {
        "NO".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["workload", "method", "size %"]);
        t.push_row(vec!["late_sender".into(), "avgWave".into(), fmt_f64(3.21)]);
        t.push_row(vec!["sweep3d_32p".into(), "iter_k".into(), fmt_f64(12.0)]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("# Demo"));
        assert!(text.contains("workload"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[3].starts_with("late_sender"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_formatting_scales_precision() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.1234), "0.1234");
        assert_eq!(fmt_f64(std::f64::consts::PI), "3.14");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert_eq!(fmt_retained(true), "yes");
        assert_eq!(fmt_retained(false), "NO");
    }
}
