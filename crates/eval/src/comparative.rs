//! The comparative study (Section 5.2): every method at its representative
//! threshold, over a set of workloads.
//!
//! From one [`ComparativeStudy`] the benchmark harness and examples print:
//!
//! * Figure 5 — percentage file size and degree of matching per workload and
//!   method;
//! * Figure 6 — approximation distance per workload and method;
//! * Figures 7/8 (and the Figure 4 representation) — KOJAK-style performance
//!   trend charts for a chosen workload, full trace vs. every method;
//! * the Section 5.2 summary ranking (average file size, correct-diagnosis
//!   counts).

use trace_analysis::diagnose;
use trace_model::AppTrace;
use trace_reduce::{Method, MethodConfig, Reducer};

use crate::evaluation::{evaluate_all_methods, MethodEvaluation};
use crate::report::{fmt_f64, fmt_retained, Table};

/// The full comparative-study result grid.
#[derive(Clone, Debug, Default)]
pub struct ComparativeStudy {
    /// One evaluation per (workload, method) pair, workload-major, in paper
    /// method order.
    pub evaluations: Vec<MethodEvaluation>,
}

/// Runs the comparative study over the given full traces (all nine methods,
/// each at its paper-default threshold).
pub fn comparative_study(traces: &[AppTrace]) -> ComparativeStudy {
    let mut evaluations = Vec::with_capacity(traces.len() * Method::ALL.len());
    for trace in traces {
        evaluations.extend(evaluate_all_methods(trace));
    }
    ComparativeStudy { evaluations }
}

impl ComparativeStudy {
    /// The workloads covered, in evaluation order.
    pub fn workloads(&self) -> Vec<String> {
        let mut names = Vec::new();
        for eval in &self.evaluations {
            if !names.contains(&eval.workload) {
                names.push(eval.workload.clone());
            }
        }
        names
    }

    /// Figure 5 data: percentage file size and degree of matching for every
    /// workload and method at the default thresholds.
    pub fn figure5_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 5: percentage file sizes and degree of matching (default thresholds)",
            &["workload", "method", "file size %", "degree of matching"],
        );
        for eval in &self.evaluations {
            table.push_row(vec![
                eval.workload.clone(),
                eval.config.method.name().to_string(),
                fmt_f64(eval.file_size_percent),
                fmt_f64(eval.degree_of_matching),
            ]);
        }
        table
    }

    /// Figure 6 data: approximation distance for every workload and method.
    pub fn figure6_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 6: approximation distance (90th percentile time-stamp error, us)",
            &["workload", "method", "approximation distance (us)"],
        );
        for eval in &self.evaluations {
            table.push_row(vec![
                eval.workload.clone(),
                eval.config.method.name().to_string(),
                fmt_f64(eval.approximation_distance_us),
            ]);
        }
        table
    }

    /// Retention-of-trends summary per workload and method (the data behind
    /// the Figures 7/8 discussion and the Section 5.2.3 counts).
    pub fn trend_retention_table(&self) -> Table {
        let mut table = Table::new(
            "Retention of performance trends (default thresholds)",
            &["workload", "method", "retained", "score"],
        );
        for eval in &self.evaluations {
            table.push_row(vec![
                eval.workload.clone(),
                eval.config.method.name().to_string(),
                fmt_retained(eval.trends_retained),
                fmt_f64(eval.trend_score),
            ]);
        }
        table
    }

    /// Average file-size percentage per method, smallest first — the ranking
    /// the paper reports at the end of Section 5.2.1.
    pub fn average_file_size_ranking(&self) -> Vec<(Method, f64)> {
        let mut ranking: Vec<(Method, f64)> = Method::ALL
            .into_iter()
            .map(|method| {
                let values: Vec<f64> = self
                    .evaluations
                    .iter()
                    .filter(|e| e.config.method == method)
                    .map(|e| e.file_size_percent)
                    .collect();
                let mean = if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                };
                (method, mean)
            })
            .collect();
        ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        ranking
    }

    /// Number of workloads each method diagnosed correctly (Section 5.2.3:
    /// "Manhattan, Euclidean, and avgWave ... correctly diagnosed 17 out of
    /// the 18 execution traces").
    pub fn correct_diagnosis_counts(&self) -> Vec<(Method, usize)> {
        let mut counts: Vec<(Method, usize)> = Method::ALL
            .into_iter()
            .map(|method| {
                let count = self
                    .evaluations
                    .iter()
                    .filter(|e| e.config.method == method && e.trends_retained)
                    .count();
                (method, count)
            })
            .collect();
        counts.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        counts
    }

    /// Mean approximation distance per method, smallest first (the ranking
    /// discussed in Section 5.2.2).
    pub fn average_approximation_ranking(&self) -> Vec<(Method, f64)> {
        let mut ranking: Vec<(Method, f64)> = Method::ALL
            .into_iter()
            .map(|method| {
                let values: Vec<f64> = self
                    .evaluations
                    .iter()
                    .filter(|e| e.config.method == method)
                    .map(|e| e.approximation_distance_us)
                    .collect();
                let mean = if values.is_empty() {
                    0.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                };
                (method, mean)
            })
            .collect();
        ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        ranking
    }

    /// Section 5.2 summary table: per-method averages over all workloads.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "Method summary (averages over all workloads, default thresholds)",
            &[
                "method",
                "avg file size %",
                "avg degree of matching",
                "avg approx distance (us)",
                "correct diagnoses",
                "workloads",
            ],
        );
        let n_workloads = self.workloads().len();
        for method in Method::ALL {
            let evals: Vec<&MethodEvaluation> = self
                .evaluations
                .iter()
                .filter(|e| e.config.method == method)
                .collect();
            if evals.is_empty() {
                continue;
            }
            let mean = |f: &dyn Fn(&MethodEvaluation) -> f64| {
                evals.iter().map(|e| f(e)).sum::<f64>() / evals.len() as f64
            };
            table.push_row(vec![
                method.name().to_string(),
                fmt_f64(mean(&|e| e.file_size_percent)),
                fmt_f64(mean(&|e| e.degree_of_matching)),
                fmt_f64(mean(&|e| e.approximation_distance_us)),
                format!("{}", evals.iter().filter(|e| e.trends_retained).count()),
                format!("{n_workloads}"),
            ]);
        }
        table
    }
}

/// Renders Figure 7/8-style trend charts for one workload: the full-trace
/// diagnosis followed by the diagnosis of each method's reconstructed trace
/// at its default threshold.
pub fn trend_grids(full: &AppTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "KOJAK-style performance trends for {} (full trace first)\n\n",
        full.name
    ));
    out.push_str("== full trace (no loss) ==\n");
    out.push_str(&diagnose(full).render_chart());
    for config in MethodConfig::all_defaults() {
        let reduced = Reducer::new(config).reduce_app(full);
        let approx = reduced.reconstruct();
        out.push_str(&format!("\n== {} ==\n", config.label()));
        out.push_str(&diagnose(&approx).render_chart());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn tiny_study() -> ComparativeStudy {
        let traces: Vec<AppTrace> = [WorkloadKind::LateSender, WorkloadKind::EarlyGather]
            .into_iter()
            .map(|kind| Workload::new(kind, SizePreset::Tiny).generate())
            .collect();
        comparative_study(&traces)
    }

    #[test]
    fn study_covers_every_workload_method_pair() {
        let study = tiny_study();
        assert_eq!(study.evaluations.len(), 2 * Method::ALL.len());
        assert_eq!(study.workloads(), vec!["late_sender", "early_gather"]);
        assert_eq!(study.figure5_table().rows.len(), study.evaluations.len());
        assert_eq!(study.figure6_table().rows.len(), study.evaluations.len());
        assert_eq!(
            study.trend_retention_table().rows.len(),
            study.evaluations.len()
        );
    }

    #[test]
    fn rankings_cover_every_method_once() {
        let study = tiny_study();
        let sizes = study.average_file_size_ranking();
        let counts = study.correct_diagnosis_counts();
        assert_eq!(sizes.len(), Method::ALL.len());
        assert_eq!(counts.len(), Method::ALL.len());
        // The ranking is sorted ascending by size.
        for pair in sizes.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        // iter_avg must be tied with (or beat) the smallest average size,
        // since every same-shape segment matches by definition.
        let best_size = sizes[0].1;
        let iter_avg_size = sizes
            .iter()
            .find(|(m, _)| *m == Method::IterAvg)
            .map(|(_, s)| *s)
            .unwrap();
        assert!(iter_avg_size <= best_size + 1e-9);
    }

    #[test]
    fn summary_table_has_one_row_per_method() {
        let study = tiny_study();
        let table = study.summary_table();
        assert_eq!(table.rows.len(), Method::ALL.len());
        assert!(table.render().contains("avgWave"));
    }

    #[test]
    fn trend_grids_include_full_trace_and_every_method() {
        let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let grids = trend_grids(&full);
        assert!(grids.contains("no loss"));
        for method in Method::ALL {
            assert!(grids.contains(method.name()), "missing {method}");
        }
        assert!(grids.contains("MPI_Alltoall"));
    }
}
