//! Evaluating one (workload, method, threshold) combination.

use trace_model::AppTrace;
use trace_reduce::{reduce_app_parallel, MethodConfig, Reducer};

use crate::criteria::{
    approximation_distance_us, encoded_sizes, file_size_percent, trends_retained,
};

/// The outcome of evaluating one method configuration on one workload —
/// one cell of the paper's figures/tables.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodEvaluation {
    /// Workload (trace) name, e.g. `late_sender` or `sweep3d_32p`.
    pub workload: String,
    /// The method and threshold that were evaluated.
    pub config: MethodConfig,
    /// Encoded full-trace size in bytes.
    pub full_bytes: usize,
    /// Encoded reduced-trace size in bytes.
    pub reduced_bytes: usize,
    /// Criterion 1: reduced size as a percentage of the full size.
    pub file_size_percent: f64,
    /// Criterion 2: degree of matching (matches / possible matches).
    pub degree_of_matching: f64,
    /// Criterion 3: 90th-percentile absolute time-stamp error, microseconds.
    pub approximation_distance_us: f64,
    /// Criterion 4: whether the performance trends were retained.
    pub trends_retained: bool,
    /// Fraction of trend checks that passed (1.0 = perfect).
    pub trend_score: f64,
    /// Total stored representative segments across ranks.
    pub stored_segments: usize,
    /// Total segment executions across ranks.
    pub segment_executions: usize,
}

/// Number of worker threads used for per-rank parallel reduction.
fn reduction_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Evaluates one method configuration on one (already generated) full trace,
/// computing all four criteria of Section 4.3.
pub fn evaluate_method(full: &AppTrace, config: MethodConfig) -> MethodEvaluation {
    let reducer = Reducer::new(config);
    let reduced = reduce_app_parallel(&reducer, full, reduction_threads());
    let approx = reduced.reconstruct();
    let (full_bytes, reduced_bytes) = encoded_sizes(full, &reduced);
    let trend = trends_retained(full, &approx);
    MethodEvaluation {
        workload: full.name.clone(),
        config,
        full_bytes,
        reduced_bytes,
        file_size_percent: file_size_percent(full, &reduced),
        degree_of_matching: reduced.degree_of_matching(),
        approximation_distance_us: approximation_distance_us(full, &approx),
        trends_retained: trend.retained,
        trend_score: trend.score,
        stored_segments: reduced.total_stored(),
        segment_executions: reduced.total_execs(),
    }
}

/// Evaluates every method at its paper-default threshold on one full trace.
pub fn evaluate_all_methods(full: &AppTrace) -> Vec<MethodEvaluation> {
    MethodConfig::all_defaults()
        .into_iter()
        .map(|config| evaluate_method(full, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_reduce::Method;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn evaluation_populates_every_field_consistently() {
        let full = Workload::new(WorkloadKind::EarlyGather, SizePreset::Tiny).generate();
        let eval = evaluate_method(&full, MethodConfig::with_default_threshold(Method::AvgWave));
        assert_eq!(eval.workload, "early_gather");
        assert!(eval.full_bytes > eval.reduced_bytes);
        assert!(
            (eval.file_size_percent - 100.0 * eval.reduced_bytes as f64 / eval.full_bytes as f64)
                .abs()
                < 1e-9
        );
        assert!(eval.degree_of_matching > 0.0 && eval.degree_of_matching <= 1.0);
        assert!(eval.approximation_distance_us >= 0.0);
        assert!(eval.trend_score > 0.0 && eval.trend_score <= 1.0);
        assert!(eval.stored_segments <= eval.segment_executions);
    }

    #[test]
    fn all_methods_are_evaluated_in_paper_order() {
        let full = Workload::new(WorkloadKind::LateBroadcast, SizePreset::Tiny).generate();
        let evals = evaluate_all_methods(&full);
        assert_eq!(evals.len(), Method::ALL.len());
        assert_eq!(evals[0].config.method, Method::RelDiff);
        assert!(evals.iter().all(|e| e.workload == "late_broadcast"));
    }
}
