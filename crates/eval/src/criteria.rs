//! The paper's four evaluation criteria (Section 4.3).

use trace_analysis::{compare_diagnoses, diagnose, ComparisonConfig, TrendComparison};
use trace_model::codec::{encode_app_trace, encode_reduced_trace};
use trace_model::{stats, AppTrace, ReducedAppTrace};

/// Criterion 1 — *Percentage of full trace file size*: the size of the
/// encoded reduced trace as a percentage of the encoded full trace
/// (Section 4.3.1).
pub fn file_size_percent(full: &AppTrace, reduced: &ReducedAppTrace) -> f64 {
    let full_bytes = encode_app_trace(full).len() as f64;
    if full_bytes == 0.0 {
        return 0.0;
    }
    let reduced_bytes = encode_reduced_trace(reduced).len() as f64;
    100.0 * reduced_bytes / full_bytes
}

/// Sizes in bytes of the encoded full and reduced traces (useful for
/// absolute reporting alongside the percentage).
pub fn encoded_sizes(full: &AppTrace, reduced: &ReducedAppTrace) -> (usize, usize) {
    (
        encode_app_trace(full).len(),
        encode_reduced_trace(reduced).len(),
    )
}

/// Criterion 3 — *Approximation distance*: recreate a full trace from the
/// reduced one, compare every time stamp to its counterpart in the original,
/// and report the absolute difference that 90% of time stamps stay within
/// (Section 4.3.3).  The result is in microseconds.
pub fn approximation_distance_us(full: &AppTrace, approximated: &AppTrace) -> f64 {
    let mut diffs_us = Vec::new();
    for (full_rank, approx_rank) in full.ranks.iter().zip(&approximated.ranks) {
        let original = full_rank.timestamp_vector();
        let approximated = approx_rank.timestamp_vector();
        for (a, b) in original.iter().zip(&approximated) {
            diffs_us.push(a.abs_diff(*b).as_f64() / 1_000.0);
        }
        // Time stamps beyond the shorter vector count as fully erroneous; in
        // practice every reducer in this workspace preserves event counts.
        let extra = original.len().abs_diff(approximated.len());
        for _ in 0..extra {
            diffs_us.push(f64::MAX / 1e6);
        }
    }
    stats::percentile(&diffs_us, 0.9)
}

/// Criterion 4 — *Retention of performance trends*: run the wait-state
/// analysis on the full trace and on the approximated trace and compare the
/// diagnoses under the paper's guidelines (Section 4.3.4).
pub fn trends_retained(full: &AppTrace, approximated: &AppTrace) -> TrendComparison {
    let reference = diagnose(full);
    let candidate = diagnose(approximated);
    compare_diagnoses(&reference, &candidate, &ComparisonConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_reduce::{Method, Reducer};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn workload() -> AppTrace {
        Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate()
    }

    #[test]
    fn file_size_percent_is_between_zero_and_about_one_hundred() {
        let full = workload();
        for method in Method::ALL {
            let reduced = Reducer::with_default_threshold(method).reduce_app(&full);
            let pct = file_size_percent(&full, &reduced);
            assert!(pct > 0.0, "{method}: {pct}");
            assert!(pct < 120.0, "{method}: {pct}");
        }
    }

    #[test]
    fn iter_avg_gives_the_smallest_files() {
        // Figure 5: iter_avg is the best case for size because exactly one
        // segment per pattern is retained.
        let full = workload();
        let iter_avg = Reducer::with_default_threshold(Method::IterAvg).reduce_app(&full);
        let best = file_size_percent(&full, &iter_avg);
        for method in [Method::RelDiff, Method::IterK] {
            let other = Reducer::with_default_threshold(method).reduce_app(&full);
            assert!(
                best <= file_size_percent(&full, &other) + 1e-9,
                "iter_avg must not be larger than {method}"
            );
        }
    }

    #[test]
    fn approximation_distance_is_zero_for_identical_traces() {
        let full = workload();
        assert_eq!(approximation_distance_us(&full, &full), 0.0);
    }

    #[test]
    fn approximation_distance_grows_with_looser_thresholds() {
        use trace_reduce::MethodConfig;
        let full = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        let tight = Reducer::new(MethodConfig::new(Method::Euclidean, 0.05))
            .reduce_app(&full)
            .reconstruct();
        let loose = Reducer::new(MethodConfig::new(Method::Euclidean, 1.0))
            .reduce_app(&full)
            .reconstruct();
        let tight_err = approximation_distance_us(&full, &tight);
        let loose_err = approximation_distance_us(&full, &loose);
        assert!(
            loose_err >= tight_err,
            "loose threshold error {loose_err} must be >= tight threshold error {tight_err}"
        );
    }

    #[test]
    fn trends_are_retained_when_comparing_a_trace_with_itself() {
        let full = workload();
        let cmp = trends_retained(&full, &full);
        assert!(cmp.retained);
        assert_eq!(cmp.score, 1.0);
    }

    #[test]
    fn trends_survive_a_tight_reduction_of_a_regular_benchmark() {
        let full = workload();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&full);
        let approx = reduced.reconstruct();
        let cmp = trends_retained(&full, &approx);
        assert!(
            cmp.retained,
            "avgWave at its default threshold must retain late-sender trends: {:?}",
            cmp.discrepancies
        );
    }
}
