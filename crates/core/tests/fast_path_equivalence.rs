//! Property: the cached-feature fast path ≡ the naive reference path.
//!
//! The reducer's hot loop ([`trace_reduce::OnlineRankReducer`]) matches
//! through cached [`trace_reduce::SegmentFeatures`] with admissible
//! prefilters and early-abandoning kernels; the pre-fast-path behaviour is
//! preserved as [`trace_reduce::reduce_rank_reference`].  These tests
//! require the two paths to make the same match decisions and produce
//! *identical* `ReducedAppTrace`s — every stored segment, every execution,
//! every timestamp — across all nine methods, the paper's threshold grids,
//! the simulated workloads and randomly generated traces, sequentially and
//! through the parallel driver.

use proptest::prelude::*;

use trace_reduce::{
    reduce_app_reference, reduce_app_with_predicate, reduce_rank_reference, segments_match,
    ExtendedConfig, ExtendedMethod, ExtendedReducer, Method, MethodConfig, Reducer,
};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};
use trace_sim::{SizePreset, Workload, WorkloadKind};

/// Every method at its default threshold plus its full paper grid.
fn all_configs() -> Vec<MethodConfig> {
    Method::ALL
        .into_iter()
        .flat_map(|method| {
            std::iter::once(MethodConfig::with_default_threshold(method)).chain(
                method
                    .threshold_grid()
                    .into_iter()
                    .map(move |t| MethodConfig::new(method, t)),
            )
        })
        .collect()
}

#[test]
fn fast_path_is_bit_identical_on_workloads_across_the_threshold_grid() {
    for kind in [
        WorkloadKind::LateSender,
        WorkloadKind::DynLoadBalance,
        WorkloadKind::Sweep3d8p,
    ] {
        let app = Workload::new(kind, SizePreset::Tiny).generate();
        for config in all_configs() {
            let fast = Reducer::new(config).reduce_app(&app);
            let reference = reduce_app_reference(config, &app);
            assert_eq!(fast, reference, "{} on {}", config.label(), kind.name());
        }
    }
}

#[test]
fn parallel_driver_matches_the_reference_path() {
    let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        let reference = reduce_app_reference(config, &app);
        for threads in [2, 8] {
            let parallel = trace_reduce::reduce_app_parallel(&Reducer::new(config), &app, threads);
            assert_eq!(parallel, reference, "{method} with {threads} threads");
        }
    }
}

#[test]
fn fast_path_matches_the_predicate_reducer_for_distance_methods() {
    // The predicate-based reducer recomputes everything per comparison via
    // the naive `segments_match`; a third independent witness.
    let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
    for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
        let config = MethodConfig::with_default_threshold(method);
        let fast = Reducer::new(config).reduce_app(&app);
        let naive = reduce_app_with_predicate(&app, |a, b| segments_match(&config, a, b));
        assert_eq!(fast, naive, "{method}");
    }
}

#[test]
fn extended_dtw_early_abandon_does_not_change_reductions() {
    use trace_reduce::normalized_dtw_distance;
    let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    for threshold in [0.01, 0.1, 0.2, 0.6] {
        let fast = ExtendedReducer::new(ExtendedConfig::new(ExtendedMethod::Dtw, threshold))
            .reduce_app(&app);
        // Naive witness: the pre-abandon formulation — full band-limited
        // DTW distance compared against the scaled threshold.
        let naive = reduce_app_with_predicate(&app, |a, b| {
            let va = a.measurement_vector();
            let vb = b.measurement_vector();
            let distance = normalized_dtw_distance(&va, &vb, Some(2));
            let max_value = trace_model::stats::max(&va).max(trace_model::stats::max(&vb));
            distance <= threshold * max_value
        });
        assert_eq!(fast, naive, "dtw({threshold})");
    }
}

#[test]
fn fast_path_match_counters_partition_and_agree_with_the_reference() {
    let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
        let config = MethodConfig::with_default_threshold(method);
        for rank in &app.ranks {
            let fast = Reducer::new(config).reduce_rank(rank);
            let reference = reduce_rank_reference(config, rank);
            let stats = fast.matching;
            assert_eq!(
                stats.prefilter_rejects + stats.early_abandons + stats.full_kernels,
                stats.comparisons,
                "{method}: counters must partition"
            );
            // Both paths walk identical buckets in identical order, so the
            // candidate and match counts line up exactly; the fast path just
            // resolves some candidates without visiting them (index prunes)
            // or without a full kernel (prefilters / early abandons).
            assert_eq!(
                stats.candidates(),
                reference.matching.comparisons,
                "{method}"
            );
            assert_eq!(stats.matches, reference.matching.matches, "{method}");
            assert!(
                stats.full_kernels <= reference.matching.full_kernels,
                "{method}"
            );
        }
    }
}

fn specs_strategy() -> impl Strategy<Value = Vec<Vec<SegmentSpec>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..12),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_path_is_bit_identical_on_random_traces(rank_specs in specs_strategy()) {
        let app = trace_from_specs("fastpath", &rank_specs);
        prop_assert!(app.is_well_formed());
        for config in all_configs() {
            let fast = Reducer::new(config).reduce_app(&app);
            let reference = reduce_app_reference(config, &app);
            prop_assert_eq!(&fast, &reference, "{}", config.label());
        }
    }

    #[test]
    fn fast_path_is_bit_identical_on_random_traces_with_random_thresholds(
        rank_specs in specs_strategy(),
        threshold in 0.0..2.0f64,
    ) {
        let app = trace_from_specs("fastpath", &rank_specs);
        for method in Method::ALL {
            // A fractional threshold for every method; for absDiff it is
            // microseconds, i.e. up to 2000 ns — the order of magnitude of
            // the generated jitter, so both outcomes occur.
            let config = MethodConfig::new(method, threshold);
            let fast = Reducer::new(config).reduce_app(&app);
            let reference = reduce_app_reference(config, &app);
            prop_assert_eq!(&fast, &reference, "{} at {}", method, threshold);
        }
    }
}
