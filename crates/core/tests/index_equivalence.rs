//! Property: the candidate index ≡ the linear scan ≡ the naive reference.
//!
//! The reducer's default path routes every incoming segment through the
//! [`trace_reduce::index`] module — duration-sorted windows plus
//! triangle-inequality pivot pruning over cached features — before any
//! similarity kernel runs.  The index is only allowed to *skip* candidates
//! it can prove unmatchable; every surviving candidate is visited in
//! insertion order, so the reduction must stay bit-identical to both the
//! pre-index linear scan ([`trace_reduce::CandidateSearch::LinearScan`])
//! and the naive reference path ([`trace_reduce::reduce_rank_reference`]).
//! These tests require exactly that, across all nine methods, the paper's
//! threshold grids, simulated and random traces, and the sequential and
//! parallel drivers — plus the counter identity
//! `indexed.candidates() == reference.comparisons` that makes the pruning
//! auditable.
//!
//! The adversarial half of the suite attacks the two ways an index like
//! this classically goes wrong: returning the *nearest* stored candidate
//! instead of the *first inserted* one (the paper's scan semantics), and
//! pruning with bounds that are not admissible under f64 accumulation
//! error at large norms (the PR 5 counterexample family: 1500-event
//! segments with timestamps up to 7.5·10¹², where one ulp of the L1 norm
//! is 2 ns).

use proptest::prelude::*;

use trace_model::{AppTrace, Event, RegionId, Time};
use trace_reduce::{
    reduce_app_parallel_with_stats, reduce_app_reference, reduce_rank_reference, CandidateSearch,
    Method, MethodConfig, Reducer,
};
use trace_sim::specgen::{trace_from_specs, SegmentSpec};
use trace_sim::{SizePreset, Workload, WorkloadKind};

/// Every method at its default threshold plus its full paper grid.
fn all_configs() -> Vec<MethodConfig> {
    Method::ALL
        .into_iter()
        .flat_map(|method| {
            std::iter::once(MethodConfig::with_default_threshold(method)).chain(
                method
                    .threshold_grid()
                    .into_iter()
                    .map(move |t| MethodConfig::new(method, t)),
            )
        })
        .collect()
}

/// Asserts indexed ≡ linear-scan ≡ reference on every rank of `app`,
/// including the match-counter reconciliation: the index visits a subset
/// of the reference's comparisons and accounts for every skipped candidate
/// in its prune counters.
fn assert_rank_equivalence(config: MethodConfig, app: &AppTrace, context: &str) {
    let indexed = Reducer::with_search(config, CandidateSearch::Indexed);
    let linear = Reducer::with_search(config, CandidateSearch::LinearScan);
    for rank in &app.ranks {
        let reference = reduce_rank_reference(config, rank);
        let fast = indexed.reduce_rank(rank);
        let scan = linear.reduce_rank(rank);
        // The reduced traces are bit-identical on all three paths; the
        // *stats breakdowns* legitimately differ (the index resolves some
        // candidates by window/pivot prune where the scan used a
        // prefilter), which is what the counter identities below audit.
        assert_eq!(fast.reduced, scan.reduced, "indexed vs linear: {context}");
        assert_eq!(fast.reduced, reference.reduced, "indexed vs ref: {context}");
        assert_eq!(fast.segmentation, scan.segmentation, "{context}");
        if config.method.is_distance_method() {
            // Counter identity: every candidate the reference compared is
            // either visited or attributed to a window / pivot prune.
            assert_eq!(
                fast.matching.candidates(),
                reference.matching.comparisons,
                "candidates: {context}"
            );
            assert_eq!(
                scan.matching.comparisons, reference.matching.comparisons,
                "scan comparisons: {context}"
            );
            assert_eq!(
                scan.matching.candidates(),
                scan.matching.comparisons,
                "the linear scan must not report index prunes: {context}"
            );
            assert_eq!(
                fast.matching.matches, reference.matching.matches,
                "matches: {context}"
            );
            assert_eq!(
                fast.matching.eligible, reference.matching.eligible,
                "eligible: {context}"
            );
            assert!(
                fast.matching.comparisons <= fast.matching.eligible,
                "visited cannot exceed the eligible candidate set: {context}"
            );
            assert!(
                fast.matching.full_kernels <= reference.matching.full_kernels,
                "full kernels: {context}"
            );
        }
    }
}

#[test]
fn indexed_path_is_bit_identical_on_workloads_across_the_threshold_grid() {
    for kind in [
        WorkloadKind::LateSender,
        WorkloadKind::DynLoadBalance,
        WorkloadKind::Sweep3d8p,
    ] {
        let app = Workload::new(kind, SizePreset::Tiny).generate();
        for config in all_configs() {
            assert_rank_equivalence(
                config,
                &app,
                &format!("{} on {}", config.label(), kind.name()),
            );
        }
    }
}

#[test]
fn parallel_driver_with_index_matches_reference_and_aggregates_counters() {
    let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    for method in Method::ALL {
        let config = MethodConfig::with_default_threshold(method);
        let reducer = Reducer::with_search(config, CandidateSearch::Indexed);
        let reference = reduce_app_reference(config, &app);
        let (sequential, seq_stats) = reducer.reduce_app_with_stats(&app);
        assert_eq!(sequential, reference, "{method} sequential");
        for threads in [2, 8] {
            let (parallel, stats) = reduce_app_parallel_with_stats(&reducer, &app, threads);
            assert_eq!(parallel, reference, "{method} with {threads} threads");
            // Rank counters are deterministic and rank-independent, so the
            // parallel aggregate equals the sequential aggregate exactly.
            assert_eq!(stats, seq_stats, "{method} stats with {threads} threads");
        }
    }
}

/// Builds a one-rank trace where every segment holds a single compute
/// event spanning the whole segment, so all segments share one
/// [`trace_model::SegmentKey`] (one candidate bucket) and the measurement
/// vector is `(d, 0, d)` for a duration of `d` nanoseconds.
fn rank_of_durations(durations_ns: &[u64]) -> AppTrace {
    let mut app = AppTrace::new("ordering", 1);
    let region = app.regions.intern("kernel");
    let context = app.contexts.intern("loop.main");
    let rank = &mut app.ranks[0];
    let mut now = 0u64;
    for &d in durations_ns {
        rank.begin_segment(context, Time::from_nanos(now));
        rank.push_event(Event::compute(
            region,
            Time::from_nanos(now),
            Time::from_nanos(now + d),
        ));
        rank.end_segment(context, Time::from_nanos(now + d));
        now += d + 1_000;
    }
    app
}

/// A rebased standalone segment matching the shape produced by
/// [`rank_of_durations`], for probing metrics directly with
/// [`trace_reduce::segments_match`].
fn segment_of_duration(d: u64) -> trace_model::Segment {
    trace_model::Segment {
        context: trace_model::ContextId(0),
        start: Time::ZERO,
        end: Time::from_nanos(d),
        events: vec![Event::compute(RegionId(0), Time::ZERO, Time::from_nanos(d))],
    }
}

/// Finds a threshold at which the two stored candidates `a` and `b` do
/// *not* match each other (so both get stored) while *both* accept the
/// probe `c` — the adversarial setup where first-match and nearest-match
/// semantics disagree.  Panics if no such threshold exists for `method`.
fn threshold_where_both_accept(method: Method, a: u64, b: u64, c: u64) -> f64 {
    let (sa, sb, sc) = (
        segment_of_duration(a),
        segment_of_duration(b),
        segment_of_duration(c),
    );
    let mut t = 0.001f64;
    while t < 100.0 {
        let config = MethodConfig::new(method, t);
        if !trace_reduce::segments_match(&config, &sa, &sb)
            && trace_reduce::segments_match(&config, &sa, &sc)
            && trace_reduce::segments_match(&config, &sb, &sc)
        {
            return t;
        }
        t *= 1.02;
    }
    panic!("no adversarial threshold for {method} over ({a}, {b}, {c})");
}

/// Bucket padding for the adversarial ordering tests: durations spaced 16×
/// apart, far above the 100–136 µs band the probes live in, so none of
/// them matches anything at the small calibrated thresholds.  Prepending
/// them grows the candidate bucket past the index's small-bucket fallback
/// (which scans in insertion order by construction), forcing the ordering
/// assertions through the real window + pivot machinery.
const ORDER_PADS: [u64; 6] = [
    1_600_000,
    25_600_000,
    409_600_000,
    6_553_600_000,
    104_857_600_000,
    1_677_721_600_000,
];

#[test]
fn index_returns_the_first_inserted_match_not_the_nearest() {
    // Stored after the pads: A = 100 µs, then B = 130 µs.  Probe C = 118 µs
    // is strictly nearer to B under every distance metric, but the paper's
    // scan takes the first stored match in insertion order — A.
    let (a, b, c) = (100_000u64, 130_000, 118_000);
    let mut durations = ORDER_PADS.to_vec();
    durations.extend([a, b, c]);
    let app = rank_of_durations(&durations);
    let rank = &app.ranks[0];
    let a_id = ORDER_PADS.len() as u32;
    for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
        let config = MethodConfig::new(method, threshold_where_both_accept(method, a, b, c));
        let reference = reduce_rank_reference(config, rank);
        // Sanity: every pad plus A and B is stored, and the probe matches
        // the *first* of the pair (A) even though B also accepts it.
        assert_eq!(
            reference.reduced.stored_count(),
            a_id as usize + 2,
            "{method}"
        );
        assert_eq!(
            reference.reduced.execs[a_id as usize + 2].segment,
            a_id,
            "{method}"
        );
        let indexed = Reducer::with_search(config, CandidateSearch::Indexed).reduce_rank(rank);
        assert_eq!(indexed.reduced, reference.reduced, "{method}");
        assert_eq!(
            indexed.reduced.execs[a_id as usize + 2].segment,
            a_id,
            "{method}"
        );
    }
}

#[test]
fn equidistant_candidates_resolve_to_the_earliest_insertion() {
    // A = 100 µs and B = 136 µs are *exactly* equidistant from the probe
    // C = 118 µs under every absolute metric (and B is strictly nearer
    // under relDiff); the tie must go to the earlier insertion.  The
    // second trace stores them in the opposite order (B first), where the
    // index's duration-sorted internal order disagrees with insertion
    // order — the tie must then go to B (still the earlier insertion).
    for (a, b) in [(100_000u64, 136_000), (136_000u64, 100_000)] {
        let c = 118_000u64;
        let mut durations = ORDER_PADS.to_vec();
        durations.extend([a, b, c]);
        let app = rank_of_durations(&durations);
        let rank = &app.ranks[0];
        let a_id = ORDER_PADS.len() as u32;
        for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
            let config = MethodConfig::new(method, threshold_where_both_accept(method, a, b, c));
            let reference = reduce_rank_reference(config, rank);
            assert_eq!(
                reference.reduced.stored_count(),
                a_id as usize + 2,
                "{method}"
            );
            assert_eq!(
                reference.reduced.execs[a_id as usize + 2].segment,
                a_id,
                "{method}"
            );
            let indexed = Reducer::with_search(config, CandidateSearch::Indexed).reduce_rank(rank);
            assert_eq!(indexed.reduced, reference.reduced, "{method}");
        }
    }
}

#[test]
fn threshold_boundary_decisions_survive_the_index() {
    // Thresholds straddling the exact accept/reject boundary of the probe
    // against its nearest stored candidate.  Whatever the kernel decides
    // at these knife-edge thresholds, the indexed path must decide
    // identically — its window and pivot bounds may only be *wider* than
    // the kernel's acceptance region, never narrower.  (Padded past the
    // small-bucket fallback so the window actually runs.)
    let mut durations = ORDER_PADS.to_vec();
    durations.extend([100_000, 130_000, 118_000]);
    let app = rank_of_durations(&durations);
    for method in Method::ALL.into_iter().filter(|m| m.is_distance_method()) {
        // For the methods with a closed-form bound against the probe's
        // nearest candidate (B = 130 µs, 12 µs away per coordinate), pin
        // the *exact* boundary threshold; otherwise sweep a geometric
        // grid that crosses the boundary somewhere.
        let boundary = match method {
            Method::Manhattan => Some(24_000.0 / 130_000.0),
            Method::Euclidean => Some((2.0f64).sqrt() * 12_000.0 / 130_000.0),
            Method::Chebyshev => Some(12_000.0 / 130_000.0),
            Method::AbsDiff => Some(12.0), // µs limit == the 12 000 ns gap
            _ => None,
        };
        let thresholds: Vec<f64> = match boundary {
            Some(t) => [
                1.0 - 1e-9,
                1.0 - 1e-15,
                1.0,
                1.0 + 1e-15,
                1.0 + 1e-9,
                0.5,
                2.0,
            ]
            .into_iter()
            .map(|scale| t * scale)
            .collect(),
            None => (0..20).map(|i| 0.01 * 1.3f64.powi(i)).collect(),
        };
        for threshold in thresholds {
            let config = MethodConfig::new(method, threshold);
            assert_rank_equivalence(config, &app, &format!("{method} at {threshold}"));
        }
    }
}

/// The PR 5 counterexample family scaled to a whole candidate bucket:
/// 1500-event segments with timestamps up to 7.5·10¹² ns, whose L1 norms
/// (~1.1·10¹⁶) sit above 2⁵³ where one ulp is 2 ns.  `delta` shifts every
/// event end, so two members at deltas `d₁, d₂` differ by `1500·|d₁ − d₂|`
/// in L1 — with all segment durations *equal*, so the duration window
/// admits everything and correctness rests entirely on the origin-norm
/// and representative-pivot bounds.
fn large_norm_segment_events(delta: u64) -> Vec<Event> {
    (0..1500u64)
        .map(|i| {
            let start = i * 5_000_000_000;
            let end = start + 3_999_999_000 + delta;
            Event::compute(
                RegionId((i % 4) as u32),
                Time::from_nanos(start),
                Time::from_nanos(end),
            )
        })
        .collect()
}

fn large_norm_bucket_trace(deltas: &[u64]) -> AppTrace {
    let mut app = AppTrace::new("pivot-slack", 1);
    let region_names: Vec<_> = (0..4).map(|i| format!("r{i}")).collect();
    for name in &region_names {
        app.regions.intern(name);
    }
    let context = app.contexts.intern("loop.big");
    let duration = 1500 * 5_000_000_000u64;
    let rank = &mut app.ranks[0];
    let mut now = 0u64;
    for &delta in deltas {
        rank.begin_segment(context, Time::from_nanos(now));
        for event in large_norm_segment_events(delta) {
            rank.push_event(Event::compute(
                event.region,
                event.start + Time::from_nanos(now),
                event.end + Time::from_nanos(now),
            ));
        }
        rank.end_segment(context, Time::from_nanos(now + duration));
        now += duration + 1_000_000;
    }
    app
}

const METRIC_METHODS: [Method; 5] = [
    Method::Manhattan,
    Method::Euclidean,
    Method::Chebyshev,
    Method::AvgWave,
    Method::HaarWave,
];

#[test]
fn pivot_bounds_are_admissible_for_long_large_timestamp_segments() {
    // Ten stored representatives (≥ the pivot-engagement bucket size, so
    // the first four serve as triangle-inequality pivots) separated by
    // 1 ms steps, then three probes 3 ns off stored members — the exact
    // regime where PR 5 showed a multiplicative margin on a norm gap is
    // inadmissible.  Bounds sweep the ns-scale decision boundaries of
    // every metric (Chebyshev flips at 3 ns, Euclidean at ~116 ns,
    // Manhattan at 4 500 ns).
    let deltas: Vec<u64> = (0..10u64)
        .map(|i| i * 1_000_000)
        .chain([3u64, 2_000_003, 9_000_003])
        .collect();
    let app = large_norm_bucket_trace(&deltas);
    let max = 1500.0 * 5.0e9; // the largest measurement (segment end)
    for method in METRIC_METHODS {
        for bound_ns in [
            1.0f64, 2.0, 3.0, 3.5, 4.0, 115.0, 117.0, 4_499.0, 4_500.0, 4_501.0, 1e6,
        ] {
            let config = MethodConfig::new(method, bound_ns / max);
            assert_rank_equivalence(config, &app, &format!("{method} at a {bound_ns} ns bound"));
        }
    }
}

#[test]
fn duration_window_is_admissible_for_large_duration_gaps() {
    // Committed counterexample for the window endpoint arithmetic: with a
    // center (duration) near 7.5·10¹² and a threshold whose exact bound
    // is a few ns, computing `center − τ·extent` cancels catastrophically
    // — a window widened only by a *result*-scaled epsilon would exclude
    // a boundary match the kernel accepts.  Durations 3 ns apart at that
    // magnitude must match or mismatch identically through the index.
    // Enough family members that the stored set crosses the small-bucket
    // fallback at the ns-scale bounds where nothing matches.
    let base = 7_500_000_000_000u64;
    let app = rank_of_durations(&[
        base,
        base + 3,
        base + 7,
        base + 13,
        base + 29,
        base + 1_000_000,
        base + 1_000_003,
        base + 1_000_010,
        base + 500_000_000,
        base + 2_000_000_003,
        base + 2_000_000_010,
        base + 2_500_000_000,
    ]);
    for method in METRIC_METHODS {
        for bound_ns in [1.0f64, 2.0, 3.0, 4.0, 6.0, 7.0, 1e6] {
            let config = MethodConfig::new(method, bound_ns / base as f64);
            assert_rank_equivalence(config, &app, &format!("{method} at a {bound_ns} ns bound"));
        }
    }
}

fn specs_strategy() -> impl Strategy<Value = Vec<Vec<SegmentSpec>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..4, 0u8..4, 0u16..2000), 0..12),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn indexed_path_is_bit_identical_on_random_traces(rank_specs in specs_strategy()) {
        let app = trace_from_specs("indexed", &rank_specs);
        prop_assert!(app.is_well_formed());
        for config in all_configs() {
            assert_rank_equivalence(config, &app, &config.label());
        }
    }

    #[test]
    fn indexed_path_is_bit_identical_at_random_thresholds(
        rank_specs in specs_strategy(),
        threshold in 0.0..2.0f64,
    ) {
        let app = trace_from_specs("indexed", &rank_specs);
        for method in Method::ALL {
            let config = MethodConfig::new(method, threshold);
            assert_rank_equivalence(config, &app, &format!("{method} at {threshold}"));
        }
    }

    #[test]
    fn pivot_pruning_is_admissible_under_accumulation_error(
        deltas in prop::collection::vec(0u64..1_000_000_000, 9..13),
        probe_offset in 0u64..8,
        probe_jitter in 0u64..16,
        bound_ns in 1.0..10_000.0f64,
    ) {
        // Random large-norm buckets: enough members to engage the
        // representative pivots, a probe a few ns off a random stored
        // member, and a random ns-scale bound.  Every decision the
        // kernels make must survive the pivot bounds bit-identically.
        let mut all: Vec<u64> = deltas.clone();
        let target = deltas[(probe_offset as usize) % deltas.len()];
        all.push(target.saturating_add(probe_jitter));
        let app = large_norm_bucket_trace(&all);
        let max = 1500.0 * 5.0e9;
        for method in METRIC_METHODS {
            let config = MethodConfig::new(method, bound_ns / max);
            assert_rank_equivalence(config, &app, &format!("{method} at {bound_ns} ns"));
        }
    }
}
