//! Property-based tests for the reduction algorithm's invariants.
//!
//! These hold for every similarity method and every threshold:
//!
//! * the execution log has exactly one entry per segment instance, in order;
//! * every execution references a stored representative with the same
//!   structural key as the original instance;
//! * reconstruction preserves the number of segments and events per rank;
//! * the degree of matching is in `[0, 1]`;
//! * representatives are never duplicated beyond what the method allows
//!   (`iter_avg` keeps exactly one per key).

use proptest::prelude::*;

use trace_model::{ContextId, Event, Rank, RankTrace, RegionId, Time};
use trace_reduce::{segments_of_rank, Method, MethodConfig, Reducer};

/// Builds a synthetic rank trace from a list of iterations, each described
/// by `(context, event durations)`.
fn build_trace(iterations: &[(u8, Vec<u16>)]) -> RankTrace {
    let mut rt = RankTrace::new(Rank(0));
    let mut now = 0u64;
    for (ctx, durations) in iterations {
        let ctx = ContextId(u32::from(*ctx % 3));
        rt.begin_segment(ctx, Time::from_nanos(now));
        now += 7;
        for (i, &d) in durations.iter().enumerate() {
            let start = now;
            let end = now + u64::from(d) + 1;
            rt.push_event(Event::compute(
                RegionId(i as u32 % 4),
                Time::from_nanos(start),
                Time::from_nanos(end),
            ));
            now = end;
        }
        now += 3;
        rt.end_segment(ctx, Time::from_nanos(now));
        now += 11;
    }
    rt
}

fn iterations_strategy() -> impl Strategy<Value = Vec<(u8, Vec<u16>)>> {
    prop::collection::vec(
        (any::<u8>(), prop::collection::vec(1u16..5000, 1..6)),
        1..40,
    )
}

fn method_strategy() -> impl Strategy<Value = MethodConfig> {
    prop_oneof![
        (0.0..1.5f64).prop_map(|t| MethodConfig::new(Method::RelDiff, t)),
        (0.0..2000.0f64).prop_map(|t| MethodConfig::new(Method::AbsDiff, t / 1000.0)),
        (0.0..1.5f64).prop_map(|t| MethodConfig::new(Method::Manhattan, t)),
        (0.0..1.5f64).prop_map(|t| MethodConfig::new(Method::Euclidean, t)),
        (0.0..1.5f64).prop_map(|t| MethodConfig::new(Method::Chebyshev, t)),
        (0.0..1.5f64).prop_map(|t| MethodConfig::new(Method::AvgWave, t)),
        (0.0..1.5f64).prop_map(|t| MethodConfig::new(Method::HaarWave, t)),
        (1.0..20.0f64).prop_map(|k| MethodConfig::new(Method::IterK, k)),
        Just(MethodConfig::with_default_threshold(Method::IterAvg)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exec_log_mirrors_segment_instances(
        iterations in iterations_strategy(),
        config in method_strategy(),
    ) {
        let trace = build_trace(&iterations);
        let segments = segments_of_rank(&trace);
        let reduced = Reducer::new(config).reduce_rank(&trace).reduced;

        prop_assert_eq!(reduced.exec_count(), segments.len());
        // Execution starts appear in the original order with the original
        // absolute start times.
        for (exec, segment) in reduced.execs.iter().zip(&segments) {
            prop_assert_eq!(exec.start, segment.start);
        }
        prop_assert!(reduced.stored_count() <= reduced.exec_count());
        prop_assert!(reduced.stored_count() >= 1);
    }

    #[test]
    fn every_exec_references_a_matching_key(
        iterations in iterations_strategy(),
        config in method_strategy(),
    ) {
        let trace = build_trace(&iterations);
        let segments = segments_of_rank(&trace);
        let reduced = Reducer::new(config).reduce_rank(&trace).reduced;
        // iter_avg representatives carry averaged timings, so only compare
        // structural keys, which must always be preserved.
        for (exec, segment) in reduced.execs.iter().zip(&segments) {
            let stored = reduced.stored_segment(exec.segment).expect("exec id must resolve");
            prop_assert_eq!(stored.segment.key(), segment.key());
        }
    }

    #[test]
    fn degree_of_matching_is_a_fraction(
        iterations in iterations_strategy(),
        config in method_strategy(),
    ) {
        let trace = build_trace(&iterations);
        let reduced = Reducer::new(config).reduce_rank(&trace).reduced;
        let dom = reduced.degree_of_matching();
        prop_assert!((0.0..=1.0).contains(&dom), "degree of matching {dom}");
    }

    #[test]
    fn reconstruction_preserves_structure(
        iterations in iterations_strategy(),
        config in method_strategy(),
    ) {
        let trace = build_trace(&iterations);
        let reduced = Reducer::new(config).reduce_rank(&trace).reduced;
        let rebuilt = reduced.reconstruct();
        prop_assert_eq!(rebuilt.segment_instance_count(), trace.segment_instance_count());
        prop_assert_eq!(rebuilt.event_count(), trace.event_count());
    }

    #[test]
    fn iter_avg_keeps_exactly_one_representative_per_key(
        iterations in iterations_strategy(),
    ) {
        let trace = build_trace(&iterations);
        let segments = segments_of_rank(&trace);
        let distinct_keys: std::collections::HashSet<_> =
            segments.iter().map(|s| s.key()).collect();
        let reduced = Reducer::with_default_threshold(Method::IterAvg)
            .reduce_rank(&trace)
            .reduced;
        prop_assert_eq!(reduced.stored_count(), distinct_keys.len());
    }

    #[test]
    fn iter_k_never_stores_more_than_k_per_key(
        iterations in iterations_strategy(),
        k in 1usize..12,
    ) {
        let trace = build_trace(&iterations);
        let reduced = Reducer::new(MethodConfig::new(Method::IterK, k as f64))
            .reduce_rank(&trace)
            .reduced;
        let mut per_key: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for stored in &reduced.stored {
            *per_key.entry(stored.segment.key()).or_default() += 1;
        }
        for (_, count) in per_key {
            prop_assert!(count <= k);
        }
    }

    #[test]
    fn zero_threshold_reduces_to_exact_duplicate_matching(
        iterations in iterations_strategy(),
    ) {
        // With a zero threshold the distance methods only match segments
        // whose measurement vectors are identical; representatives must
        // therefore be pairwise different or identical to their instances.
        let trace = build_trace(&iterations);
        let segments = segments_of_rank(&trace);
        let reduced = Reducer::new(MethodConfig::new(Method::Euclidean, 0.0))
            .reduce_rank(&trace)
            .reduced;
        // Each exec must reference a representative with an identical
        // measurement vector.
        for (exec, segment) in reduced.execs.iter().zip(&segments) {
            let stored = reduced.stored_segment(exec.segment).unwrap();
            prop_assert_eq!(stored.segment.measurement_vector(), segment.measurement_vector());
        }
    }

    #[test]
    fn looser_thresholds_never_store_more_for_reldiff_single_context(
        durations in prop::collection::vec(1u16..5000, 2..30),
    ) {
        // Restricted monotonicity check: one context, one event per segment.
        let iterations: Vec<(u8, Vec<u16>)> = durations.iter().map(|&d| (0u8, vec![d])).collect();
        let trace = build_trace(&iterations);
        let tight = Reducer::new(MethodConfig::new(Method::RelDiff, 0.05))
            .reduce_rank(&trace)
            .reduced;
        let loose = Reducer::new(MethodConfig::new(Method::RelDiff, 0.9))
            .reduce_rank(&trace)
            .reduced;
        prop_assert!(loose.stored_count() <= tight.stored_count());
    }
}
