//! Parallel per-rank reduction.
//!
//! The paper's technique is strictly intra-process: each rank's trace is
//! reduced independently and the per-rank results are merged afterwards.
//! That makes the reduction embarrassingly parallel over ranks, which this
//! module exploits with crossbeam scoped threads.  Results are collected
//! into a pre-sized slot table guarded by a `parking_lot::Mutex`, so rank
//! order is preserved regardless of which worker finishes first.

use crossbeam::thread;
use parking_lot::Mutex;

use trace_model::{AppTrace, ReducedAppTrace, ReducedRankTrace};

use crate::features::{MatchScratch, MatchStats};
use crate::reducer::Reducer;

/// Runs `work(worker_index)` on `workers` crossbeam scoped threads and
/// joins them all.  A worker count of 0 or 1 runs `work(0)` on the calling
/// thread.  This is the scoped-thread fan-out shared by the in-memory
/// parallel reduction below and the sharded streaming driver in the
/// `trace_stream` crate.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn scoped_workers<F>(workers: usize, work: F)
where
    F: Fn(usize) + Sync,
{
    if workers <= 1 {
        work(0);
        return;
    }
    thread::scope(|scope| {
        for worker in 0..workers {
            let work = &work;
            scope.spawn(move |_| work(worker));
        }
    })
    .expect("scoped worker panicked");
}

/// Reduces every rank of `app` in parallel using up to `threads` worker
/// threads (values of 0 or 1 fall back to the sequential path).
///
/// The output is identical to [`Reducer::reduce_app`]; parallelism only
/// changes wall-clock time, never the result, because ranks are independent.
pub fn reduce_app_parallel(reducer: &Reducer, app: &AppTrace, threads: usize) -> ReducedAppTrace {
    reduce_app_parallel_with_stats(reducer, app, threads).0
}

/// Like [`reduce_app_parallel`], but also returns the aggregated
/// similarity-matching counters (visited comparisons, prefilter hits and
/// index prunes summed over every rank).  The counter totals are identical
/// to the sequential [`Reducer::reduce_app_with_stats`] — ranks are
/// independent and each rank's counters are deterministic — only the order
/// in which workers produced them differs.
pub fn reduce_app_parallel_with_stats(
    reducer: &Reducer,
    app: &AppTrace,
    threads: usize,
) -> (ReducedAppTrace, MatchStats) {
    reduce_app_parallel_obs(reducer, app, threads, &trace_obs::Recorder::disabled())
}

/// Like [`reduce_app_parallel_with_stats`], recording per-rank stage spans
/// into one [`trace_obs::ObsShard`] per worker and draining the merged
/// matching counters into the recorder once (so shards never double-count).
/// With a disabled recorder this is exactly
/// [`reduce_app_parallel_with_stats`].
pub fn reduce_app_parallel_obs(
    reducer: &Reducer,
    app: &AppTrace,
    threads: usize,
    recorder: &trace_obs::Recorder,
) -> (ReducedAppTrace, MatchStats) {
    let n_ranks = app.rank_count();
    if threads <= 1 || n_ranks <= 1 {
        return reducer.reduce_app_obs(app, recorder);
    }

    let slots: Vec<Mutex<Option<ReducedRankTrace>>> =
        (0..n_ranks).map(|_| Mutex::new(None)).collect();
    let total_stats = Mutex::new(MatchStats::default());
    let next = std::sync::atomic::AtomicUsize::new(0);

    scoped_workers(threads.min(n_ranks), |_| {
        // One match scratch per worker: the feature buffers grow to the
        // largest segment once and are reused across every rank this
        // worker reduces.  Likewise one obs shard per worker, flushed into
        // the recorder when the worker finishes.
        let mut scratch = MatchScratch::new();
        let mut worker_stats = MatchStats::default();
        let mut obs = recorder.shard();
        loop {
            let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if index >= n_ranks {
                break;
            }
            let reduction =
                reducer.reduce_rank_with_scratch_obs(&app.ranks[index], &mut scratch, &mut obs);
            worker_stats.absorb(&reduction.matching);
            *slots[index].lock() = Some(reduction.reduced);
        }
        obs.finish();
        total_stats.lock().absorb(&worker_stats);
    });

    let mut reduced = ReducedAppTrace::for_app(app);
    for slot in slots {
        reduced
            .ranks
            .push(slot.into_inner().expect("every rank slot must be filled"));
    }
    let stats = total_stats.into_inner();
    let mut obs = recorder.shard();
    stats.record_into(&mut obs);
    obs.finish();
    (reduced, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    #[test]
    fn parallel_reduction_matches_sequential_result() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        for method in [
            Method::AvgWave,
            Method::RelDiff,
            Method::IterAvg,
            Method::IterK,
        ] {
            let reducer = Reducer::with_default_threshold(method);
            let sequential = reducer.reduce_app(&app);
            for threads in [2, 4, 16] {
                let parallel = reduce_app_parallel(&reducer, &app, threads);
                assert_eq!(sequential, parallel, "{method} with {threads} threads");
            }
        }
    }

    #[test]
    fn degenerate_thread_counts_fall_back_to_sequential() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let reducer = Reducer::with_default_threshold(Method::Euclidean);
        let sequential = reducer.reduce_app(&app);
        assert_eq!(reduce_app_parallel(&reducer, &app, 0), sequential);
        assert_eq!(reduce_app_parallel(&reducer, &app, 1), sequential);
    }

    #[test]
    fn more_threads_than_ranks_is_fine() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let reducer = Reducer::with_default_threshold(Method::Manhattan);
        let parallel = reduce_app_parallel(&reducer, &app, 64);
        assert_eq!(parallel.rank_count(), app.rank_count());
    }
}
