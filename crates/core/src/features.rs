//! Cached per-segment features and allocation-free similarity kernels.
//!
//! The stored-segments algorithm (Section 3.1) compares every incoming
//! segment against the stored representatives that share its structural
//! key.  The naive predicates in [`crate::metric`] rebuild measurement
//! vectors — and, for the wavelet methods, re-run the full transform on
//! *both* segments — for every candidate comparison.  This module removes
//! that repeated work without changing a single match decision:
//!
//! * [`SegmentFeatures`] caches, per segment, everything the configured
//!   method reads: the measurement vector with its maximum, duration and
//!   L1/L2 norms, or the wavelet coefficients with their largest absolute
//!   value.  Stored representatives compute features once at store time;
//!   incoming segments compute them once per segment (not per candidate).
//! * [`MatchScratch`] owns the reusable buffers (and the running
//!   [`MatchStats`]), so a whole rank — or, via
//!   [`crate::reducer::OnlineRankReducer::with_scratch`], a whole stream of
//!   ranks — is matched without per-comparison allocations.
//! * [`segments_match_cached`] runs cheap *admissible* prefilters before
//!   any full kernel (per-method lower bounds from the segment duration,
//!   the cached norms and the leading wavelet coefficient that prove
//!   `distance > threshold · scale` in O(1)), then early-abandoning kernels
//!   that stop as soon as the running sum alone exceeds the bound.
//!
//! # Equivalence discipline
//!
//! The acceptance bar for this fast path is *bit-identical* reduced traces,
//! so every shortcut is justified against the exact floating-point
//! behaviour of the naive predicates, not against real-number algebra:
//!
//! * **Shared scalar kernels.**  The full kernels accumulate the very same
//!   expressions, in the same order, as [`trace_model::stats`] /
//!   [`trace_wavelet::coefficient_distance`], so a comparison that is not
//!   pruned produces the identical distance value.
//! * **Monotone partial sums.**  Adding a non-negative f64 term never
//!   decreases a rounded-to-nearest sum, and `sqrt`/division by a positive
//!   constant are monotone; therefore a partial sum (or per-row DTW
//!   minimum) that already exceeds the bound proves the completed naive
//!   distance does too.  Early abandons only ever fire on comparisons the
//!   naive predicate also rejects.
//! * **Exact duration prefilters.**  The first entry of the measurement
//!   vector is the segment duration, so the duration lower bounds are
//!   literally the first term of the naive computation, compared with the
//!   identical bound value.
//! * **Slacked norm prefilters.**  The reverse triangle inequality
//!   (`|‖a‖ − ‖b‖| ≤ ‖a − b‖`) holds for exact reals, but the computed
//!   L1/L2 norms carry accumulation error proportional to the norm
//!   *magnitude* — which can exceed a small gap outright for long
//!   segments with large timestamps.  The gap is therefore reduced by the
//!   absolute `norm_gap_slack` (a multiple of `n · ε · (‖a‖ + ‖b‖)`) and
//!   compared against a bound inflated by the distance computation's own
//!   worst-case accumulation factor, restoring a provable implication
//!   "prefilter rejects ⇒ naive kernel rejects".  The sup-norm
//!   (Chebyshev) gap involves no accumulation, so a relative
//!   `SUP_GAP_MARGIN` suffices there.
//!
//! The pre-PR code path is preserved as
//! [`crate::reducer::reduce_rank_reference`]; the property tests in
//! `tests/fast_path_equivalence.rs` drive both paths across all nine
//! methods and a threshold grid and require identical output.

use trace_model::{stats, Segment};
use trace_wavelet::{max_abs_coefficient, WaveletKind};

use crate::method::{Method, MethodConfig};
use crate::metric::abs_diff_limit;

/// Safety factor applied to the *sup-norm* (single-value) gap lower bound.
/// The cached maxima are exact folds of input values, their subtraction is
/// correctly rounded, and every Chebyshev distance term is a correctly
/// rounded single subtraction — all errors are relative to the quantities
/// being compared, so shrinking by one part in 10⁹ (versus a worst case of
/// a few parts in 10¹⁶) makes the float comparison admissible.  This
/// reasoning does NOT extend to the accumulated L1/L2 norms, whose error
/// is relative to the norm *magnitude*; those prefilters use the additive
/// [`norm_gap_slack`] instead.
const SUP_GAP_MARGIN: f64 = 1.0 - 1e-9;

/// Absolute slack for the accumulated-norm gap prefilters.
///
/// An `n`-term norm accumulation carries rounding error bounded by
/// `~n · ε` *relative to the norm magnitude* — for long segments with
/// large timestamps that absolute error can exceed a small norm gap
/// entirely, so a multiplicative margin on the gap is not admissible (two
/// near-identical hour-long segments have norms ~10¹⁶ whose last-ulp
/// rounding is ~2 ns, larger than a few-ns distance bound).  Subtracting
/// `4 · n · ε · (‖a‖ + ‖b‖)` — double the worst-case accumulation error of
/// both norms combined — restores a provable lower bound on the exact gap,
/// and the comparison side inflates the threshold bound by the matching
/// `1 + 4 · n · ε` to absorb the distance computation's own accumulation
/// error.
pub(crate) fn norm_gap_slack(n: usize, norm_a: f64, norm_b: f64) -> f64 {
    4.0 * n as f64 * f64::EPSILON * (norm_a + norm_b)
}

/// The comparison-side inflation factor paired with [`norm_gap_slack`].
/// Shared with the candidate index ([`crate::index`]), whose pivot bounds
/// generalize the norm prefilters (a norm is the distance to the zero
/// vector — a pivot that happens to be cached).
pub(crate) fn distance_error_factor(n: usize) -> f64 {
    1.0 + 4.0 * n as f64 * f64::EPSILON
}

/// Which cached features a similarity method consumes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FeatureKind {
    /// Iteration-based methods: no similarity kernel, no features.
    None,
    /// Measurement-vector methods (relDiff, absDiff, Minkowski family).
    Measurements,
    /// Wavelet methods: transformed time-stamp vector.
    Wavelet(WaveletKind),
}

/// The features the given method reads during matching.
pub(crate) fn feature_kind(method: Method) -> FeatureKind {
    match method {
        Method::RelDiff
        | Method::AbsDiff
        | Method::Manhattan
        | Method::Euclidean
        | Method::Chebyshev => FeatureKind::Measurements,
        Method::AvgWave => FeatureKind::Wavelet(WaveletKind::Average),
        Method::HaarWave => FeatureKind::Wavelet(WaveletKind::Haar),
        Method::IterK | Method::IterAvg => FeatureKind::None,
    }
}

/// Per-segment feature cache: everything a similarity method reads about
/// one side of a comparison, computed once instead of once per candidate.
///
/// Only the fields the configured method needs are populated (the
/// measurement-vector family fills the vector/norm fields, the wavelet
/// methods the coefficient fields); the unused representation stays
/// empty.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SegmentFeatures {
    /// The measurement vector ([`Segment::measurement_vector`]).
    pub(crate) measurements: Vec<f64>,
    /// Largest measurement (`stats::max` over `measurements`).
    pub(crate) max_measurement: f64,
    /// Segment duration — `measurements[0]`, the first value every
    /// measurement-vector kernel compares.
    pub(crate) duration: f64,
    /// L1 norm of the measurement vector (sum of absolute values).
    pub(crate) norm_l1: f64,
    /// L2 norm of the measurement vector.
    pub(crate) norm_l2: f64,
    /// Wavelet coefficients of the time-stamp vector for the configured
    /// transform ([`Segment::wavelet_vector`] padded and transformed).
    pub(crate) coeffs: Vec<f64>,
    /// Largest absolute wavelet coefficient.
    pub(crate) coeff_max_abs: f64,
    /// L2 norm of the coefficient vector — the coefficient distance to the
    /// zero vector, used by the candidate index's origin pivot.
    pub(crate) coeff_norm_l2: f64,
}

impl SegmentFeatures {
    /// Computes the features `config.method` needs for `segment`.
    ///
    /// Convenience constructor for tests and benches; the reduction loop
    /// itself goes through [`MatchScratch`] so buffers are reused.
    pub fn for_config(config: &MethodConfig, segment: &Segment) -> SegmentFeatures {
        let mut features = SegmentFeatures::default();
        let mut wavelet_input = Vec::new();
        let mut level_tmp = Vec::new();
        features.fill(
            feature_kind(config.method),
            segment,
            &mut wavelet_input,
            &mut level_tmp,
        );
        features
    }

    /// (Re)computes the features for `segment`, reusing this value's
    /// buffers plus the caller's wavelet scratch.
    fn fill(
        &mut self,
        kind: FeatureKind,
        segment: &Segment,
        wavelet_input: &mut Vec<f64>,
        level_tmp: &mut Vec<f64>,
    ) {
        match kind {
            FeatureKind::None => {
                self.measurements.clear();
                self.coeffs.clear();
            }
            FeatureKind::Measurements => {
                segment.measurement_vector_into(&mut self.measurements);
                // The measurement vector always starts with the segment end
                // time, so it is never empty.
                self.duration = self.measurements[0];
                self.max_measurement = stats::max(&self.measurements);
                self.norm_l1 = self.measurements.iter().map(|v| v.abs()).sum();
                self.norm_l2 = self.measurements.iter().map(|v| v * v).sum::<f64>().sqrt();
                self.coeffs.clear();
            }
            FeatureKind::Wavelet(kind) => {
                segment.wavelet_vector_into(wavelet_input);
                kind.transform_into(wavelet_input, &mut self.coeffs, level_tmp);
                self.coeff_max_abs = max_abs_coefficient(&self.coeffs, &[]);
                self.coeff_norm_l2 = self.coeffs.iter().map(|v| v * v).sum::<f64>().sqrt();
                self.measurements.clear();
            }
        }
    }
}

/// Instrumentation counters for one matching run: how many candidate
/// comparisons ran, and how each was resolved.
///
/// `comparisons = prefilter_rejects + early_abandons + full_kernels`;
/// `matches ≤ full_kernels` (a pruned comparison is always a reject).
///
/// With the candidate index ([`crate::index`]) in front of the match loop,
/// `comparisons` counts only the candidates actually *visited*; the
/// candidates the index skipped are split into `index_window_prunes` and
/// `index_pivot_prunes`.  [`MatchStats::candidates`] reconstructs the
/// number of candidates a plain linear scan would have examined (including
/// its truncation at the first match), so the indexed path's `candidates()`
/// equals the linear scan's `comparisons` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate pairs tested (visited) after shape bucketing and index
    /// pruning.
    pub comparisons: usize,
    /// Comparisons rejected by an O(1) lower bound before any kernel ran.
    pub prefilter_rejects: usize,
    /// Comparisons whose kernel was abandoned mid-loop once the running
    /// sum alone exceeded the threshold bound.
    pub early_abandons: usize,
    /// Comparisons whose kernel ran to completion.
    pub full_kernels: usize,
    /// Comparisons that accepted (always via a completed kernel).
    pub matches: usize,
    /// Candidates skipped unvisited because they fell outside the index's
    /// sorted center window.
    pub index_window_prunes: usize,
    /// Candidates skipped unvisited because an origin/pivot triangle bound
    /// proved they cannot match.
    pub index_pivot_prunes: usize,
    /// Total same-shape stored candidates eligible across all queries (the
    /// summed bucket sizes), regardless of how each scan terminated.  The
    /// denominator of [`MatchStats::visited_fraction`]: a full scan with
    /// no first-match truncation would visit exactly this many.
    pub eligible: usize,
}

impl MatchStats {
    /// Adds the counters of another (e.g. per-rank or per-worker) run.
    pub fn absorb(&mut self, other: &MatchStats) {
        self.comparisons += other.comparisons;
        self.prefilter_rejects += other.prefilter_rejects;
        self.early_abandons += other.early_abandons;
        self.full_kernels += other.full_kernels;
        self.matches += other.matches;
        self.index_window_prunes += other.index_window_prunes;
        self.index_pivot_prunes += other.index_pivot_prunes;
        self.eligible += other.eligible;
    }

    /// Drains these counters into an observability shard under the
    /// canonical `match.*` metric names.  Call once per merged total (not
    /// per rank) so sharded drivers don't double-count.
    pub fn record_into(&self, obs: &mut trace_obs::ObsShard) {
        if !obs.is_enabled() {
            return;
        }
        use trace_obs::names;
        obs.add(names::MATCH_COMPARISONS, self.comparisons as u64);
        obs.add(
            names::MATCH_PREFILTER_REJECTS,
            self.prefilter_rejects as u64,
        );
        obs.add(names::MATCH_EARLY_ABANDONS, self.early_abandons as u64);
        obs.add(names::MATCH_FULL_KERNELS, self.full_kernels as u64);
        obs.add(names::MATCH_MATCHES, self.matches as u64);
        obs.add(
            names::MATCH_INDEX_WINDOW_PRUNES,
            self.index_window_prunes as u64,
        );
        obs.add(
            names::MATCH_INDEX_PIVOT_PRUNES,
            self.index_pivot_prunes as u64,
        );
        obs.add(names::MATCH_ELIGIBLE, self.eligible as u64);
    }

    /// Candidates a linear first-match scan would have examined: the
    /// visited comparisons plus everything the index pruned.
    pub fn candidates(&self) -> usize {
        self.comparisons + self.index_window_prunes + self.index_pivot_prunes
    }

    /// Fraction of *eligible* stored candidates actually visited — the
    /// sub-linearity figure of merit (0.0 when no candidates arose).
    /// First-match truncation already keeps this below 1.0 on a linear
    /// scan; the index has to push it further down.
    pub fn visited_fraction(&self) -> f64 {
        fraction(self.comparisons, self.eligible)
    }

    /// Fraction of scan-equivalent candidates the index skipped unvisited
    /// (relative to what a linear first-match scan would have examined).
    pub fn index_prune_rate(&self) -> f64 {
        fraction(
            self.index_window_prunes + self.index_pivot_prunes,
            self.candidates(),
        )
    }

    /// Fraction of comparisons resolved by a prefilter (0.0 when none ran).
    pub fn prefilter_reject_rate(&self) -> f64 {
        fraction(self.prefilter_rejects, self.comparisons)
    }

    /// Fraction of comparisons resolved by early abandoning.
    pub fn early_abandon_rate(&self) -> f64 {
        fraction(self.early_abandons, self.comparisons)
    }

    /// Fraction of comparisons that never ran a full kernel.
    pub fn pruned_rate(&self) -> f64 {
        fraction(
            self.prefilter_rejects + self.early_abandons,
            self.comparisons,
        )
    }
}

fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Reusable matching state: the incoming segment's features, the wavelet
/// working buffers and the run's [`MatchStats`].
///
/// One scratch serves an entire rank — and survives across ranks via
/// [`crate::reducer::OnlineRankReducer::with_scratch`] /
/// `finish_with_scratch`, so the streaming and parallel drivers allocate a
/// feature buffer set once per worker, not once per segment.
#[derive(Clone, Debug, Default)]
pub struct MatchScratch {
    /// Features of the segment currently being matched.
    pub(crate) incoming: SegmentFeatures,
    /// Time-stamp vector buffer feeding the wavelet transform.
    pub(crate) wavelet_input: Vec<f64>,
    /// Per-level scratch for the in-place wavelet transform.
    pub(crate) level_tmp: Vec<f64>,
    /// Surviving-candidate positions buffer for the candidate index.
    pub(crate) index_buf: Vec<u32>,
    /// Counters accumulated since the last [`MatchScratch::reset_stats`].
    pub(crate) stats: MatchStats,
}

impl MatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Zeroes the counters (buffers keep their capacity).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// Computes the incoming segment's features into the scratch buffers.
    pub(crate) fn prepare_incoming(&mut self, method: Method, segment: &Segment) {
        self.prepare_incoming_kind(feature_kind(method), segment);
    }

    /// Like [`MatchScratch::prepare_incoming`], but for an explicit
    /// [`FeatureKind`] — the cached-predicate drivers of the extended
    /// catalogue use feature kinds with no paper-method name (CDF 9/7).
    pub(crate) fn prepare_incoming_kind(&mut self, kind: FeatureKind, segment: &Segment) {
        let MatchScratch {
            incoming,
            wavelet_input,
            level_tmp,
            ..
        } = self;
        incoming.fill(kind, segment, wavelet_input, level_tmp);
    }

    /// Clones the incoming features into an owned cache entry for a newly
    /// stored representative (the one allocation per stored segment).
    pub(crate) fn clone_incoming(&self) -> SegmentFeatures {
        self.incoming.clone()
    }
}

/// The cached-feature equivalent of [`crate::metric::segments_match`]:
/// decides whether the incoming segment matches a stored representative,
/// using only the two feature caches.
///
/// Returns exactly what the naive predicate returns for the underlying
/// segments (see the module docs for why), while resolving most rejecting
/// comparisons via an O(1) prefilter or an early-abandoned kernel.  The
/// iteration-based methods never reach a similarity kernel and report
/// `true`, mirroring the naive dispatcher.
pub fn segments_match_cached(
    config: &MethodConfig,
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    stats: &mut MatchStats,
) -> bool {
    stats.comparisons += 1;
    let accepted = match config.method {
        Method::RelDiff => rel_diff_cached(incoming, stored, config.threshold, stats),
        Method::AbsDiff => abs_diff_cached(incoming, stored, config.threshold, stats),
        Method::Manhattan => manhattan_cached(incoming, stored, config.threshold, stats),
        Method::Euclidean => euclidean_cached(incoming, stored, config.threshold, stats),
        Method::Chebyshev => chebyshev_cached(incoming, stored, config.threshold, stats),
        Method::AvgWave | Method::HaarWave => {
            wavelet_cached(incoming, stored, config.threshold, stats)
        }
        Method::IterK | Method::IterAvg => {
            stats.full_kernels += 1;
            true
        }
    };
    if accepted {
        stats.matches += 1;
    }
    accepted
}

/// `relDiff`: every paired measurement within `threshold` relative
/// difference.  The duration prefilter *is* the first paired test.
fn rel_diff_cached(
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    threshold: f64,
    stats: &mut MatchStats,
) -> bool {
    if stats::relative_difference(incoming.duration, stored.duration) > threshold {
        stats.prefilter_rejects += 1;
        return false;
    }
    stats.full_kernels += 1;
    incoming
        .measurements
        .iter()
        .zip(&stored.measurements)
        .all(|(&x, &y)| stats::relative_difference(x, y) <= threshold)
}

/// `absDiff`: every paired measurement within `threshold_us` microseconds.
fn abs_diff_cached(
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    threshold_us: f64,
    stats: &mut MatchStats,
) -> bool {
    let limit = abs_diff_limit(threshold_us);
    if (incoming.duration - stored.duration).abs() > limit {
        stats.prefilter_rejects += 1;
        return false;
    }
    stats.full_kernels += 1;
    incoming
        .measurements
        .iter()
        .zip(&stored.measurements)
        .all(|(&x, &y)| (x - y).abs() <= limit)
}

/// Manhattan: L1 distance within `threshold` times the largest measurement.
fn manhattan_cached(
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    threshold: f64,
    stats: &mut MatchStats,
) -> bool {
    let bound = threshold * incoming.max_measurement.max(stored.max_measurement);
    // |Δduration| is the first term of the L1 sum: an exact lower bound.
    if (incoming.duration - stored.duration).abs() > bound {
        stats.prefilter_rejects += 1;
        return false;
    }
    // Reverse triangle inequality on the cached L1 norms, with absolute
    // slack for the norms' accumulation error (see `norm_gap_slack`).
    let n = incoming.measurements.len();
    let norm_gap = (incoming.norm_l1 - stored.norm_l1).abs()
        - norm_gap_slack(n, incoming.norm_l1, stored.norm_l1);
    if norm_gap > bound * distance_error_factor(n) {
        stats.prefilter_rejects += 1;
        return false;
    }
    let mut sum = 0.0;
    for (&x, &y) in incoming.measurements.iter().zip(&stored.measurements) {
        sum += (x - y).abs();
        if sum > bound {
            stats.early_abandons += 1;
            return false;
        }
    }
    stats.full_kernels += 1;
    true
}

/// Euclidean: L2 distance within `threshold` times the largest measurement.
fn euclidean_cached(
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    threshold: f64,
    stats: &mut MatchStats,
) -> bool {
    let bound = threshold * incoming.max_measurement.max(stored.max_measurement);
    // sqrt of the first squared term: an exact lower bound on the computed
    // distance (partial sums and sqrt are monotone).
    let d0 = incoming.duration - stored.duration;
    if (d0 * d0).sqrt() > bound {
        stats.prefilter_rejects += 1;
        return false;
    }
    let n = incoming.measurements.len();
    let norm_gap = (incoming.norm_l2 - stored.norm_l2).abs()
        - norm_gap_slack(n, incoming.norm_l2, stored.norm_l2);
    if norm_gap > bound * distance_error_factor(n) {
        stats.prefilter_rejects += 1;
        return false;
    }
    let bound_sq = bound * bound;
    let mut sum = 0.0;
    for (&x, &y) in incoming.measurements.iter().zip(&stored.measurements) {
        let d = x - y;
        sum += d * d;
        // The squared comparison is a cheap trigger; the sqrt confirms the
        // abandon so a bound whose square rounded down can never cause a
        // decision the completed kernel would not also make.
        if sum > bound_sq && sum.sqrt() > bound {
            stats.early_abandons += 1;
            return false;
        }
    }
    stats.full_kernels += 1;
    sum.sqrt() <= bound
}

/// Chebyshev: largest single difference within `threshold` times the
/// largest measurement.
fn chebyshev_cached(
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    threshold: f64,
    stats: &mut MatchStats,
) -> bool {
    let bound = threshold * incoming.max_measurement.max(stored.max_measurement);
    if (incoming.duration - stored.duration).abs() > bound {
        stats.prefilter_rejects += 1;
        return false;
    }
    // Measurements are non-negative times, so the cached maxima are the
    // sup norms and their gap lower-bounds the Chebyshev distance.  The
    // maxima are exact input values (no accumulation), so a relative
    // margin suffices here — see `SUP_GAP_MARGIN`.
    if (incoming.max_measurement - stored.max_measurement).abs() * SUP_GAP_MARGIN > bound {
        stats.prefilter_rejects += 1;
        return false;
    }
    for (&x, &y) in incoming.measurements.iter().zip(&stored.measurements) {
        if (x - y).abs() > bound {
            stats.early_abandons += 1;
            return false;
        }
    }
    stats.full_kernels += 1;
    true
}

/// Wavelet methods: Euclidean distance between the cached coefficient
/// vectors within `threshold` times the largest absolute coefficient.
fn wavelet_cached(
    incoming: &SegmentFeatures,
    stored: &SegmentFeatures,
    threshold: f64,
    stats: &mut MatchStats,
) -> bool {
    let bound = threshold * incoming.coeff_max_abs.max(stored.coeff_max_abs);
    // The overall-trend coefficients are index 0 of both vectors: their
    // squared gap is the first term of the coefficient distance.
    let d0 = incoming.coeffs.first().copied().unwrap_or(0.0)
        - stored.coeffs.first().copied().unwrap_or(0.0);
    if (d0 * d0).sqrt() > bound {
        stats.prefilter_rejects += 1;
        return false;
    }
    let bound_sq = bound * bound;
    let n = incoming.coeffs.len().max(stored.coeffs.len());
    let mut sum = 0.0;
    for i in 0..n {
        let x = incoming.coeffs.get(i).copied().unwrap_or(0.0);
        let y = stored.coeffs.get(i).copied().unwrap_or(0.0);
        let d = x - y;
        sum += d * d;
        if sum > bound_sq && sum.sqrt() > bound {
            stats.early_abandons += 1;
            return false;
        }
    }
    stats.full_kernels += 1;
    sum.sqrt() <= bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::segments_match;
    use trace_model::{ContextId, Event, RegionId, Time};

    fn segment(e0: (u64, u64), e1: (u64, u64), end: u64) -> Segment {
        Segment {
            context: ContextId(0),
            start: Time::ZERO,
            end: Time::from_nanos(end),
            events: vec![
                Event::compute(RegionId(0), Time::from_nanos(e0.0), Time::from_nanos(e0.1)),
                Event::compute(RegionId(1), Time::from_nanos(e1.0), Time::from_nanos(e1.1)),
            ],
        }
    }

    fn figure2_segments() -> (Segment, Segment, Segment) {
        (
            segment((1, 20), (21, 49), 50),
            segment((1, 40), (41, 50), 51),
            segment((1, 17), (18, 48), 49),
        )
    }

    #[test]
    fn cached_decisions_agree_with_the_naive_predicate() {
        let (s0, s1, s2) = figure2_segments();
        let pairs = [(&s0, &s1), (&s0, &s2), (&s1, &s2), (&s0, &s0)];
        for method in Method::ALL {
            let thresholds: Vec<f64> = std::iter::once(method.default_threshold())
                .chain(method.threshold_grid())
                .chain([0.0])
                .collect();
            for threshold in thresholds {
                let config = MethodConfig::new(method, threshold);
                for (a, b) in pairs {
                    let fa = SegmentFeatures::for_config(&config, a);
                    let fb = SegmentFeatures::for_config(&config, b);
                    let mut stats = MatchStats::default();
                    assert_eq!(
                        segments_match_cached(&config, &fa, &fb, &mut stats),
                        segments_match(&config, a, b),
                        "{method} at {threshold}"
                    );
                }
            }
        }
    }

    #[test]
    fn counters_partition_comparisons() {
        let (s0, s1, s2) = figure2_segments();
        for method in Method::ALL {
            let config = MethodConfig::with_default_threshold(method);
            let mut stats = MatchStats::default();
            for (a, b) in [(&s0, &s1), (&s0, &s2), (&s1, &s2), (&s2, &s2)] {
                let fa = SegmentFeatures::for_config(&config, a);
                let fb = SegmentFeatures::for_config(&config, b);
                segments_match_cached(&config, &fa, &fb, &mut stats);
            }
            assert_eq!(stats.comparisons, 4, "{method}");
            assert_eq!(
                stats.prefilter_rejects + stats.early_abandons + stats.full_kernels,
                stats.comparisons,
                "{method}"
            );
            assert!(stats.matches <= stats.full_kernels, "{method}");
            assert!(stats.pruned_rate() <= 1.0, "{method}");
        }
    }

    #[test]
    fn tight_thresholds_resolve_dissimilar_pairs_without_a_full_kernel() {
        let (s0, s1, _) = figure2_segments();
        // s0 vs s1 differ in duration and interior timings; at a zero
        // threshold every distance method can prove the mismatch from the
        // cached duration alone.
        for method in [
            Method::RelDiff,
            Method::AbsDiff,
            Method::Manhattan,
            Method::Euclidean,
            Method::Chebyshev,
            Method::AvgWave,
            Method::HaarWave,
        ] {
            let config = MethodConfig::new(method, 0.0);
            let fa = SegmentFeatures::for_config(&config, &s0);
            let fb = SegmentFeatures::for_config(&config, &s1);
            let mut stats = MatchStats::default();
            assert!(!segments_match_cached(&config, &fa, &fb, &mut stats));
            assert_eq!(stats.prefilter_rejects, 1, "{method}");
            assert_eq!(stats.full_kernels, 0, "{method}");
        }
    }

    #[test]
    fn norm_prefilters_are_admissible_for_long_large_timestamp_segments() {
        // Regression: two ~100-minute segments (1500 events, timestamps up
        // to 7.5·10¹²) differing in a single event end by 3 ns.  Their L1
        // norms (~1.1·10¹⁶) sit above 2⁵³ where one ulp is 2 ns, so the
        // accumulated norms can round to a gap *larger* than the exact
        // 3 ns distance — a multiplicative margin on the gap is not
        // admissible there and once made the fast path reject matches the
        // naive predicate accepts.  The absolute `norm_gap_slack` must
        // keep every decision identical.
        let build = |delta: u64| -> Segment {
            let events: Vec<Event> = (0..1500u64)
                .map(|i| {
                    let start = i * 5_000_000_000;
                    let end = start + 3_999_999_000 + if i == 700 { delta } else { 0 };
                    Event::compute(
                        RegionId((i % 4) as u32),
                        Time::from_nanos(start),
                        Time::from_nanos(end),
                    )
                })
                .collect();
            Segment {
                context: ContextId(0),
                start: Time::ZERO,
                end: Time::from_nanos(1500 * 5_000_000_000),
                events,
            }
        };
        let a = build(0);
        let b = build(3);
        let max = 1500.0 * 5.0e9; // the largest measurement (segment end)
        for method in [
            Method::RelDiff,
            Method::AbsDiff,
            Method::Manhattan,
            Method::Euclidean,
            Method::Chebyshev,
            Method::AvgWave,
            Method::HaarWave,
        ] {
            for bound_ns in [1.0f64, 2.0, 3.0, 3.5, 4.0, 64.0, 1e6] {
                let threshold = if method == Method::AbsDiff {
                    bound_ns / 1_000.0 // microseconds
                } else {
                    bound_ns / max
                };
                let config = MethodConfig::new(method, threshold);
                let fa = SegmentFeatures::for_config(&config, &a);
                let fb = SegmentFeatures::for_config(&config, &b);
                let mut stats = MatchStats::default();
                assert_eq!(
                    segments_match_cached(&config, &fa, &fb, &mut stats),
                    segments_match(&config, &a, &b),
                    "{method} at a {bound_ns} ns bound"
                );
            }
        }
    }

    #[test]
    fn feature_kinds_populate_only_what_the_method_reads() {
        let (s0, _, _) = figure2_segments();
        let wave = SegmentFeatures::for_config(
            &MethodConfig::with_default_threshold(Method::AvgWave),
            &s0,
        );
        assert!(wave.measurements.is_empty());
        assert_eq!(wave.coeffs.len(), 8, "6 time stamps pad to 8");
        let meas = SegmentFeatures::for_config(
            &MethodConfig::with_default_threshold(Method::Euclidean),
            &s0,
        );
        assert!(meas.coeffs.is_empty());
        assert_eq!(meas.measurements, s0.measurement_vector());
        assert_eq!(meas.duration, 50.0);
        assert_eq!(meas.max_measurement, 50.0);
        let iter = SegmentFeatures::for_config(
            &MethodConfig::with_default_threshold(Method::IterAvg),
            &s0,
        );
        assert!(iter.measurements.is_empty() && iter.coeffs.is_empty());
    }

    #[test]
    fn scratch_reuses_buffers_across_segments() {
        let (s0, s1, _) = figure2_segments();
        let mut scratch = MatchScratch::new();
        scratch.prepare_incoming(Method::HaarWave, &s0);
        let first = scratch.clone_incoming();
        scratch.prepare_incoming(Method::HaarWave, &s1);
        let second = scratch.clone_incoming();
        assert_ne!(first, second);
        // Refilling from s0 reproduces the first features exactly.
        scratch.prepare_incoming(Method::HaarWave, &s0);
        assert_eq!(scratch.clone_incoming(), first);
        scratch.stats.comparisons = 7;
        scratch.reset_stats();
        assert_eq!(scratch.stats(), MatchStats::default());
    }

    #[test]
    fn match_stats_absorb_adds_counters() {
        let mut a = MatchStats {
            comparisons: 10,
            prefilter_rejects: 4,
            early_abandons: 2,
            full_kernels: 4,
            matches: 3,
            index_window_prunes: 25,
            index_pivot_prunes: 5,
            eligible: 50,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.comparisons, 20);
        assert_eq!(a.matches, 6);
        assert_eq!(a.index_window_prunes, 50);
        assert_eq!(a.index_pivot_prunes, 10);
        assert_eq!(a.candidates(), 80);
        assert_eq!(a.eligible, 100);
        assert!((a.prefilter_reject_rate() - 0.4).abs() < 1e-12);
        assert!((a.early_abandon_rate() - 0.2).abs() < 1e-12);
        assert!((a.pruned_rate() - 0.6).abs() < 1e-12);
        assert!((a.visited_fraction() - 0.2).abs() < 1e-12);
        assert!((a.index_prune_rate() - 0.75).abs() < 1e-12);
        assert_eq!(MatchStats::default().prefilter_reject_rate(), 0.0);
        assert_eq!(MatchStats::default().visited_fraction(), 0.0);
    }
}
