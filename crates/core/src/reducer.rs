//! The stored-segments reduction algorithm (Section 3.1).
//!
//! For every rank the reducer walks the segments in trace order and, for
//! each new segment, looks for an *eligible* stored representative (same
//! context, same events in the same order, same message-passing parameters)
//! that the configured similarity method accepts.  On a match only the
//! `(representative id, start time)` pair is appended to the execution log;
//! otherwise the segment is stored as a new representative.
//!
//! The two iteration-based methods specialize this loop:
//!
//! * `iter_k` stores the first `k` instances of every segment pattern and
//!   maps later instances to the most recently stored one (the paper's
//!   footnote: missing executions are filled in with the last collected
//!   segment of the pattern);
//! * `iter_avg` stores exactly one instance per pattern whose measurements
//!   are the running average over all instances.
//!
//! Distance methods run through the cached-feature fast path
//! ([`crate::features`]): each stored representative carries a
//! [`SegmentFeatures`] cache computed once at store time, the incoming
//! segment's features are computed once per segment into a reusable
//! [`MatchScratch`], and admissible prefilters / early-abandoning kernels
//! prune comparisons the similarity test would reject anyway.  The
//! pre-fast-path behaviour is preserved verbatim as
//! [`reduce_rank_reference`] for equivalence testing — both paths produce
//! bit-identical [`ReducedRankTrace`]s.

use std::collections::BTreeMap;

use trace_model::{
    AppTrace, RankTrace, ReducedAppTrace, ReducedRankTrace, Segment, SegmentExec, SegmentKey,
    StoredSegment, Time,
};

use crate::features::{
    segments_match_cached, FeatureKind, MatchScratch, MatchStats, SegmentFeatures,
};
use crate::index::{CandidateIndex, CandidateSearch};
use crate::method::{Method, MethodConfig};
use crate::metric::segments_match;
use crate::segmenter::{segments_of_rank_with_stats, SegmentationStats};

/// The result of reducing one rank's trace.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReduction {
    /// The reduced trace (stored representatives plus execution log).
    pub reduced: ReducedRankTrace,
    /// Statistics from the segmentation pass.
    pub segmentation: SegmentationStats,
    /// Similarity-matching counters (comparisons, prefilter hits, early
    /// abandons).  The naive reference path only fills the comparison and
    /// match counts — it has no prefilters to hit.
    pub matching: MatchStats,
}

/// Running-average accumulator used by `iter_avg`.
#[derive(Clone, Debug)]
struct AverageState {
    count: f64,
    end_sum: f64,
    event_sums: Vec<(f64, f64)>,
}

impl AverageState {
    fn new(segment: &Segment) -> Self {
        AverageState {
            count: 1.0,
            end_sum: segment.end.as_f64(),
            event_sums: segment
                .events
                .iter()
                .map(|e| (e.start.as_f64(), e.end.as_f64()))
                .collect(),
        }
    }

    fn accumulate(&mut self, segment: &Segment) {
        self.count += 1.0;
        self.end_sum += segment.end.as_f64();
        for (sum, event) in self.event_sums.iter_mut().zip(&segment.events) {
            sum.0 += event.start.as_f64();
            sum.1 += event.end.as_f64();
        }
    }

    /// Writes the averaged measurements into `segment`.
    fn finalize_into(&self, segment: &mut Segment) {
        segment.end = Time::from_f64(self.end_sum / self.count);
        for (event, sum) in segment.events.iter_mut().zip(&self.event_sums) {
            event.start = Time::from_f64(sum.0 / self.count);
            event.end = Time::from_f64(sum.1 / self.count);
            // Averaged events may drift past the averaged segment end by a
            // rounding error; clamp to keep the segment well formed.
            if event.end > segment.end {
                segment.end = event.end;
            }
        }
    }
}

/// One same-shape candidate bucket: stored-representative ids in insertion
/// order plus (on the indexed path) the sorted/pivoted candidate index
/// over their cached features.
#[derive(Clone, Debug, Default)]
struct Bucket {
    /// Stored ids in insertion order — the paper's scan order.
    ids: Vec<u32>,
    /// Candidate index; only maintained under [`CandidateSearch::Indexed`].
    index: CandidateIndex,
}

/// Online (segment-at-a-time) form of the stored-segments algorithm.
///
/// [`Reducer::reduce_rank`] and the streaming reduction path (the
/// `trace_stream` crate) both drive this state machine, so a rank is
/// reduced identically whether its segments arrive from an in-memory
/// [`RankTrace`] or one at a time from a file.  The state held between
/// segments is exactly the reduced trace under construction (stored
/// representatives plus the execution log) and the per-key match buckets —
/// never the full segment stream.
#[derive(Clone, Debug)]
pub struct OnlineRankReducer {
    config: MethodConfig,
    search: CandidateSearch,
    reduced: ReducedRankTrace,
    // Stored-representative ids grouped by segment key (structural
    // identity); scanning a bucket in insertion order is equivalent to
    // the paper's linear scan restricted to eligible segments.  The
    // indexed path visits the same candidates minus the ones its window /
    // pivot bounds prove unmatchable — in the same order.
    buckets: BTreeMap<SegmentKey, Bucket>,
    // Running averages for iter_avg, indexed by stored id.
    averages: BTreeMap<u32, AverageState>,
    // Cached features per stored representative, indexed like
    // `reduced.stored`.  Empty for the iteration-based methods, which
    // never run a similarity kernel.
    features: Vec<SegmentFeatures>,
    // Reusable buffers + counters for the cached matching kernels.
    scratch: MatchScratch,
}

impl OnlineRankReducer {
    /// Creates an empty reduction state for one rank.
    pub fn new(config: MethodConfig, rank: trace_model::Rank) -> Self {
        OnlineRankReducer::with_scratch(config, rank, MatchScratch::new())
    }

    /// Creates an empty reduction state reusing the buffers of `scratch`
    /// (its counters are reset).  Drivers that reduce many ranks — the
    /// parallel in-memory reducer, the streaming loop — pass the scratch
    /// from rank to rank via [`OnlineRankReducer::finish_with_scratch`] so
    /// feature buffers are allocated once per worker.
    pub fn with_scratch(
        config: MethodConfig,
        rank: trace_model::Rank,
        scratch: MatchScratch,
    ) -> Self {
        OnlineRankReducer::with_scratch_and_search(
            config,
            rank,
            scratch,
            CandidateSearch::default(),
        )
    }

    /// Like [`OnlineRankReducer::with_scratch`] with an explicit candidate
    /// search strategy (the linear scan exists for benchmarks and
    /// equivalence tests; both strategies produce bit-identical output).
    pub fn with_scratch_and_search(
        config: MethodConfig,
        rank: trace_model::Rank,
        mut scratch: MatchScratch,
        search: CandidateSearch,
    ) -> Self {
        scratch.reset_stats();
        OnlineRankReducer {
            config,
            search,
            reduced: ReducedRankTrace::new(rank),
            buckets: BTreeMap::new(),
            averages: BTreeMap::new(),
            features: Vec::new(),
            scratch,
        }
    }

    /// Feeds the next segment in trace order.
    pub fn push_segment(&mut self, segment: Segment) {
        self.push_segment_obs(segment, &mut trace_obs::ObsShard::disabled());
    }

    /// Like [`OnlineRankReducer::push_segment`], recording an
    /// [`trace_obs::Stage::Index`] span when a stored representative is
    /// inserted into the candidate index.  Store events are rare (one per
    /// representative, not one per segment), so the clock is only read on
    /// that path; with a disabled shard this is identical to
    /// [`OnlineRankReducer::push_segment`].
    pub fn push_segment_obs(&mut self, segment: Segment, obs: &mut trace_obs::ObsShard) {
        let key = segment.key();
        let start = segment.start;
        let config = self.config;
        let is_distance = config.method.is_distance_method();
        if is_distance {
            // Features are computed once per incoming segment and reused
            // for every candidate in the bucket — and, if the segment ends
            // up stored, cloned into its representative cache.
            self.scratch.prepare_incoming(config.method, &segment);
        }
        let search = self.search;
        let bucket = self.buckets.entry(key).or_default();

        let matched: Option<u32> = match config.method {
            Method::IterAvg => bucket.ids.first().copied(),
            Method::IterK => {
                if bucket.ids.len() >= config.iter_k() {
                    bucket.ids.last().copied()
                } else {
                    None
                }
            }
            _ => {
                let MatchScratch {
                    incoming,
                    stats,
                    index_buf,
                    ..
                } = &mut self.scratch;
                let incoming = &*incoming;
                let features = &self.features;
                stats.eligible += bucket.ids.len();
                match search {
                    CandidateSearch::Indexed => bucket.index.find_first(
                        &config,
                        incoming,
                        features,
                        stats,
                        index_buf,
                        |id, stats| {
                            segments_match_cached(&config, incoming, &features[id as usize], stats)
                        },
                    ),
                    CandidateSearch::LinearScan => bucket.ids.iter().copied().find(|&id| {
                        segments_match_cached(&config, incoming, &features[id as usize], stats)
                    }),
                }
            }
        };

        match matched {
            Some(id) => {
                self.reduced.execs.push(SegmentExec { segment: id, start });
                self.reduced.stored[id as usize].represented += 1;
                if config.method == Method::IterAvg {
                    self.averages
                        .get_mut(&id)
                        .expect("iter_avg representative must have an accumulator")
                        .accumulate(&segment);
                }
            }
            None => {
                let id = self.reduced.stored.len() as u32;
                bucket.ids.push(id);
                if config.method == Method::IterAvg {
                    self.averages.insert(id, AverageState::new(&segment));
                }
                if is_distance {
                    let span = obs.start();
                    self.features.push(self.scratch.clone_incoming());
                    if search == CandidateSearch::Indexed {
                        bucket.index.insert(id, &config, &self.features);
                    }
                    obs.end(trace_obs::Stage::Index, span);
                }
                let mut stored_segment = segment;
                // Representatives are stored rebased; keep the absolute
                // start only in the execution log.  The cached features are
                // unaffected: they only read times that are already
                // relative to the segment start.
                stored_segment.start = Time::ZERO;
                self.reduced.stored.push(StoredSegment {
                    id,
                    segment: stored_segment,
                    represented: 1,
                });
                self.reduced.execs.push(SegmentExec { segment: id, start });
            }
        }
    }

    /// Number of stored representatives so far.
    pub fn stored_count(&self) -> usize {
        self.reduced.stored_count()
    }

    /// Number of segment executions so far.
    pub fn exec_count(&self) -> usize {
        self.reduced.exec_count()
    }

    /// The similarity-matching counters accumulated by this reducer.
    pub fn match_stats(&self) -> MatchStats {
        self.scratch.stats()
    }

    /// Completes the reduction (finalizing `iter_avg` running averages) and
    /// returns the reduced rank trace.
    pub fn finish(self) -> ReducedRankTrace {
        self.finish_with_scratch().0
    }

    /// Like [`OnlineRankReducer::finish`], but also hands the scratch back
    /// so the caller can thread it into the next rank's reducer.
    pub fn finish_with_scratch(mut self) -> (ReducedRankTrace, MatchScratch) {
        if self.config.method == Method::IterAvg {
            for stored in &mut self.reduced.stored {
                if let Some(avg) = self.averages.get(&stored.id) {
                    avg.finalize_into(&mut stored.segment);
                }
            }
        }
        (self.reduced, self.scratch)
    }
}

/// Reduces traces with a configured similarity method.
#[derive(Clone, Copy, Debug)]
pub struct Reducer {
    config: MethodConfig,
    search: CandidateSearch,
}

impl Reducer {
    /// Creates a reducer for the given method configuration (using the
    /// default [`CandidateSearch::Indexed`] candidate search).
    pub fn new(config: MethodConfig) -> Self {
        Reducer::with_search(config, CandidateSearch::default())
    }

    /// Creates a reducer with an explicit candidate-search strategy.  The
    /// linear scan exists so benches and tests can measure/verify the
    /// index against PR 5's behaviour; both strategies are bit-identical.
    pub fn with_search(config: MethodConfig, search: CandidateSearch) -> Self {
        Reducer { config, search }
    }

    /// Convenience constructor using the paper's default threshold.
    pub fn with_default_threshold(method: Method) -> Self {
        Reducer::new(MethodConfig::with_default_threshold(method))
    }

    /// The method configuration in use.
    pub fn config(&self) -> MethodConfig {
        self.config
    }

    /// The candidate-search strategy in use.
    pub fn search(&self) -> CandidateSearch {
        self.search
    }

    /// Reduces a single rank trace.
    pub fn reduce_rank(&self, trace: &RankTrace) -> RankReduction {
        let mut scratch = MatchScratch::new();
        self.reduce_rank_with_scratch(trace, &mut scratch)
    }

    /// Reduces a single rank trace reusing the caller's [`MatchScratch`]
    /// (buffers are threaded through; the counters in the returned
    /// [`RankReduction::matching`] cover only this rank).
    pub fn reduce_rank_with_scratch(
        &self,
        trace: &RankTrace,
        scratch: &mut MatchScratch,
    ) -> RankReduction {
        self.reduce_rank_with_scratch_obs(trace, scratch, &mut trace_obs::ObsShard::disabled())
    }

    /// Like [`Reducer::reduce_rank_with_scratch`], recording per-rank
    /// [`trace_obs::Stage::Segment`] and [`trace_obs::Stage::Match`] spans
    /// (two clock reads per rank; nothing per segment).  With a disabled
    /// shard the reduction is identical — recording observes, never steers.
    pub fn reduce_rank_with_scratch_obs(
        &self,
        trace: &RankTrace,
        scratch: &mut MatchScratch,
        obs: &mut trace_obs::ObsShard,
    ) -> RankReduction {
        let span = obs.start();
        let (segments, segmentation) = segments_of_rank_with_stats(trace);
        obs.end(trace_obs::Stage::Segment, span);
        let mut online = OnlineRankReducer::with_scratch_and_search(
            self.config,
            trace.rank,
            std::mem::take(scratch),
            self.search,
        );
        let span = obs.start();
        for segment in segments {
            online.push_segment_obs(segment, obs);
        }
        obs.end(trace_obs::Stage::Match, span);
        let matching = online.match_stats();
        let (reduced, returned) = online.finish_with_scratch();
        *scratch = returned;
        RankReduction {
            reduced,
            segmentation,
            matching,
        }
    }

    /// Reduces every rank of an application trace sequentially.
    pub fn reduce_app(&self, app: &AppTrace) -> ReducedAppTrace {
        self.reduce_app_with_stats(app).0
    }

    /// Like [`Reducer::reduce_app`], but also returns the aggregated
    /// similarity-matching counters — the exact same reduction loop, so
    /// benches and recorders can report pruning rates without a second
    /// pass.
    pub fn reduce_app_with_stats(&self, app: &AppTrace) -> (ReducedAppTrace, MatchStats) {
        self.reduce_app_obs(app, &trace_obs::Recorder::disabled())
    }

    /// Like [`Reducer::reduce_app_with_stats`], recording per-rank stage
    /// spans and draining the matching counters into `recorder`.  With a
    /// disabled recorder this is exactly [`Reducer::reduce_app_with_stats`].
    pub fn reduce_app_obs(
        &self,
        app: &AppTrace,
        recorder: &trace_obs::Recorder,
    ) -> (ReducedAppTrace, MatchStats) {
        let mut obs = recorder.shard();
        let mut scratch = MatchScratch::new();
        let mut stats = MatchStats::default();
        let mut reduced = ReducedAppTrace::for_app(app);
        for rank in &app.ranks {
            let reduction = self.reduce_rank_with_scratch_obs(rank, &mut scratch, &mut obs);
            stats.absorb(&reduction.matching);
            reduced.ranks.push(reduction.reduced);
        }
        stats.record_into(&mut obs);
        obs.finish();
        (reduced, stats)
    }
}

/// Naive reference implementation of the stored-segments reduction: the
/// pre-fast-path behaviour, comparing the incoming segment against each
/// stored representative with the allocating [`segments_match`] predicate
/// (measurement vectors and wavelet transforms recomputed per comparison,
/// no prefilters, no early abandoning).
///
/// Kept — and exported — purely so property tests and benches can assert
/// that the cached fast path produces bit-identical output and measure the
/// speedup; production callers should use [`Reducer`].
pub fn reduce_rank_reference(config: MethodConfig, trace: &RankTrace) -> RankReduction {
    let (segments, segmentation) = segments_of_rank_with_stats(trace);
    let mut reduced = ReducedRankTrace::new(trace.rank);
    let mut buckets: BTreeMap<SegmentKey, Vec<u32>> = BTreeMap::new();
    let mut averages: BTreeMap<u32, AverageState> = BTreeMap::new();
    let mut matching = MatchStats::default();

    for segment in segments {
        let key = segment.key();
        let start = segment.start;
        let bucket = buckets.entry(key).or_default();

        let matched: Option<u32> = match config.method {
            Method::IterAvg => bucket.first().copied(),
            Method::IterK => {
                if bucket.len() >= config.iter_k() {
                    bucket.last().copied()
                } else {
                    None
                }
            }
            _ => {
                matching.eligible += bucket.len();
                bucket.iter().copied().find(|&id| {
                    let stored = &reduced.stored[id as usize].segment;
                    matching.comparisons += 1;
                    matching.full_kernels += 1;
                    let accepted = segments_match(&config, &segment, stored);
                    if accepted {
                        matching.matches += 1;
                    }
                    accepted
                })
            }
        };

        match matched {
            Some(id) => {
                reduced.execs.push(SegmentExec { segment: id, start });
                reduced.stored[id as usize].represented += 1;
                if config.method == Method::IterAvg {
                    averages
                        .get_mut(&id)
                        .expect("iter_avg representative must have an accumulator")
                        .accumulate(&segment);
                }
            }
            None => {
                let id = reduced.stored.len() as u32;
                bucket.push(id);
                if config.method == Method::IterAvg {
                    averages.insert(id, AverageState::new(&segment));
                }
                let mut stored_segment = segment;
                stored_segment.start = Time::ZERO;
                reduced.stored.push(StoredSegment {
                    id,
                    segment: stored_segment,
                    represented: 1,
                });
                reduced.execs.push(SegmentExec { segment: id, start });
            }
        }
    }

    if config.method == Method::IterAvg {
        for stored in &mut reduced.stored {
            if let Some(avg) = averages.get(&stored.id) {
                avg.finalize_into(&mut stored.segment);
            }
        }
    }

    RankReduction {
        reduced,
        segmentation,
        matching,
    }
}

/// Naive reference reduction of a whole application trace (see
/// [`reduce_rank_reference`]).
pub fn reduce_app_reference(config: MethodConfig, app: &AppTrace) -> ReducedAppTrace {
    let mut reduced = ReducedAppTrace::for_app(app);
    for rank in &app.ranks {
        reduced
            .ranks
            .push(reduce_rank_reference(config, rank).reduced);
    }
    reduced
}

/// Reduces one rank trace with a caller-supplied similarity predicate.
///
/// This is the extension point used by the extended method catalogue
/// ([`crate::extended`]): the stored-segments algorithm is exactly the
/// paper's (same-shape eligibility, scan stored representatives in insertion
/// order, store a new representative on mismatch), but the similarity test
/// between a new segment and a stored representative is `predicate(new,
/// stored)` instead of one of the nine paper methods.
pub fn reduce_rank_with_predicate<F>(trace: &RankTrace, predicate: F) -> RankReduction
where
    F: Fn(&Segment, &Segment) -> bool,
{
    let (segments, segmentation) = segments_of_rank_with_stats(trace);
    let mut reduced = ReducedRankTrace::new(trace.rank);
    let mut buckets: BTreeMap<SegmentKey, Vec<u32>> = BTreeMap::new();
    let mut matching = MatchStats::default();

    for segment in segments {
        let key = segment.key();
        let start = segment.start;
        let bucket = buckets.entry(key).or_default();

        matching.eligible += bucket.len();
        let matched = bucket.iter().copied().find(|&id| {
            let stored = &reduced.stored[id as usize].segment;
            matching.comparisons += 1;
            matching.full_kernels += 1;
            let accepted = predicate(&segment, stored);
            if accepted {
                matching.matches += 1;
            }
            accepted
        });

        match matched {
            Some(id) => {
                reduced.execs.push(SegmentExec { segment: id, start });
                reduced.stored[id as usize].represented += 1;
            }
            None => {
                let id = reduced.stored.len() as u32;
                bucket.push(id);
                let mut stored_segment = segment;
                stored_segment.start = Time::ZERO;
                reduced.stored.push(StoredSegment {
                    id,
                    segment: stored_segment,
                    represented: 1,
                });
                reduced.execs.push(SegmentExec { segment: id, start });
            }
        }
    }

    RankReduction {
        reduced,
        segmentation,
        matching,
    }
}

/// Reduces every rank of an application trace with a caller-supplied
/// similarity predicate (see [`reduce_rank_with_predicate`]).
pub fn reduce_app_with_predicate<F>(app: &AppTrace, predicate: F) -> ReducedAppTrace
where
    F: Fn(&Segment, &Segment) -> bool,
{
    let mut reduced = ReducedAppTrace::for_app(app);
    for rank in &app.ranks {
        reduced
            .ranks
            .push(reduce_rank_with_predicate(rank, &predicate).reduced);
    }
    reduced
}

/// Reduces one rank trace with a predicate over *cached features* instead
/// of raw segments: the same stored-segments candidate path as the paper
/// methods (one feature computation per incoming segment, one per stored
/// representative — never one per comparison).
///
/// This is how the extended catalogue's measurement/wavelet-space methods
/// (`cosine`, `normEuclidean`, `cdf97Wave`) run; methods that read raw
/// segment structure (DTW's banded warping, the delta-time histograms)
/// stay on [`reduce_rank_with_predicate`].
pub(crate) fn reduce_rank_with_cached_features<F>(
    trace: &RankTrace,
    kind: FeatureKind,
    predicate: F,
) -> RankReduction
where
    F: Fn(&SegmentFeatures, &SegmentFeatures) -> bool,
{
    let (segments, segmentation) = segments_of_rank_with_stats(trace);
    let mut reduced = ReducedRankTrace::new(trace.rank);
    let mut buckets: BTreeMap<SegmentKey, Vec<u32>> = BTreeMap::new();
    let mut features: Vec<SegmentFeatures> = Vec::new();
    let mut scratch = MatchScratch::new();
    let mut matching = MatchStats::default();

    for segment in segments {
        let key = segment.key();
        let start = segment.start;
        scratch.prepare_incoming_kind(kind, &segment);
        let bucket = buckets.entry(key).or_default();

        let incoming = &scratch.incoming;
        matching.eligible += bucket.len();
        let matched = bucket.iter().copied().find(|&id| {
            matching.comparisons += 1;
            matching.full_kernels += 1;
            let accepted = predicate(incoming, &features[id as usize]);
            if accepted {
                matching.matches += 1;
            }
            accepted
        });

        match matched {
            Some(id) => {
                reduced.execs.push(SegmentExec { segment: id, start });
                reduced.stored[id as usize].represented += 1;
            }
            None => {
                let id = reduced.stored.len() as u32;
                bucket.push(id);
                features.push(scratch.clone_incoming());
                let mut stored_segment = segment;
                stored_segment.start = Time::ZERO;
                reduced.stored.push(StoredSegment {
                    id,
                    segment: stored_segment,
                    represented: 1,
                });
                reduced.execs.push(SegmentExec { segment: id, start });
            }
        }
    }

    RankReduction {
        reduced,
        segmentation,
        matching,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{ContextId, Event, Rank, RegionId};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    /// A rank trace with `n` iterations of one loop whose event duration is
    /// chosen per iteration by `durations`.
    fn looped_trace(durations: &[u64]) -> RankTrace {
        let mut rt = RankTrace::new(Rank(0));
        let ctx = ContextId(0);
        let mut now = 0u64;
        for &d in durations {
            rt.begin_segment(ctx, Time::from_nanos(now));
            rt.push_event(Event::compute(
                RegionId(0),
                Time::from_nanos(now + 10),
                Time::from_nanos(now + 10 + d),
            ));
            rt.end_segment(ctx, Time::from_nanos(now + 20 + d));
            now += 20 + d;
        }
        rt
    }

    #[test]
    fn identical_iterations_collapse_to_one_representative() {
        let rt = looped_trace(&[1000; 20]);
        for method in Method::ALL {
            let reducer = Reducer::with_default_threshold(method);
            let r = reducer.reduce_rank(&rt).reduced;
            assert_eq!(r.exec_count(), 20, "{method}");
            let expected_stored = if method == Method::IterK { 10 } else { 1 };
            assert_eq!(r.stored_count(), expected_stored, "{method}");
            // Every instance is represented exactly once across the stored
            // representatives; iter_k attributes the surplus to the last one.
            let represented: u32 = r.stored.iter().map(|s| s.represented).sum();
            assert_eq!(represented, 20, "{method}");
            if method != Method::IterK {
                assert_eq!(r.stored[0].represented, 20, "{method}");
            }
        }
    }

    #[test]
    fn dissimilar_iterations_are_kept_separate_by_distance_methods() {
        // Alternate short and 10x longer iterations.
        let durations: Vec<u64> = (0..20)
            .map(|i| if i % 2 == 0 { 1_000 } else { 10_000 })
            .collect();
        let rt = looped_trace(&durations);
        for method in [
            Method::RelDiff,
            Method::Manhattan,
            Method::Euclidean,
            Method::Chebyshev,
            Method::AvgWave,
            Method::HaarWave,
        ] {
            let reducer = Reducer::with_default_threshold(method);
            let r = reducer.reduce_rank(&rt).reduced;
            assert_eq!(
                r.stored_count(),
                2,
                "{method} should keep one representative per behaviour"
            );
            assert_eq!(r.exec_count(), 20);
        }
        // iter_avg merges everything regardless.
        let r = Reducer::with_default_threshold(Method::IterAvg)
            .reduce_rank(&rt)
            .reduced;
        assert_eq!(r.stored_count(), 1);
    }

    #[test]
    fn iter_k_keeps_exactly_k_instances_per_pattern() {
        let rt = looped_trace(&[1000; 25]);
        let reducer = Reducer::new(MethodConfig::new(Method::IterK, 5.0));
        let r = reducer.reduce_rank(&rt).reduced;
        assert_eq!(r.stored_count(), 5);
        assert_eq!(r.exec_count(), 25);
        // Later executions reference the last stored instance.
        assert!(r.execs[10..].iter().all(|e| e.segment == 4));
    }

    #[test]
    fn iter_avg_stores_running_average_measurements() {
        let rt = looped_trace(&[1000, 2000, 3000]);
        let reducer = Reducer::with_default_threshold(Method::IterAvg);
        let r = reducer.reduce_rank(&rt).reduced;
        assert_eq!(r.stored_count(), 1);
        assert_eq!(r.stored[0].represented, 3);
        let avg_event = r.stored[0].segment.events[0];
        // Event starts at 10 in every instance; ends at 10 + {1000,2000,3000}.
        assert_eq!(avg_event.start.as_nanos(), 10);
        assert_eq!(avg_event.end.as_nanos(), 2010);
        assert_eq!(r.stored[0].segment.end.as_nanos(), 2020);
    }

    #[test]
    fn exec_log_preserves_start_times_in_order() {
        let rt = looped_trace(&[500; 5]);
        let reducer = Reducer::with_default_threshold(Method::RelDiff);
        let r = reducer.reduce_rank(&rt).reduced;
        let starts: Vec<u64> = r.execs.iter().map(|e| e.start.as_nanos()).collect();
        assert_eq!(starts, vec![0, 520, 1040, 1560, 2080]);
        // Reconstruction puts events back at their absolute times.
        let rebuilt = r.reconstruct();
        assert!(rebuilt.is_well_formed());
        assert_eq!(rebuilt.event_count(), 5);
        assert_eq!(rebuilt.events().next().unwrap().start.as_nanos(), 10);
    }

    #[test]
    fn segments_with_different_contexts_never_match() {
        let mut rt = RankTrace::new(Rank(0));
        for (ctx, base) in [(0u32, 0u64), (1, 100), (0, 200), (1, 300)] {
            rt.begin_segment(ContextId(ctx), Time::from_nanos(base));
            rt.push_event(Event::compute(
                RegionId(0),
                Time::from_nanos(base + 1),
                Time::from_nanos(base + 50),
            ));
            rt.end_segment(ContextId(ctx), Time::from_nanos(base + 60));
        }
        let r = Reducer::with_default_threshold(Method::IterAvg)
            .reduce_rank(&rt)
            .reduced;
        assert_eq!(r.stored_count(), 2, "one representative per context");
        assert_eq!(r.exec_count(), 4);
        assert_eq!(r.degree_of_matching(), 1.0);
    }

    #[test]
    fn reduce_app_covers_every_rank_and_reconstructs() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let reducer = Reducer::with_default_threshold(Method::AvgWave);
        let reduced = reducer.reduce_app(&app);
        assert_eq!(reduced.rank_count(), app.rank_count());
        for (rrt, rt) in reduced.ranks.iter().zip(&app.ranks) {
            assert_eq!(rrt.exec_count(), rt.segment_instance_count());
        }
        let approx = reduced.reconstruct();
        // Note: the reconstruction is an *approximation* — a representative
        // segment may be slightly longer than the instance it stands in for,
        // so record times can locally overlap; we only require structural
        // equivalence here.
        assert_eq!(approx.rank_count(), app.rank_count());
        // Reconstruction preserves the number of events because every
        // execution replays a representative with the same event count
        // (segments only match when shapes are identical).
        assert_eq!(approx.total_events(), app.total_events());
    }

    #[test]
    fn tighter_thresholds_store_at_least_as_many_segments() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        for method in [Method::RelDiff, Method::Euclidean, Method::AvgWave] {
            let mut previous = usize::MAX;
            for threshold in [1.0, 0.6, 0.2, 0.05] {
                let reduced = Reducer::new(MethodConfig::new(method, threshold)).reduce_app(&app);
                let stored = reduced.total_stored();
                assert!(
                    stored <= previous.max(stored),
                    "{method}: tightening the threshold must not reduce stored segments"
                );
                // (monotonicity checked in the next assertion)
                assert!(stored >= 1);
                if previous != usize::MAX {
                    assert!(
                        stored >= previous,
                        "{method}: stored {stored} at threshold {threshold} must be >= {previous}"
                    );
                }
                previous = stored;
            }
        }
    }

    #[test]
    fn degree_of_matching_is_high_for_regular_trace() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let reduced = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        assert!(
            reduced.degree_of_matching() > 0.9,
            "regular benchmark should match >90% of possible matches, got {}",
            reduced.degree_of_matching()
        );
    }

    #[test]
    fn rel_diff_stores_more_segments_than_minkowski_on_regular_trace() {
        // The paper finds relDiff to be the strictest practical metric on
        // the regular benchmarks (largest files, lowest degree of matching):
        // the tiny, highly variable time stamps near the segment start fail
        // the relative-difference test long before they matter to a
        // magnitude-scaled distance like Euclidean.
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Small).generate();
        let rel = Reducer::with_default_threshold(Method::RelDiff).reduce_app(&app);
        let euc = Reducer::with_default_threshold(Method::Euclidean).reduce_app(&app);
        assert!(
            rel.total_stored() >= euc.total_stored(),
            "relDiff ({}) should store at least as many representatives as Euclidean ({})",
            rel.total_stored(),
            euc.total_stored()
        );
        assert!(
            rel.degree_of_matching() <= euc.degree_of_matching(),
            "relDiff must not out-match Euclidean on a regular benchmark"
        );
    }

    #[test]
    fn predicate_reducer_with_always_true_matches_like_iter_avg_structure() {
        let rt = looped_trace(&[1000, 2000, 3000, 4000]);
        let r = reduce_rank_with_predicate(&rt, |_, _| true).reduced;
        assert_eq!(r.stored_count(), 1);
        assert_eq!(r.exec_count(), 4);
        assert_eq!(r.stored[0].represented, 4);
    }

    #[test]
    fn predicate_reducer_with_always_false_stores_every_instance() {
        let rt = looped_trace(&[1000; 6]);
        let r = reduce_rank_with_predicate(&rt, |_, _| false).reduced;
        assert_eq!(r.stored_count(), 6);
        assert_eq!(r.exec_count(), 6);
        assert_eq!(r.degree_of_matching(), 0.0);
    }

    #[test]
    fn predicate_reducer_never_mixes_shapes() {
        // Even an always-true predicate only sees same-shape candidates.
        let mut rt = RankTrace::new(Rank(0));
        for (ctx, base) in [(0u32, 0u64), (1, 100), (0, 200)] {
            rt.begin_segment(ContextId(ctx), Time::from_nanos(base));
            rt.push_event(Event::compute(
                RegionId(ctx),
                Time::from_nanos(base + 1),
                Time::from_nanos(base + 50),
            ));
            rt.end_segment(ContextId(ctx), Time::from_nanos(base + 60));
        }
        let r = reduce_rank_with_predicate(&rt, |_, _| true).reduced;
        assert_eq!(r.stored_count(), 2);
    }

    #[test]
    fn predicate_matching_paper_metric_reproduces_reducer_output() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let config = MethodConfig::with_default_threshold(Method::Euclidean);
        let via_reducer = Reducer::new(config).reduce_app(&app);
        let via_predicate = reduce_app_with_predicate(&app, |a, b| segments_match(&config, a, b));
        assert_eq!(via_reducer.total_stored(), via_predicate.total_stored());
        assert_eq!(via_reducer.total_execs(), via_predicate.total_execs());
    }
}
