#![forbid(unsafe_code)]
//! Similarity-based trace reduction (the paper's primary contribution).
//!
//! This crate implements the intra-process trace-reduction technique of
//! Mohror & Karavanic (2009) and all nine similarity methods the paper
//! evaluates:
//!
//! * [`segmenter`] — cuts a per-rank trace into [`trace_model::Segment`]s at
//!   the segment markers and rebases each to its start time (Section 3.1).
//! * [`method`] — the method catalogue: `relDiff`, `absDiff`, `Manhattan`,
//!   `Euclidean`, `Chebyshev`, `avgWave`, `haarWave`, `iter_k`, `iter_avg`,
//!   together with the paper's threshold grids and per-method default
//!   thresholds (Section 5.1/5.2).
//! * [`metric`] — the similarity predicates for the distance methods
//!   (Section 3.2).
//! * [`reducer`] — the stored-segments matching algorithm that turns a full
//!   trace into a [`trace_model::ReducedAppTrace`].
//! * [`features`] — cached per-segment features ([`SegmentFeatures`]),
//!   reusable matching buffers ([`MatchScratch`]) and the allocation-free,
//!   prefiltered, early-abandoning similarity kernels the reducer runs by
//!   default; the naive reference loop survives as
//!   [`reducer::reduce_rank_reference`] and the two paths are
//!   property-tested to produce bit-identical reduced traces.
//! * [`index`] — the sub-linear candidate index in front of the match
//!   loop: duration-sorted windows plus triangle-inequality pivot pruning
//!   over the cached features, returning surviving candidates in insertion
//!   order so first-match semantics are preserved bit-identically
//!   (`docs/index-design.md`; the linear scan survives as
//!   [`CandidateSearch::LinearScan`]).
//! * [`parallel`] — per-rank parallel reduction on top of crossbeam scoped
//!   threads (each rank's trace is reduced independently, exactly as the
//!   paper's intra-process technique allows).
//! * [`dtw`] / [`extended`] — the extended method catalogue (dynamic time
//!   warping, cosine, normalized Euclidean, CDF 9/7 wavelet, delta-time
//!   histograms) that the paper's conclusion lists as future work, plugged
//!   into the same stored-segments algorithm via
//!   [`reducer::reduce_rank_with_predicate`].
//!
//! # Quick start
//!
//! ```
//! use trace_reduce::{Method, MethodConfig, Reducer};
//! use trace_sim::{SizePreset, Workload, WorkloadKind};
//!
//! // Generate a small trace with a known performance problem.
//! let full = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
//!
//! // Reduce it with the average-wavelet metric at the paper's default
//! // threshold, then reconstruct an approximate full trace.
//! let reducer = Reducer::new(MethodConfig::with_default_threshold(Method::AvgWave));
//! let reduced = reducer.reduce_app(&full);
//! let approx = reduced.reconstruct();
//!
//! assert_eq!(approx.rank_count(), full.rank_count());
//! assert!(reduced.degree_of_matching() > 0.5);
//! ```

#![warn(missing_docs)]

pub mod dtw;
pub mod extended;
pub mod features;
pub mod index;
pub mod method;
pub mod metric;
pub mod parallel;
pub mod reducer;
pub mod segmenter;

pub use dtw::{dtw_distance, dtw_within, normalized_dtw_distance};
pub use extended::{segments_match_extended, ExtendedConfig, ExtendedMethod, ExtendedReducer};
pub use features::{segments_match_cached, MatchScratch, MatchStats, SegmentFeatures};
pub use index::CandidateSearch;
pub use method::{Method, MethodConfig};
pub use metric::segments_match;
pub use parallel::{
    reduce_app_parallel, reduce_app_parallel_obs, reduce_app_parallel_with_stats, scoped_workers,
};
pub use reducer::{
    reduce_app_reference, reduce_app_with_predicate, reduce_rank_reference,
    reduce_rank_with_predicate, OnlineRankReducer, RankReduction, Reducer,
};
pub use segmenter::{segments_of_rank, OnlineSegmenter, SegmentationStats};
