//! Similarity predicates for segment comparison (Section 3.2).
//!
//! Every predicate assumes the two segments already have the same *shape*
//! (same context, same events in the same order, same message-passing
//! parameters) — that eligibility test is [`trace_model::Segment::same_shape`]
//! and is performed by the reducer before the similarity test, exactly as
//! `compareSegments` does in the paper.

use trace_model::stats;
use trace_model::Segment;
use trace_wavelet::{coefficient_distance, max_abs_coefficient, WaveletKind};

use crate::method::{Method, MethodConfig};

/// Nanoseconds per microsecond; `absDiff` thresholds are specified in
/// microseconds to match the paper's 10^1..10^6 grid.
const NS_PER_US: f64 = 1_000.0;

/// The `absDiff` limit in nanoseconds for a threshold in microseconds.
/// Shared by the naive predicate below and the cached fast path
/// ([`crate::features`]) so both compute the identical bound.
pub(crate) fn abs_diff_limit(threshold_us: f64) -> f64 {
    threshold_us * NS_PER_US
}

/// Relative-difference test: every paired measurement must differ by at most
/// `threshold` in relative terms.
pub fn rel_diff_match(a: &Segment, b: &Segment, threshold: f64) -> bool {
    let va = a.measurement_vector();
    let vb = b.measurement_vector();
    va.iter()
        .zip(&vb)
        .all(|(&x, &y)| stats::relative_difference(x, y) <= threshold)
}

/// Absolute-difference test: every paired measurement must differ by at most
/// `threshold_us` microseconds.
pub fn abs_diff_match(a: &Segment, b: &Segment, threshold_us: f64) -> bool {
    let limit = abs_diff_limit(threshold_us);
    let va = a.measurement_vector();
    let vb = b.measurement_vector();
    va.iter().zip(&vb).all(|(&x, &y)| (x - y).abs() <= limit)
}

/// Minkowski-distance test (`order` 1 = Manhattan, 2 = Euclidean,
/// `None` = Chebyshev): the distance between the measurement vectors must
/// not exceed `threshold` times the largest measurement in the pair.
///
/// Orders 1 and 2 use the dedicated [`stats::manhattan_distance`] /
/// [`stats::euclidean_distance`] kernels (no `powf`), the same scalar code
/// the early-abandoning fast path accumulates term by term — so the two
/// paths agree bit for bit, not just approximately.
pub fn minkowski_match(a: &Segment, b: &Segment, order: Option<f64>, threshold: f64) -> bool {
    let va = a.measurement_vector();
    let vb = b.measurement_vector();
    let distance = match order {
        Some(m) => {
            // lint:allow(float_eq) -- exact dispatch sentinels: orders 1 and 2 select the powf-free kernels
            if m == 1.0 {
                stats::manhattan_distance(&va, &vb)
            // lint:allow(float_eq) -- exact dispatch sentinels: orders 1 and 2 select the powf-free kernels
            } else if m == 2.0 {
                stats::euclidean_distance(&va, &vb)
            } else {
                stats::minkowski_distance(&va, &vb, m)
            }
        }
        None => stats::chebyshev_distance(&va, &vb),
    };
    let max_value = stats::max(&va).max(stats::max(&vb));
    distance <= threshold * max_value
}

/// Wavelet test: transform both time-stamp vectors, compare with the
/// Euclidean distance, and test against `threshold` times the largest
/// coefficient in the pair of transformed vectors (Section 3.2.1 and the
/// worked example of Figure 3).
pub fn wavelet_match(a: &Segment, b: &Segment, kind: WaveletKind, threshold: f64) -> bool {
    let ta = kind.transform(&a.wavelet_vector());
    let tb = kind.transform(&b.wavelet_vector());
    let distance = coefficient_distance(&ta, &tb);
    let max_coefficient = max_abs_coefficient(&ta, &tb);
    distance <= threshold * max_coefficient
}

/// Dispatches the similarity test for a method configuration.
///
/// The iteration-based methods are not distance tests: `iter_avg` matches
/// any same-shape segment by definition, and `iter_k`'s keep-the-first-`k`
/// policy is enforced by the reducer (which counts stored representatives),
/// so both return `true` here.
pub fn segments_match(config: &MethodConfig, a: &Segment, b: &Segment) -> bool {
    match config.method {
        Method::RelDiff => rel_diff_match(a, b, config.threshold),
        Method::AbsDiff => abs_diff_match(a, b, config.threshold),
        Method::Manhattan => minkowski_match(a, b, Some(1.0), config.threshold),
        Method::Euclidean => minkowski_match(a, b, Some(2.0), config.threshold),
        Method::Chebyshev => minkowski_match(a, b, None, config.threshold),
        Method::AvgWave => wavelet_match(a, b, WaveletKind::Average, config.threshold),
        Method::HaarWave => wavelet_match(a, b, WaveletKind::Haar, config.threshold),
        Method::IterK | Method::IterAvg => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{ContextId, Event, RegionId, Time};

    /// Builds the three segments of the paper's Figure 2 (times in
    /// nanoseconds so the numbers match the figure exactly).
    fn figure2_segments() -> (Segment, Segment, Segment) {
        let seg = |e0: (u64, u64), e1: (u64, u64), end: u64| Segment {
            context: ContextId(0),
            start: Time::ZERO,
            end: Time::from_nanos(end),
            events: vec![
                Event::compute(RegionId(0), Time::from_nanos(e0.0), Time::from_nanos(e0.1)),
                Event::compute(RegionId(1), Time::from_nanos(e1.0), Time::from_nanos(e1.1)),
            ],
        };
        let s0 = seg((1, 20), (21, 49), 50);
        let s1 = seg((1, 40), (41, 50), 51);
        let s2 = seg((1, 17), (18, 48), 49);
        (s0, s1, s2)
    }

    #[test]
    fn rel_diff_matches_the_figure_2_walkthrough() {
        let (s0, s1, s2) = figure2_segments();
        // With threshold 0.5, s2 does not match s1 (do_work end: 17 vs 40,
        // relative difference 0.58) but does match s0 (max 0.15).
        assert!(!rel_diff_match(&s2, &s1, 0.5));
        assert!(rel_diff_match(&s2, &s0, 0.5));
    }

    #[test]
    fn abs_diff_matches_the_figure_2_walkthrough() {
        let (s0, s1, s2) = figure2_segments();
        // Threshold of 20 time units (here nanoseconds = 0.02 us): s2 vs s1
        // fails (23 apart), s2 vs s0 passes (max 3 apart).
        assert!(!abs_diff_match(&s2, &s1, 20.0 / 1_000.0));
        assert!(abs_diff_match(&s2, &s0, 20.0 / 1_000.0));
    }

    #[test]
    fn minkowski_matches_the_figure_2_walkthrough() {
        let (s0, s1, s2) = figure2_segments();
        // Threshold 0.2: the max measurement of (s2, s1) is 51, so the
        // largest acceptable distance is 10.2; the distances are 50, 32.6
        // and 23, so no Minkowski variant matches.
        assert!(!minkowski_match(&s2, &s1, Some(1.0), 0.2));
        assert!(!minkowski_match(&s2, &s1, Some(2.0), 0.2));
        assert!(!minkowski_match(&s2, &s1, None, 0.2));
        // Against s0 the distances are 8, 4.5 and 3 with a cap of 10, so all
        // three match.
        assert!(minkowski_match(&s2, &s0, Some(1.0), 0.2));
        assert!(minkowski_match(&s2, &s0, Some(2.0), 0.2));
        assert!(minkowski_match(&s2, &s0, None, 0.2));
    }

    #[test]
    fn wavelet_matches_the_figure_3_walkthrough() {
        let (s0, _s1, s2) = figure2_segments();
        // Figure 3 compares s0 and s2 with the average transform at
        // threshold 0.2 and finds a match (distance 1.9 <= 3.5).
        assert!(wavelet_match(&s0, &s2, WaveletKind::Average, 0.2));
        assert!(wavelet_match(&s0, &s2, WaveletKind::Haar, 0.2));
    }

    #[test]
    fn identical_segments_match_under_every_method() {
        let (s0, _, _) = figure2_segments();
        for method in Method::ALL {
            let cfg = MethodConfig::with_default_threshold(method);
            assert!(
                segments_match(&cfg, &s0, &s0),
                "{method} must match a segment with itself"
            );
        }
    }

    #[test]
    fn zero_threshold_distance_methods_reject_different_segments() {
        let (s0, _, s2) = figure2_segments();
        for method in [
            Method::RelDiff,
            Method::AbsDiff,
            Method::Manhattan,
            Method::Euclidean,
            Method::Chebyshev,
            Method::AvgWave,
            Method::HaarWave,
        ] {
            let cfg = MethodConfig::new(method, 0.0);
            assert!(
                !segments_match(&cfg, &s0, &s2),
                "{method} with zero threshold must reject differing segments"
            );
            assert!(segments_match(&cfg, &s0, &s0));
        }
    }

    #[test]
    fn iteration_methods_always_report_a_match() {
        let (s0, s1, _) = figure2_segments();
        assert!(segments_match(
            &MethodConfig::with_default_threshold(Method::IterAvg),
            &s0,
            &s1
        ));
        assert!(segments_match(
            &MethodConfig::new(Method::IterK, 1.0),
            &s0,
            &s1
        ));
    }

    #[test]
    fn similarity_tests_are_symmetric() {
        let (s0, s1, s2) = figure2_segments();
        for method in Method::ALL {
            let cfg = MethodConfig::with_default_threshold(method);
            for (a, b) in [(&s0, &s1), (&s0, &s2), (&s1, &s2)] {
                assert_eq!(
                    segments_match(&cfg, a, b),
                    segments_match(&cfg, b, a),
                    "{method} must be symmetric"
                );
            }
        }
    }

    #[test]
    fn rel_diff_is_stricter_for_early_small_timestamps() {
        // The paper's discussion: timestamps 1 vs 2 fail a 0.25 threshold
        // even though they are one unit apart, while 100 vs 125 pass.
        let seg = |t0: u64, t1: u64| Segment {
            context: ContextId(0),
            start: Time::ZERO,
            end: Time::from_nanos(t1 + 1),
            events: vec![Event::compute(
                RegionId(0),
                Time::from_nanos(t0),
                Time::from_nanos(t1),
            )],
        };
        assert!(!rel_diff_match(&seg(1, 200), &seg(2, 200), 0.25));
        assert!(rel_diff_match(&seg(100, 200), &seg(125, 200), 0.25));
    }
}
