//! Extended similarity-method catalogue.
//!
//! The paper's conclusion lists "investigating additional difference
//! methods" as future work.  This module provides that extension on top of
//! the unchanged paper pipeline: every extended method plugs into the same
//! stored-segments algorithm through
//! [`crate::reducer::reduce_rank_with_predicate`], so the comparison with the
//! nine paper methods is apples-to-apples (same segmentation, same
//! eligibility rule, same reconstruction).
//!
//! The extended methods are:
//!
//! * [`ExtendedMethod::Dtw`] — dynamic time warping over the measurement
//!   vector (Hauswirth et al.), tolerant of small shifts in when events
//!   happen inside a segment.
//! * [`ExtendedMethod::Cosine`] — cosine dissimilarity of the measurement
//!   vectors, sensitive to the *shape* of the timing profile but not its
//!   magnitude.
//! * [`ExtendedMethod::NormalizedEuclidean`] — the paper's Euclidean test
//!   with the distance divided by `sqrt(len)`, which removes the bias that
//!   makes long segments easier to match.
//! * [`ExtendedMethod::Cdf97Wave`] — the wavelet test using the CDF 9/7
//!   transform (Gamblin et al.) instead of the average/Haar transforms.
//! * [`ExtendedMethod::HistogramDelta`] — Ratn et al. keep histograms of
//!   delta times; this method matches segments whose delta-time histograms
//!   are close in normalized L1 distance.
//! * [`ExtendedMethod::Paper`] — any of the paper's nine methods, so studies
//!   can sweep the union of both catalogues with one configuration type.

use std::fmt;

use trace_model::{stats, AppTrace, RankTrace, ReducedAppTrace, Segment};
use trace_wavelet::{coefficient_distance, WaveletKind};

use crate::dtw::dtw_within;
use crate::features::{FeatureKind, SegmentFeatures};
use crate::method::{Method, MethodConfig};
use crate::metric::{segments_match, wavelet_match};
use crate::reducer::{
    reduce_rank_with_cached_features, reduce_rank_with_predicate, RankReduction, Reducer,
};

/// Number of bins used by the delta-time histogram method.
const HISTOGRAM_BINS: usize = 16;

/// Sakoe–Chiba band radius used by the DTW method.  Segment measurement
/// vectors are index-aligned by construction (same shape), so only small,
/// local warps are meaningful.
const DTW_BAND: usize = 2;

/// One method from the extended catalogue.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ExtendedMethod {
    /// One of the paper's nine methods.
    Paper(Method),
    /// Dynamic time warping over the measurement vector.
    Dtw,
    /// Cosine dissimilarity of the measurement vectors.
    Cosine,
    /// Euclidean distance normalized by the square root of the vector length.
    NormalizedEuclidean,
    /// Wavelet test using the CDF 9/7 transform.
    Cdf97Wave,
    /// Normalized L1 distance between delta-time histograms.
    HistogramDelta,
}

impl ExtendedMethod {
    /// The five extension methods (excluding the paper methods).
    pub const EXTENSIONS: [ExtendedMethod; 5] = [
        ExtendedMethod::Dtw,
        ExtendedMethod::Cosine,
        ExtendedMethod::NormalizedEuclidean,
        ExtendedMethod::Cdf97Wave,
        ExtendedMethod::HistogramDelta,
    ];

    /// The full catalogue: the nine paper methods followed by the five
    /// extensions.
    pub fn all() -> Vec<ExtendedMethod> {
        Method::ALL
            .into_iter()
            .map(ExtendedMethod::Paper)
            .chain(Self::EXTENSIONS)
            .collect()
    }

    /// Display name; paper methods keep their paper names.
    pub fn name(self) -> &'static str {
        match self {
            ExtendedMethod::Paper(m) => m.name(),
            ExtendedMethod::Dtw => "dtw",
            ExtendedMethod::Cosine => "cosine",
            ExtendedMethod::NormalizedEuclidean => "normEuclidean",
            ExtendedMethod::Cdf97Wave => "cdf97Wave",
            ExtendedMethod::HistogramDelta => "histDelta",
        }
    }

    /// Looks a method up by name (case-insensitive), searching the paper
    /// catalogue first and the extensions second.
    pub fn by_name(name: &str) -> Option<ExtendedMethod> {
        if let Some(m) = Method::by_name(name) {
            return Some(ExtendedMethod::Paper(m));
        }
        Self::EXTENSIONS
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// True if this is one of the paper's nine methods.
    pub fn is_paper_method(self) -> bool {
        matches!(self, ExtendedMethod::Paper(_))
    }

    /// Default threshold, chosen analogously to the paper's representative
    /// thresholds (magnitude-scaled methods default to 0.2).
    pub fn default_threshold(self) -> f64 {
        match self {
            ExtendedMethod::Paper(m) => m.default_threshold(),
            ExtendedMethod::Dtw => 0.2,
            ExtendedMethod::Cosine => 0.01,
            ExtendedMethod::NormalizedEuclidean => 0.2,
            ExtendedMethod::Cdf97Wave => 0.2,
            ExtendedMethod::HistogramDelta => 0.25,
        }
    }

    /// The threshold grid used by ablation sweeps over the extensions
    /// (paper methods keep their paper grids).
    pub fn threshold_grid(self) -> Vec<f64> {
        match self {
            ExtendedMethod::Paper(m) => m.threshold_grid(),
            ExtendedMethod::Cosine => vec![0.001, 0.005, 0.01, 0.05, 0.1, 0.5],
            ExtendedMethod::Dtw
            | ExtendedMethod::NormalizedEuclidean
            | ExtendedMethod::Cdf97Wave
            | ExtendedMethod::HistogramDelta => vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }
}

impl fmt::Display for ExtendedMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An extended method plus its threshold.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ExtendedConfig {
    /// The similarity method.
    pub method: ExtendedMethod,
    /// The threshold parameter (same interpretation as [`MethodConfig`] for
    /// paper methods; a relative factor for all extensions).
    pub threshold: f64,
}

impl ExtendedConfig {
    /// Creates a configuration with an explicit threshold.
    pub fn new(method: ExtendedMethod, threshold: f64) -> Self {
        ExtendedConfig { method, threshold }
    }

    /// Creates a configuration using the method's default threshold.
    pub fn with_default_threshold(method: ExtendedMethod) -> Self {
        ExtendedConfig::new(method, method.default_threshold())
    }

    /// Every method of the full catalogue at its default threshold.
    pub fn all_defaults() -> Vec<ExtendedConfig> {
        ExtendedMethod::all()
            .into_iter()
            .map(ExtendedConfig::with_default_threshold)
            .collect()
    }

    /// Short label such as `dtw(0.2)` used in reports.
    pub fn label(&self) -> String {
        format!("{}({})", self.method.name(), self.threshold)
    }
}

/// Cosine dissimilarity (`1 - cosine similarity`) between two vectors.
/// Returns 0 for two zero vectors and 1 when exactly one of them is zero.
pub fn cosine_dissimilarity(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let norm_a: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let norm_b: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    // lint:allow(float_eq) -- exact zero-vector guards per the documented definition; norms are non-negative
    if norm_a == 0.0 && norm_b == 0.0 {
        0.0
    // lint:allow(float_eq) -- exact zero-vector guards per the documented definition; norms are non-negative
    } else if norm_a == 0.0 || norm_b == 0.0 {
        1.0
    } else {
        (1.0 - dot / (norm_a * norm_b)).max(0.0)
    }
}

/// Delta times of a segment: the gaps between consecutive entries of the
/// time-stamp vector (segment start, event entry/exit pairs, segment end).
/// These are the quantities Ratn et al. aggregate into histograms.
pub fn delta_times(segment: &Segment) -> Vec<f64> {
    let v = segment.wavelet_vector();
    v.windows(2).map(|w| (w[1] - w[0]).abs()).collect()
}

/// Histogram of `values` with `bins` equal-width bins over `[0, max]`,
/// normalized so the counts sum to 1.  An all-zero input produces a
/// histogram with all mass in the first bin.
pub fn normalized_histogram(values: &[f64], bins: usize, max: f64) -> Vec<f64> {
    let mut hist = vec![0.0; bins.max(1)];
    if values.is_empty() {
        return hist;
    }
    let width = if max > 0.0 { max / bins as f64 } else { 1.0 };
    for &v in values {
        let mut idx = (v / width).floor() as usize;
        if idx >= hist.len() {
            idx = hist.len() - 1;
        }
        hist[idx] += 1.0;
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        for h in &mut hist {
            *h /= total;
        }
    }
    hist
}

/// Normalized L1 distance between two histograms (half the sum of absolute
/// bin differences, so the result lies in `[0, 1]`).
pub fn histogram_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut sum = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        sum += (x - y).abs();
    }
    sum / 2.0
}

/// Delta-time histogram similarity test (Ratn et al. style): the histograms
/// of the two segments' delta times must be within `threshold` in normalized
/// L1 distance.
pub fn histogram_delta_match(a: &Segment, b: &Segment, threshold: f64) -> bool {
    let da = delta_times(a);
    let db = delta_times(b);
    let max = stats::max(&da).max(stats::max(&db));
    let ha = normalized_histogram(&da, HISTOGRAM_BINS, max);
    let hb = normalized_histogram(&db, HISTOGRAM_BINS, max);
    histogram_distance(&ha, &hb) <= threshold
}

/// DTW similarity test: the band-limited, path-normalized DTW distance
/// between the measurement vectors must not exceed `threshold` times the
/// largest measurement in the pair (the same magnitude scaling the paper
/// uses for the Minkowski distances).
///
/// Decided through [`dtw_within`], which abandons the dynamic program as
/// soon as a whole row's minimum cumulative cost normalizes past the
/// bound — the decision is identical to comparing the full
/// [`crate::dtw::normalized_dtw_distance`], rejections just cost fewer
/// rows.
pub fn dtw_match(a: &Segment, b: &Segment, threshold: f64) -> bool {
    let va = a.measurement_vector();
    let vb = b.measurement_vector();
    let max_value = stats::max(&va).max(stats::max(&vb));
    dtw_within(&va, &vb, Some(DTW_BAND), threshold * max_value)
}

/// Cosine similarity test: the cosine dissimilarity of the measurement
/// vectors must not exceed `threshold`.
pub fn cosine_match(a: &Segment, b: &Segment, threshold: f64) -> bool {
    cosine_dissimilarity(&a.measurement_vector(), &b.measurement_vector()) <= threshold
}

/// Length-normalized Euclidean test: the Euclidean distance divided by
/// `sqrt(len)` must not exceed `threshold` times the largest measurement.
pub fn normalized_euclidean_match(a: &Segment, b: &Segment, threshold: f64) -> bool {
    let va = a.measurement_vector();
    let vb = b.measurement_vector();
    if va.is_empty() && vb.is_empty() {
        return true;
    }
    let distance = stats::euclidean_distance(&va, &vb) / (va.len().max(1) as f64).sqrt();
    let max_value = stats::max(&va).max(stats::max(&vb));
    distance <= threshold * max_value
}

/// Cosine dissimilarity over cached measurement features: only the dot
/// product is computed per pair; the norms come from the feature cache.
/// The cache fills `norm_l2` with the identical expression
/// [`cosine_dissimilarity`] evaluates, so the result is bit-identical to
/// running the naive predicate on the raw measurement vectors.
fn cosine_dissimilarity_cached(a: &SegmentFeatures, b: &SegmentFeatures) -> f64 {
    let dot: f64 = a
        .measurements
        .iter()
        .zip(&b.measurements)
        .map(|(x, y)| x * y)
        .sum();
    let norm_a = a.norm_l2;
    let norm_b = b.norm_l2;
    // lint:allow(float_eq) -- exact zero-vector guards mirroring `cosine_dissimilarity`; norms are non-negative
    if norm_a == 0.0 && norm_b == 0.0 {
        0.0
    // lint:allow(float_eq) -- exact zero-vector guards mirroring `cosine_dissimilarity`; norms are non-negative
    } else if norm_a == 0.0 || norm_b == 0.0 {
        1.0
    } else {
        (1.0 - dot / (norm_a * norm_b)).max(0.0)
    }
}

/// [`normalized_euclidean_match`] over cached features: the cached maxima
/// are the same `stats::max` folds the naive test computes per comparison.
fn normalized_euclidean_cached(a: &SegmentFeatures, b: &SegmentFeatures, threshold: f64) -> bool {
    if a.measurements.is_empty() && b.measurements.is_empty() {
        return true;
    }
    let distance = stats::euclidean_distance(&a.measurements, &b.measurements)
        / (a.measurements.len().max(1) as f64).sqrt();
    let max_value = a.max_measurement.max(b.max_measurement);
    distance <= threshold * max_value
}

/// The CDF 9/7 wavelet test over cached coefficients.  `max(max_abs(a),
/// max_abs(b))` equals the joint `max_abs_coefficient(a, b)` fold exactly
/// (the maximum of two sub-folds of a max fold), so this is bit-identical
/// to [`wavelet_match`] with [`WaveletKind::Cdf97`].
fn cdf97_wave_cached(a: &SegmentFeatures, b: &SegmentFeatures, threshold: f64) -> bool {
    let distance = coefficient_distance(&a.coeffs, &b.coeffs);
    let max_coefficient = a.coeff_max_abs.max(b.coeff_max_abs);
    distance <= threshold * max_coefficient
}

/// Dispatches the similarity test for an extended configuration.
pub fn segments_match_extended(config: &ExtendedConfig, a: &Segment, b: &Segment) -> bool {
    match config.method {
        ExtendedMethod::Paper(m) => segments_match(&MethodConfig::new(m, config.threshold), a, b),
        ExtendedMethod::Dtw => dtw_match(a, b, config.threshold),
        ExtendedMethod::Cosine => cosine_match(a, b, config.threshold),
        ExtendedMethod::NormalizedEuclidean => normalized_euclidean_match(a, b, config.threshold),
        ExtendedMethod::Cdf97Wave => wavelet_match(a, b, WaveletKind::Cdf97, config.threshold),
        ExtendedMethod::HistogramDelta => histogram_delta_match(a, b, config.threshold),
    }
}

/// Reduces traces with an extended method configuration.
///
/// Paper methods delegate to the unchanged [`Reducer`] — so `iter_k` and
/// `iter_avg` keep their special stored-segment handling and the distance
/// methods get the candidate index ([`crate::index`]).  Extension methods
/// that read only measurement vectors or wavelet coefficients (`cosine`,
/// `normEuclidean`, `cdf97Wave`) run through the cached-feature candidate
/// path (features computed once per segment, once per representative);
/// `cosine` gets no index window because it is scale-invariant — a segment
/// of any duration can be a perfect cosine match — so no duration bound is
/// admissible for it.  Only the structural methods (DTW's banded warping,
/// the delta-time histograms) remain on the naive per-comparison
/// predicate.
#[derive(Clone, Copy, Debug)]
pub struct ExtendedReducer {
    config: ExtendedConfig,
}

impl ExtendedReducer {
    /// Creates a reducer for the given extended configuration.
    pub fn new(config: ExtendedConfig) -> Self {
        ExtendedReducer { config }
    }

    /// Convenience constructor using the method's default threshold.
    pub fn with_default_threshold(method: ExtendedMethod) -> Self {
        ExtendedReducer::new(ExtendedConfig::with_default_threshold(method))
    }

    /// The configuration in use.
    pub fn config(&self) -> ExtendedConfig {
        self.config
    }

    /// Reduces a single rank trace.
    pub fn reduce_rank(&self, trace: &RankTrace) -> RankReduction {
        let threshold = self.config.threshold;
        match self.config.method {
            ExtendedMethod::Paper(m) => {
                Reducer::new(MethodConfig::new(m, threshold)).reduce_rank(trace)
            }
            ExtendedMethod::Cosine => {
                reduce_rank_with_cached_features(trace, FeatureKind::Measurements, move |a, b| {
                    cosine_dissimilarity_cached(a, b) <= threshold
                })
            }
            ExtendedMethod::NormalizedEuclidean => {
                reduce_rank_with_cached_features(trace, FeatureKind::Measurements, move |a, b| {
                    normalized_euclidean_cached(a, b, threshold)
                })
            }
            ExtendedMethod::Cdf97Wave => reduce_rank_with_cached_features(
                trace,
                FeatureKind::Wavelet(WaveletKind::Cdf97),
                move |a, b| cdf97_wave_cached(a, b, threshold),
            ),
            ExtendedMethod::Dtw | ExtendedMethod::HistogramDelta => {
                let config = self.config;
                reduce_rank_with_predicate(trace, move |a, b| {
                    segments_match_extended(&config, a, b)
                })
            }
        }
    }

    /// Reduces every rank of an application trace.
    pub fn reduce_app(&self, app: &AppTrace) -> ReducedAppTrace {
        match self.config.method {
            ExtendedMethod::Paper(m) => {
                Reducer::new(MethodConfig::new(m, self.config.threshold)).reduce_app(app)
            }
            _ => {
                let mut reduced = ReducedAppTrace::for_app(app);
                for rank in &app.ranks {
                    reduced.ranks.push(self.reduce_rank(rank).reduced);
                }
                reduced
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{ContextId, Event, RegionId, Time};
    use trace_sim::{SizePreset, Workload, WorkloadKind};

    fn segment(e0: (u64, u64), e1: (u64, u64), end: u64) -> Segment {
        Segment {
            context: ContextId(0),
            start: Time::ZERO,
            end: Time::from_nanos(end),
            events: vec![
                Event::compute(RegionId(0), Time::from_nanos(e0.0), Time::from_nanos(e0.1)),
                Event::compute(RegionId(1), Time::from_nanos(e1.0), Time::from_nanos(e1.1)),
            ],
        }
    }

    fn figure2_segments() -> (Segment, Segment, Segment) {
        (
            segment((1, 20), (21, 49), 50),
            segment((1, 40), (41, 50), 51),
            segment((1, 17), (18, 48), 49),
        )
    }

    #[test]
    fn catalogue_contains_paper_and_extension_methods() {
        let all = ExtendedMethod::all();
        assert_eq!(all.len(), 9 + 5);
        assert_eq!(all.iter().filter(|m| m.is_paper_method()).count(), 9);
        let mut names: Vec<_> = all.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "names must be unique");
    }

    #[test]
    fn by_name_round_trips_both_catalogues() {
        for method in ExtendedMethod::all() {
            assert_eq!(ExtendedMethod::by_name(method.name()), Some(method));
        }
        assert_eq!(
            ExtendedMethod::by_name("avgWave"),
            Some(ExtendedMethod::Paper(Method::AvgWave))
        );
        assert_eq!(ExtendedMethod::by_name("DTW"), Some(ExtendedMethod::Dtw));
        assert_eq!(ExtendedMethod::by_name("bogus"), None);
    }

    #[test]
    fn default_config_labels_and_grids() {
        let cfg = ExtendedConfig::with_default_threshold(ExtendedMethod::Dtw);
        assert_eq!(cfg.label(), "dtw(0.2)");
        assert_eq!(ExtendedConfig::all_defaults().len(), 14);
        for method in ExtendedMethod::EXTENSIONS {
            assert_eq!(method.threshold_grid().len(), 6);
        }
    }

    #[test]
    fn cosine_dissimilarity_edge_cases() {
        assert_eq!(cosine_dissimilarity(&[], &[]), 0.0);
        assert_eq!(cosine_dissimilarity(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(cosine_dissimilarity(&[1.0, 0.0], &[0.0, 0.0]), 1.0);
        assert!(cosine_dissimilarity(&[1.0, 2.0], &[2.0, 4.0]) < 1e-12);
        let opposite = cosine_dissimilarity(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((opposite - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_is_normalized_and_distance_bounded() {
        let h = normalized_histogram(&[1.0, 2.0, 3.0, 10.0], 4, 10.0);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let empty = normalized_histogram(&[], 4, 10.0);
        assert_eq!(empty, vec![0.0; 4]);
        let d = histogram_distance(&h, &empty);
        assert!(d > 0.0 && d <= 1.0 + 1e-12);
        assert_eq!(histogram_distance(&h, &h), 0.0);
    }

    #[test]
    fn delta_times_follow_the_wavelet_vector() {
        let (s0, _, _) = figure2_segments();
        // wavelet vector: 0, 1, 20, 21, 49, 50 -> deltas 1, 19, 1, 28, 1.
        assert_eq!(delta_times(&s0), vec![1.0, 19.0, 1.0, 28.0, 1.0]);
    }

    #[test]
    fn every_extension_matches_identical_segments() {
        let (s0, _, _) = figure2_segments();
        for method in ExtendedMethod::EXTENSIONS {
            let cfg = ExtendedConfig::with_default_threshold(method);
            assert!(
                segments_match_extended(&cfg, &s0, &s0),
                "{method} must match a segment with itself"
            );
        }
    }

    #[test]
    fn extensions_are_symmetric() {
        let (s0, s1, s2) = figure2_segments();
        for method in ExtendedMethod::EXTENSIONS {
            let cfg = ExtendedConfig::with_default_threshold(method);
            for (a, b) in [(&s0, &s1), (&s0, &s2), (&s1, &s2)] {
                assert_eq!(
                    segments_match_extended(&cfg, a, b),
                    segments_match_extended(&cfg, b, a),
                    "{method} must be symmetric"
                );
            }
        }
    }

    #[test]
    fn figure2_pairs_behave_sensibly_under_extensions() {
        let (s0, s1, s2) = figure2_segments();
        // s0 and s2 are nearly identical; s1 is the outlier.
        for method in [
            ExtendedMethod::Dtw,
            ExtendedMethod::NormalizedEuclidean,
            ExtendedMethod::Cdf97Wave,
        ] {
            let cfg = ExtendedConfig::with_default_threshold(method);
            assert!(
                segments_match_extended(&cfg, &s0, &s2),
                "{method} should match the near-identical pair"
            );
        }
        // A very tight threshold rejects the dissimilar pair for every
        // magnitude-scaled extension.
        for method in [
            ExtendedMethod::Dtw,
            ExtendedMethod::NormalizedEuclidean,
            ExtendedMethod::Cdf97Wave,
        ] {
            let cfg = ExtendedConfig::new(method, 0.001);
            assert!(
                !segments_match_extended(&cfg, &s2, &s1),
                "{method} at a tight threshold should reject the outlier"
            );
        }
    }

    #[test]
    fn dtw_tolerates_shifts_that_pointwise_methods_reject() {
        // Two segments with identical durations but the second event shifted
        // later: relDiff at a strict threshold rejects, DTW accepts.
        let a = segment((10, 20), (30, 40), 100);
        let b = segment((10, 20), (34, 44), 100);
        assert!(dtw_match(&a, &b, 0.05));
        assert!(!crate::metric::rel_diff_match(&a, &b, 0.05));
    }

    #[test]
    fn extended_reducer_delegates_paper_methods() {
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        let via_paper = Reducer::with_default_threshold(Method::AvgWave).reduce_app(&app);
        let via_extended =
            ExtendedReducer::with_default_threshold(ExtendedMethod::Paper(Method::AvgWave))
                .reduce_app(&app);
        assert_eq!(via_paper.total_stored(), via_extended.total_stored());
        assert_eq!(via_paper.total_execs(), via_extended.total_execs());
    }

    #[test]
    fn cached_feature_extensions_are_bit_identical_to_the_predicate_path() {
        // The ported extensions (cosine / normEuclidean / cdf97Wave) run on
        // the cached-feature candidate path; the naive per-comparison
        // predicate must agree on every threshold of the grid.
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        for method in [
            ExtendedMethod::Cosine,
            ExtendedMethod::NormalizedEuclidean,
            ExtendedMethod::Cdf97Wave,
        ] {
            for threshold in method.threshold_grid() {
                let config = ExtendedConfig::new(method, threshold);
                let cached = ExtendedReducer::new(config).reduce_app(&app);
                let naive = crate::reducer::reduce_app_with_predicate(&app, |a, b| {
                    segments_match_extended(&config, a, b)
                });
                assert_eq!(cached, naive, "{method} at {threshold}");
            }
        }
    }

    #[test]
    fn extended_reducer_reduces_and_reconstructs_with_every_extension() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        for method in ExtendedMethod::EXTENSIONS {
            let reduced = ExtendedReducer::with_default_threshold(method).reduce_app(&app);
            assert_eq!(reduced.rank_count(), app.rank_count(), "{method}");
            assert!(reduced.total_stored() >= 1, "{method}");
            let approx = reduced.reconstruct();
            assert_eq!(approx.total_events(), app.total_events(), "{method}");
        }
    }

    #[test]
    fn tighter_thresholds_do_not_store_fewer_segments() {
        let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
        for method in [
            ExtendedMethod::Dtw,
            ExtendedMethod::NormalizedEuclidean,
            ExtendedMethod::Cdf97Wave,
            ExtendedMethod::HistogramDelta,
        ] {
            let mut previous = 0usize;
            for threshold in [1.0, 0.4, 0.1, 0.01] {
                let reduced =
                    ExtendedReducer::new(ExtendedConfig::new(method, threshold)).reduce_app(&app);
                let stored = reduced.total_stored();
                assert!(
                    stored >= previous,
                    "{method}: stored {stored} at {threshold} must be >= {previous}"
                );
                previous = stored;
            }
        }
    }
}
