//! Sub-linear candidate index over stored-representative features.
//!
//! The stored-segments reduction (Section 3.1) matches every incoming
//! segment against the *first* stored representative its similarity method
//! accepts, scanning the same-shape bucket in insertion order.  PR 5's
//! cached fast path made each of those comparisons cheap, but the scan
//! itself stayed linear in the bucket size.  This module replaces the scan
//! with a `CandidateIndex` that prunes most candidates *before* they are
//! visited, while returning the survivors **in insertion order** so the
//! winning representative — and therefore the reduced trace — is
//! bit-identical to the linear scan:
//!
//! * **Duration-sorted window.**  Entries are kept sorted by a per-method
//!   *center* (segment duration for the measurement-vector methods, the
//!   leading "overall trend" coefficient for the wavelet methods) so the
//!   exact per-candidate duration lower bound of the cached kernels becomes
//!   one binary-search window per incoming segment.  The window is widened
//!   conservatively (see below), so it only ever excludes candidates the
//!   kernel provably rejects.
//! * **Triangle-inequality pivots.**  For the metric methods (Manhattan /
//!   Euclidean / Chebyshev / absDiff and the wavelet coefficient
//!   distances), each entry stores its exact kernel distance to a small
//!   pivot set: the *origin* (the zero vector — whose "distance" is the
//!   cached L1/L2/sup norm, making PR 5's norm-gap prefilter the 0-cost
//!   special case of pivoting) plus the first few stored representatives
//!   of the bucket.  A candidate whose pivot distance differs from the
//!   incoming segment's by more than the (slack-adjusted) threshold bound
//!   cannot match and is skipped without being visited.
//! * **Adaptive engagement.**  The prefiltered kernels reject a candidate
//!   in a couple of flops, so the index only pays for itself when it can
//!   skip *many* candidates per query.  Buckets below `SCAN_MIN_BUCKET`
//!   are scanned directly; windows admitting more than half a bucket are
//!   walked in insertion order with a per-entry interval test instead of
//!   binary search plus re-sort; representative-pivot distances are only
//!   materialized once a bucket reaches `PIVOT_MIN_BUCKET`.  Every
//!   variant excludes the same candidates, so counters and output are
//!   unchanged — only the constant factor moves.
//!
//! # Why pruning preserves first-match semantics
//!
//! The index returns a **superset-filtered subsequence**: every candidate
//! it yields still runs the full cached predicate, and every candidate it
//! skips is *proven* (under conservative floating-point slack) to be one
//! the predicate would reject.  Since survivors are visited in insertion
//! order, the first accepted candidate is exactly the first candidate the
//! linear scan would have accepted — not merely the nearest one.  Only
//! exclusions need a proof; inclusions cost one (cheap, cached) predicate
//! call.  This is what lets the window arithmetic be sloppy-but-safe: any
//! doubt is resolved by widening, never by tightening.
//!
//! # Floating-point discipline
//!
//! All window endpoints are computed with two layers of slack:
//!
//! * the threshold is inflated by `distance_error_factor``(n)` — the same
//!   `1 + 4 · n · ε` factor the norm prefilters use — to absorb the
//!   kernel's own worst-case accumulation error over `n` terms, and
//! * every endpoint is additionally widened by the relative
//!   `WINDOW_SLACK` (~2⁻⁴⁰, ~4000× the worst case of the handful of
//!   endpoint flops), which dominates the per-operation rounding of the
//!   window arithmetic itself.
//!
//! Pivot pruning reuses `norm_gap_slack` / `distance_error_factor`
//! verbatim: the reverse triangle inequality `|d(i,p) − d(s,p)| ≤ d(i,s)`
//! holds for exact reals, the computed pivot distances carry accumulation
//! error proportional to their magnitude, so the gap is reduced by the
//! absolute slack and compared against a bound inflated by the kernel's
//! error factor — exactly the argument documented for the norm prefilters
//! in [`crate::features`], of which the origin pivot is the special case.
//!
//! Ordering is deterministic: entries sort by `f64::total_cmp` over centers
//! normalized with `+ 0.0` (so `-0.0` and `0.0` compare equal), ties broken
//! by insertion position, and survivors are re-sorted by insertion position
//! before visiting.

use std::cmp::Ordering;

use trace_model::stats;
use trace_wavelet::coefficient_distance;

use crate::features::{distance_error_factor, norm_gap_slack, MatchStats, SegmentFeatures};
use crate::method::{Method, MethodConfig};
use crate::metric::abs_diff_limit;

/// Relative widening applied to every window endpoint (and to the
/// threshold before deriving endpoints).  ~2⁻⁴⁰: thousands of times the
/// rounding of the few flops that compute an endpoint, yet far too small
/// to let through any candidate a kernel could reject for a real
/// (non-borderline-by-2⁻⁴⁰) reason — and borderline candidates are merely
/// *visited*, never misjudged, because survivors still run the kernel.
const WINDOW_SLACK: f64 = 1e-12;

/// Number of stored-representative pivots per bucket (the origin pivot is
/// always on top of these).  The first `MAX_PIVOTS` entries of a bucket
/// serve as its pivots: they are the representatives every historic scan
/// visited first, so their kernel distances are computed for most incoming
/// segments anyway.
const MAX_PIVOTS: usize = 4;

/// Representative pivots only engage once a bucket is at least this large;
/// below that, the window plus the free origin pivot prune enough and the
/// extra pivot kernel evaluations per query would cost more than the scan.
/// Pivot distances are also only *materialized* once a bucket crosses this
/// size (backfilled for the existing entries), so buckets that never grow
/// large never pay the insert-time kernel evaluations.
const PIVOT_MIN_BUCKET: usize = 8;

/// Buckets smaller than this are scanned directly in insertion order: the
/// prefiltered kernel rejects a candidate in a couple of flops, so for a
/// handful of candidates the window arithmetic plus binary search costs
/// more than it can possibly save.  The index must be *free* when it
/// cannot help — most buckets of the paper workloads hold only a few
/// representatives.
const SCAN_MIN_BUCKET: usize = 8;

/// Which candidate-search strategy the reducer uses for the distance
/// methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CandidateSearch {
    /// Duration-window + pivot-pruned index (`CandidateIndex`); the
    /// default.  Bit-identical output to [`CandidateSearch::LinearScan`].
    #[default]
    Indexed,
    /// PR 5's linear bucket scan (every candidate visited).  Kept for
    /// benchmarking the index against and for equivalence tests.
    LinearScan,
}

/// One indexed stored representative.
#[derive(Clone, Debug)]
struct IndexEntry {
    /// Stored-representative id (index into the reducer's feature table).
    id: u32,
    /// Sort key: duration (measurement methods) or leading wavelet
    /// coefficient, normalized so `-0.0` sorts as `0.0`.
    center: f64,
    /// Scale of the entry: largest measurement / largest absolute wavelet
    /// coefficient.  Bounds the candidate-dependent threshold scale.
    extent: f64,
    /// Exact kernel distance to the zero vector — the cached norm that the
    /// configured metric induces (L1/L2/sup norm, or the L2 norm of the
    /// wavelet coefficients).  Unused (0) for `relDiff`.
    origin_dist: f64,
    /// Exact kernel distances to the bucket's representative pivots
    /// (entries `0..min(position, MAX_PIVOTS)`); slots beyond that are 0
    /// and never read.
    pivot_dists: [f64; MAX_PIVOTS],
}

/// Sorted, pivoted candidate index for one same-shape bucket.
///
/// Insertion order of entries mirrors the bucket's stored order, which is
/// what [`CandidateIndex::find_first`] restores before visiting survivors.
#[derive(Clone, Debug, Default)]
pub(crate) struct CandidateIndex {
    /// Entries in insertion (stored) order.
    entries: Vec<IndexEntry>,
    /// Entry positions sorted by `(center, position)` ascending.
    order: Vec<u32>,
    /// Largest `extent - center` over all entries.  Within a bucket the
    /// extent always dominates the center (the measurement vector contains
    /// the duration; the coefficient max-abs dominates the leading
    /// coefficient), so this is ≥ 0 and bounds any entry's extent by
    /// `center + max_excess` — which turns the candidate-dependent
    /// threshold scale `t · max(extent_i, extent_s)` into a solvable
    /// window over centers.
    max_excess: f64,
    /// How many leading entries have their `pivot_dists` materialized.
    /// Stays 0 until the bucket reaches [`PIVOT_MIN_BUCKET`], then tracks
    /// `entries.len()`: small buckets never pay the insert-time kernel
    /// evaluations for pivot distances they would never consult.
    pivots_filled: usize,
}

impl CandidateIndex {
    /// Indexes the representative `id` (whose features are
    /// `all[id as usize]`).  Must be called in stored order.
    pub(crate) fn insert(&mut self, id: u32, config: &MethodConfig, all: &[SegmentFeatures]) {
        let features = &all[id as usize];
        let method = config.method;
        let center = center_of(method, features) + 0.0;
        let extent = extent_of(method, features);
        self.max_excess = self.max_excess.max(extent - center);
        let position = self.entries.len() as u32;
        let at = self.order.partition_point(|&p| {
            self.entries[p as usize].center.total_cmp(&center) != Ordering::Greater
        });
        self.order.insert(at, position);
        self.entries.push(IndexEntry {
            id,
            center,
            extent,
            origin_dist: origin_distance(method, features),
            pivot_dists: [0.0; MAX_PIVOTS],
        });
        if uses_pivots(method) && self.entries.len() >= PIVOT_MIN_BUCKET {
            self.fill_pivot_dists(method, all);
        }
    }

    /// Materializes `pivot_dists` for every entry that does not have them
    /// yet.  Called once the bucket reaches [`PIVOT_MIN_BUCKET`]: the first
    /// crossing backfills the whole bucket, later inserts fill just the new
    /// entry, so the amortized cost is at most [`MAX_PIVOTS`] kernel
    /// evaluations per stored representative — and zero for buckets that
    /// stay small.
    fn fill_pivot_dists(&mut self, method: Method, all: &[SegmentFeatures]) {
        while self.pivots_filled < self.entries.len() {
            let i = self.pivots_filled;
            let mut dists = [0.0; MAX_PIVOTS];
            for (p, dist) in dists.iter_mut().enumerate().take(i.min(MAX_PIVOTS)) {
                let pivot = &all[self.entries[p].id as usize];
                *dist = pivot_distance(method, &all[self.entries[i].id as usize], pivot);
            }
            self.entries[i].pivot_dists = dists;
            self.pivots_filled += 1;
        }
    }

    /// Finds the first stored representative (in insertion order) that
    /// `try_match` accepts, pruning candidates the window / pivot bounds
    /// prove unmatchable.  `buf` is a reusable scratch buffer for the
    /// surviving positions.
    ///
    /// Counter contract: candidates skipped by the window / pivots are
    /// counted into [`MatchStats::index_window_prunes`] /
    /// [`MatchStats::index_pivot_prunes`]; `try_match` itself counts the
    /// visited comparisons.  Together they reconstruct exactly the number
    /// of candidates a linear scan would have examined
    /// ([`MatchStats::candidates`]), including the truncation at the first
    /// match.  Buckets below [`SCAN_MIN_BUCKET`] degenerate to that linear
    /// scan outright (no prunes attributed) — the identity holds trivially.
    pub(crate) fn find_first<F>(
        &self,
        config: &MethodConfig,
        incoming: &SegmentFeatures,
        all: &[SegmentFeatures],
        stats: &mut MatchStats,
        buf: &mut Vec<u32>,
        mut try_match: F,
    ) -> Option<u32>
    where
        F: FnMut(u32, &mut MatchStats) -> bool,
    {
        let total = self.entries.len();
        if total == 0 {
            return None;
        }
        if total < SCAN_MIN_BUCKET {
            // Small bucket: the prefiltered kernel is cheaper per candidate
            // than any window arithmetic.  Plain insertion-order scan; the
            // kernel counts its comparisons, nothing is attributed to the
            // index, and `candidates()` degenerates to `comparisons` —
            // exactly the linear scan's bookkeeping.
            return self
                .entries
                .iter()
                .find(|entry| try_match(entry.id, stats))
                .map(|entry| entry.id);
        }
        let method = config.method;
        let n = term_count(method, incoming);
        let (lo, hi) = self.center_window(config, incoming, n);
        let begin = match lo {
            Some(lo) => self.order.partition_point(|&p| {
                self.entries[p as usize].center.total_cmp(&lo) == Ordering::Less
            }),
            None => 0,
        };
        let end = match hi {
            Some(hi) => self.order.partition_point(|&p| {
                self.entries[p as usize].center.total_cmp(&hi) != Ordering::Greater
            }),
            None => total,
        };
        buf.clear();
        if (end - begin) * 2 <= total {
            if begin < end {
                buf.extend_from_slice(&self.order[begin..end]);
                // Entry positions ascending == insertion order: first-match
                // semantics depend on visiting survivors in this order.
                buf.sort_unstable();
            }
        } else {
            // Wide window: re-sorting most of the bucket would cost
            // O(w log w) per query.  Walk the entries in insertion order
            // instead, applying the *same* interval test the binary search
            // encodes — identical survivors, identical counters, linear
            // worst case.
            buf.extend(self.entries.iter().enumerate().filter_map(|(p, entry)| {
                let below = lo.is_some_and(|lo| entry.center.total_cmp(&lo) == Ordering::Less);
                let above = hi.is_some_and(|hi| entry.center.total_cmp(&hi) == Ordering::Greater);
                (!below && !above).then_some(p as u32)
            }));
        }

        let pivoting = uses_pivots(method);
        let origin_incoming = if pivoting {
            origin_distance(method, incoming)
        } else {
            0.0
        };
        // Representative-pivot distances from the incoming segment,
        // computed lazily: only when a candidate survives the cheaper
        // checks and actually has that pivot distance on record.
        let use_rep_pivots = pivoting && total >= PIVOT_MIN_BUCKET;
        let mut query_dists = [0.0f64; MAX_PIVOTS];
        let mut query_known = [false; MAX_PIVOTS];
        let factor = distance_error_factor(n);

        let mut visited = 0usize;
        let mut pivot_rejects = 0usize;
        for &position in buf.iter() {
            let entry = &self.entries[position as usize];
            if pivoting
                && self.pivot_rejects(
                    config,
                    incoming,
                    all,
                    entry,
                    position as usize,
                    n,
                    factor,
                    origin_incoming,
                    use_rep_pivots,
                    &mut query_dists,
                    &mut query_known,
                )
            {
                pivot_rejects += 1;
                continue;
            }
            visited += 1;
            if try_match(entry.id, stats) {
                // A linear scan would have examined every candidate up to
                // and including this position; attribute the skipped ones.
                let scanned = position as usize + 1;
                stats.index_window_prunes += scanned - visited - pivot_rejects;
                stats.index_pivot_prunes += pivot_rejects;
                return Some(entry.id);
            }
        }
        stats.index_window_prunes += total - visited - pivot_rejects;
        stats.index_pivot_prunes += pivot_rejects;
        None
    }

    /// True when the origin / representative pivots prove `entry` cannot
    /// match the incoming segment.
    #[allow(clippy::too_many_arguments)]
    fn pivot_rejects(
        &self,
        config: &MethodConfig,
        incoming: &SegmentFeatures,
        all: &[SegmentFeatures],
        entry: &IndexEntry,
        position: usize,
        n: usize,
        factor: f64,
        origin_incoming: f64,
        use_rep_pivots: bool,
        query_dists: &mut [f64; MAX_PIVOTS],
        query_known: &mut [bool; MAX_PIVOTS],
    ) -> bool {
        let bound = match_bound(config, incoming, entry.extent);
        let inflated = bound * factor;
        // Origin pivot: free (both distances are cached norms).
        let gap = (origin_incoming - entry.origin_dist).abs()
            - norm_gap_slack(n, origin_incoming, entry.origin_dist);
        if gap > inflated {
            return true;
        }
        if !use_rep_pivots {
            return false;
        }
        for p in 0..position.min(MAX_PIVOTS) {
            if !query_known[p] {
                let pivot = &all[self.entries[p].id as usize];
                query_dists[p] = pivot_distance(config.method, incoming, pivot);
                query_known[p] = true;
            }
            let gap = (query_dists[p] - entry.pivot_dists[p]).abs()
                - norm_gap_slack(n, query_dists[p], entry.pivot_dists[p]);
            if gap > inflated {
                return true;
            }
        }
        false
    }

    /// The center window `[lo, hi]` outside which no candidate can match
    /// the incoming segment (`None` = unbounded on that side).
    ///
    /// Derivations (exact reals, with `τ` the threshold inflated by the
    /// kernel error factor and [`WINDOW_SLACK`]; `c`/`x` the incoming
    /// center/extent, `E` the bucket's `max_excess`, so every stored
    /// extent obeys `extent_s ≤ center_s + E`):
    ///
    /// * `relDiff`: a match requires `|c − c_s| / max(c, c_s) ≤ τ` (the
    ///   duration pair is the kernel's first test), so
    ///   `c·(1−τ) ≤ c_s ≤ c/(1−τ)`; no window when `τ ≥ 1`.
    /// * `absDiff`: the duration pair must satisfy `|c − c_s| ≤ limit`,
    ///   so `c − limit ≤ c_s ≤ c + limit`.
    /// * Minkowski / wavelet: a match requires
    ///   `|c − c_s| ≤ τ·max(x, extent_s)`.  If the incoming extent
    ///   dominates: `|c − c_s| ≤ τ·x`.  Otherwise
    ///   `|c − c_s| ≤ τ·(c_s + E)`, which solves to
    ///   `c_s ≥ (c − τE)/(1+τ)` and, when `τ < 1`,
    ///   `c_s ≤ (c + τE)/(1−τ)`.  The window takes the weaker (min/max)
    ///   bound of the two cases; the upper side is unbounded when `τ ≥ 1`.
    fn center_window(
        &self,
        config: &MethodConfig,
        incoming: &SegmentFeatures,
        n: usize,
    ) -> (Option<f64>, Option<f64>) {
        let method = config.method;
        let c = center_of(method, incoming) + 0.0;
        let tau = config.threshold * distance_error_factor(n) * (1.0 + WINDOW_SLACK);
        match method {
            Method::RelDiff => {
                let denom = 1.0 - tau;
                if denom <= 0.0 {
                    return (None, None);
                }
                (Some(widen_lo(c * denom)), Some(widen_hi(c / denom)))
            }
            Method::AbsDiff => {
                let limit = abs_diff_limit(config.threshold) * (1.0 + WINDOW_SLACK);
                (Some(widen_lo(c - limit)), Some(widen_hi(c + limit)))
            }
            Method::Manhattan
            | Method::Euclidean
            | Method::Chebyshev
            | Method::AvgWave
            | Method::HaarWave => {
                let x = extent_of(method, incoming);
                let excess = self.max_excess * (1.0 + WINDOW_SLACK);
                let lo = (c - tau * x).min((c - tau * excess) / (1.0 + tau));
                let denom = 1.0 - tau;
                let hi = if denom > 0.0 {
                    Some(widen_hi((c + tau * x).max((c + tau * excess) / denom)))
                } else {
                    None
                };
                (Some(widen_lo(lo)), hi)
            }
            Method::IterK | Method::IterAvg => (None, None),
        }
    }
}

/// Moves a lower endpoint down by the relative [`WINDOW_SLACK`] (works for
/// negative endpoints too).
fn widen_lo(x: f64) -> f64 {
    x - x.abs() * WINDOW_SLACK
}

/// Moves an upper endpoint up by the relative [`WINDOW_SLACK`].
fn widen_hi(x: f64) -> f64 {
    x + x.abs() * WINDOW_SLACK
}

/// The sort key of a segment under `method`: its duration, or the leading
/// ("overall trend") wavelet coefficient.
fn center_of(method: Method, features: &SegmentFeatures) -> f64 {
    match method {
        Method::AvgWave | Method::HaarWave => features.coeffs.first().copied().unwrap_or(0.0),
        _ => features.duration,
    }
}

/// The scale of a segment under `method`: the value the threshold is
/// multiplied by (or an upper bound of it that the excess trick uses).
fn extent_of(method: Method, features: &SegmentFeatures) -> f64 {
    match method {
        Method::AvgWave | Method::HaarWave => features.coeff_max_abs,
        _ => features.max_measurement,
    }
}

/// Number of accumulation terms the kernel's error factor must cover.
fn term_count(method: Method, incoming: &SegmentFeatures) -> usize {
    match method {
        Method::AvgWave | Method::HaarWave => incoming.coeffs.len(),
        _ => incoming.measurements.len(),
    }
}

/// True for methods whose kernel is a metric: triangle-inequality pivots
/// (including the origin pivot) are admissible.  `relDiff` is not a metric
/// (its scale changes per pair) and the iteration methods have no kernel.
fn uses_pivots(method: Method) -> bool {
    matches!(
        method,
        Method::AbsDiff
            | Method::Manhattan
            | Method::Euclidean
            | Method::Chebyshev
            | Method::AvgWave
            | Method::HaarWave
    )
}

/// The distance of a segment to the zero vector under the method's metric
/// — exactly the cached norms: pivoting against the origin costs nothing.
fn origin_distance(method: Method, features: &SegmentFeatures) -> f64 {
    match method {
        Method::Manhattan => features.norm_l1,
        Method::Euclidean => features.norm_l2,
        // Measurements are non-negative, so the cached maximum *is* the
        // sup norm the Chebyshev / absDiff per-pair tests induce.
        Method::Chebyshev | Method::AbsDiff => features.max_measurement,
        Method::AvgWave | Method::HaarWave => features.coeff_norm_l2,
        Method::RelDiff | Method::IterK | Method::IterAvg => 0.0,
    }
}

/// The exact kernel distance between two feature caches under the method's
/// metric — the same scalar kernels the full similarity tests run, so the
/// slack argument for the norm prefilters transfers verbatim.
fn pivot_distance(method: Method, a: &SegmentFeatures, b: &SegmentFeatures) -> f64 {
    match method {
        Method::Manhattan => stats::manhattan_distance(&a.measurements, &b.measurements),
        Method::Euclidean => stats::euclidean_distance(&a.measurements, &b.measurements),
        Method::Chebyshev | Method::AbsDiff => {
            stats::chebyshev_distance(&a.measurements, &b.measurements)
        }
        Method::AvgWave | Method::HaarWave => coefficient_distance(&a.coeffs, &b.coeffs),
        Method::RelDiff | Method::IterK | Method::IterAvg => {
            unreachable!("pivoting is only enabled for metric methods")
        }
    }
}

/// The acceptance bound the kernel compares its distance against, computed
/// with the identical expression (`threshold * max(incoming, stored)` for
/// the scaled metrics; the fixed microsecond limit for `absDiff`).
fn match_bound(config: &MethodConfig, incoming: &SegmentFeatures, stored_extent: f64) -> f64 {
    match config.method {
        Method::AbsDiff => abs_diff_limit(config.threshold),
        Method::AvgWave | Method::HaarWave => {
            config.threshold * incoming.coeff_max_abs.max(stored_extent)
        }
        _ => config.threshold * incoming.max_measurement.max(stored_extent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{segments_match_cached, MatchScratch};
    use trace_model::{ContextId, Event, RegionId, Segment, Time};

    fn segment(e0: (u64, u64), e1: (u64, u64), end: u64) -> Segment {
        Segment {
            context: ContextId(0),
            start: Time::ZERO,
            end: Time::from_nanos(end),
            events: vec![
                Event::compute(RegionId(0), Time::from_nanos(e0.0), Time::from_nanos(e0.1)),
                Event::compute(RegionId(1), Time::from_nanos(e1.0), Time::from_nanos(e1.1)),
            ],
        }
    }

    /// A family of same-shape segments with scaled timings.
    fn scaled_family(scales: &[u64]) -> Vec<Segment> {
        scales
            .iter()
            .map(|&s| segment((s, 20 * s), (21 * s, 49 * s), 50 * s))
            .collect()
    }

    fn distance_methods() -> [Method; 7] {
        [
            Method::RelDiff,
            Method::AbsDiff,
            Method::Manhattan,
            Method::Euclidean,
            Method::Chebyshev,
            Method::AvgWave,
            Method::HaarWave,
        ]
    }

    /// Drives the index and a plain scan over the same stored set and
    /// asserts the identical winner for every probe.
    fn assert_index_matches_scan(method: Method, threshold: f64, family: &[Segment]) {
        let config = MethodConfig::new(method, threshold);
        let features: Vec<SegmentFeatures> = family
            .iter()
            .map(|s| SegmentFeatures::for_config(&config, s))
            .collect();
        let mut index = CandidateIndex::default();
        for id in 0..family.len() as u32 {
            index.insert(id, &config, &features);
        }
        let mut buf = Vec::new();
        for probe in &features {
            let mut stats = MatchStats::default();
            let indexed = index.find_first(
                &config,
                probe,
                &features,
                &mut stats,
                &mut buf,
                |id, stats| segments_match_cached(&config, probe, &features[id as usize], stats),
            );
            let mut scan_stats = MatchStats::default();
            let scanned = (0..family.len() as u32).find(|&id| {
                segments_match_cached(&config, probe, &features[id as usize], &mut scan_stats)
            });
            assert_eq!(indexed, scanned, "{method} at {threshold}");
            assert_eq!(
                stats.candidates(),
                scan_stats.comparisons,
                "{method} at {threshold}: pruned + visited must equal the scan's workload"
            );
        }
    }

    #[test]
    fn index_agrees_with_scan_on_a_scaled_family() {
        // 12 members exercise the window + pivot path, 3 the small-bucket
        // fallback scan; the counter identity must hold on both.
        let family = scaled_family(&[1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233]);
        let small = scaled_family(&[1, 4, 9]);
        for method in distance_methods() {
            for threshold in [0.0, 0.05, 0.2, 0.8, 1.0, 10.0] {
                let threshold = if method == Method::AbsDiff {
                    threshold * 10.0 // microseconds
                } else {
                    threshold
                };
                assert_index_matches_scan(method, threshold, &family);
                assert_index_matches_scan(method, threshold, &small);
            }
        }
    }

    #[test]
    fn index_returns_candidates_in_insertion_order_not_center_order() {
        // Stored out of duration order: the sorted window must not change
        // which candidate is visited first.
        let family = scaled_family(&[10, 2, 7, 3, 9, 1, 8, 4, 6, 5]);
        for method in distance_methods() {
            assert_index_matches_scan(method, 0.4, &family);
        }
    }

    #[test]
    fn window_excludes_only_kernel_rejected_candidates() {
        // Every candidate the window drops must be one the kernel rejects:
        // verify by checking the full cross product.
        let family = scaled_family(&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        for method in distance_methods() {
            for threshold in [0.01, 0.2, 0.9] {
                let config = MethodConfig::new(method, threshold);
                let features: Vec<SegmentFeatures> = family
                    .iter()
                    .map(|s| SegmentFeatures::for_config(&config, s))
                    .collect();
                let mut index = CandidateIndex::default();
                for id in 0..family.len() as u32 {
                    index.insert(id, &config, &features);
                }
                let mut buf = Vec::new();
                for probe in &features {
                    let mut stats = MatchStats::default();
                    let mut visited = Vec::new();
                    index.find_first(
                        &config,
                        probe,
                        &features,
                        &mut stats,
                        &mut buf,
                        |id, stats| {
                            visited.push(id);
                            // Never accept, so every survivor is visited.
                            segments_match_cached(&config, probe, &features[id as usize], stats);
                            false
                        },
                    );
                    for id in 0..family.len() as u32 {
                        if !visited.contains(&id) {
                            let mut s = MatchStats::default();
                            assert!(
                                !segments_match_cached(
                                    &config,
                                    probe,
                                    &features[id as usize],
                                    &mut s
                                ),
                                "{method} at {threshold}: pruned candidate {id} actually matches"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_index_finds_nothing() {
        let config = MethodConfig::with_default_threshold(Method::Euclidean);
        let index = CandidateIndex::default();
        let mut stats = MatchStats::default();
        let mut buf = Vec::new();
        let probe = SegmentFeatures::for_config(&config, &segment((1, 2), (3, 4), 5));
        let found = index.find_first(&config, &probe, &[], &mut stats, &mut buf, |_, _| true);
        assert_eq!(found, None);
        assert_eq!(stats, MatchStats::default());
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_between_queries() {
        let family = scaled_family(&[1, 3, 9, 27, 81, 243, 729, 2187]);
        let config = MethodConfig::new(Method::Manhattan, 0.3);
        let features: Vec<SegmentFeatures> = family
            .iter()
            .map(|s| SegmentFeatures::for_config(&config, s))
            .collect();
        let mut index = CandidateIndex::default();
        for id in 0..family.len() as u32 {
            index.insert(id, &config, &features);
        }
        let mut scratch = MatchScratch::new();
        let mut buf = Vec::new();
        // Querying twice with the same probe must give the same answer and
        // the same per-query counter deltas.
        let mut first = MatchStats::default();
        let a = index.find_first(
            &config,
            &features[3],
            &features,
            &mut first,
            &mut buf,
            |id, s| segments_match_cached(&config, &features[3], &features[id as usize], s),
        );
        let mut second = MatchStats::default();
        let b = index.find_first(
            &config,
            &features[3],
            &features,
            &mut second,
            &mut buf,
            |id, s| segments_match_cached(&config, &features[3], &features[id as usize], s),
        );
        assert_eq!(a, b);
        assert_eq!(first, second);
        scratch.reset_stats();
    }
}
