//! Dynamic time warping (DTW) distance between measurement vectors.
//!
//! Hauswirth et al. align traces with dynamic time warping when deciding
//! whether two traces are similar; the paper under reproduction cites that
//! work and names "additional difference methods" as future work.  DTW is
//! attractive for segment comparison because it tolerates small shifts in
//! *when* events happen inside a segment while still penalizing genuinely
//! different timings — something none of the paper's per-index metrics do.
//!
//! The implementation is the classic O(n·m) dynamic program with an optional
//! Sakoe–Chiba band that limits how far the alignment may stray from the
//! diagonal.  Segment comparison always feeds equal-length vectors (segments
//! must have the same shape to be eligible), so the band is expressed as an
//! absolute index radius.

/// Dynamic time warping distance between two sequences using the absolute
/// difference as the local cost.
///
/// `band` is the Sakoe–Chiba radius: `None` allows unconstrained warping,
/// `Some(r)` only considers alignments with `|i - j| <= r`.  A band of 0
/// degenerates to the Manhattan distance for equal-length inputs.
///
/// Returns `f64::INFINITY` when either sequence is empty and the other is
/// not; two empty sequences have distance 0.
pub fn dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let n = a.len();
    let m = b.len();
    // Rolling two-row dynamic program keeps the memory footprint at O(m),
    // which matters when segments contain thousands of events.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let (j_lo, j_hi) = match band {
            Some(r) => (i.saturating_sub(r).max(1), (i + r).min(m)),
            None => (1, m),
        };
        for j in 1..=m {
            if j < j_lo || j > j_hi {
                curr[j] = f64::INFINITY;
                continue;
            }
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW distance normalized by the warping-path length upper bound
/// (`a.len() + b.len()`), giving a per-measurement average cost that can be
/// compared against magnitude-scaled thresholds like the Minkowski methods.
pub fn normalized_dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    let raw = dtw_distance(a, b, band);
    let len = a.len() + b.len();
    if len == 0 {
        0.0
    } else {
        raw / len as f64
    }
}

/// Decides `normalized_dtw_distance(a, b, band) <= normalized_bound` with
/// early abandoning: local costs are non-negative, so every cell of a later
/// row is at least the minimum of the current row, and once even that
/// minimum normalizes past the bound the full distance must too.  Rows are
/// computed with the exact arithmetic of [`dtw_distance`], so a run that is
/// not abandoned reaches the identical final value — the decision always
/// equals the naive comparison, the abandoned runs just stop early.
pub fn dtw_within(a: &[f64], b: &[f64], band: Option<usize>, normalized_bound: f64) -> bool {
    if a.is_empty() && b.is_empty() {
        return 0.0 <= normalized_bound;
    }
    if a.is_empty() || b.is_empty() {
        // Mirrors the naive comparison exactly, including the degenerate
        // `INFINITY <= INFINITY` case for an infinite bound.
        return f64::INFINITY <= normalized_bound;
    }
    let n = a.len();
    let m = b.len();
    let len = (n + m) as f64;
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let (j_lo, j_hi) = match band {
            Some(r) => (i.saturating_sub(r).max(1), (i + r).min(m)),
            None => (1, m),
        };
        let mut row_min = f64::INFINITY;
        for j in 1..=m {
            if j < j_lo || j > j_hi {
                curr[j] = f64::INFINITY;
                continue;
            }
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
            row_min = row_min.min(curr[j]);
        }
        // Admissible abandon: the final raw distance is at least this
        // row's minimum, and division by the positive path length is
        // monotone, so the normalized distance can only land above the
        // bound as well.
        if row_min / len > normalized_bound {
            return false;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m] / len <= normalized_bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let v = [1.0, 5.0, 3.0, 8.0];
        assert_eq!(dtw_distance(&v, &v, None), 0.0);
        assert_eq!(normalized_dtw_distance(&v, &v, None), 0.0);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(dtw_distance(&[], &[], None), 0.0);
        assert!(dtw_distance(&[1.0], &[], None).is_infinite());
        assert!(dtw_distance(&[], &[1.0], None).is_infinite());
    }

    #[test]
    fn shifted_sequences_are_cheaper_under_dtw_than_pointwise() {
        // The same pulse, shifted by one position.  Pointwise (Manhattan)
        // distance is 2*10; DTW can align the pulse and pay far less.
        let a = [0.0, 10.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 10.0, 0.0, 0.0];
        let manhattan: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y): (&f64, &f64)| (x - y).abs())
            .sum();
        let dtw = dtw_distance(&a, &b, None);
        assert!(
            dtw < manhattan,
            "dtw {dtw} should beat pointwise {manhattan}"
        );
        assert_eq!(
            dtw, 0.0,
            "a single shift of an isolated pulse aligns perfectly"
        );
    }

    #[test]
    fn band_zero_equals_manhattan_for_equal_lengths() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 2.0, 5.0, 3.0];
        let manhattan: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y): (&f64, &f64)| (x - y).abs())
            .sum();
        assert_eq!(dtw_distance(&a, &b, Some(0)), manhattan);
    }

    #[test]
    fn wider_bands_never_increase_the_distance() {
        let a = [0.0, 3.0, 7.0, 7.0, 2.0, 0.0];
        let b = [0.0, 0.0, 3.0, 7.0, 7.0, 2.0];
        let mut last = f64::INFINITY;
        for band in [0, 1, 2, 5] {
            let d = dtw_distance(&a, &b, Some(band));
            assert!(d <= last + 1e-12, "band {band}: {d} > {last}");
            last = d;
        }
        assert!(dtw_distance(&a, &b, None) <= last + 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 4.0, 2.0, 9.0, 3.0];
        let b = [2.0, 2.0, 8.0, 3.0, 1.0];
        assert_eq!(dtw_distance(&a, &b, None), dtw_distance(&b, &a, None));
        assert_eq!(dtw_distance(&a, &b, Some(2)), dtw_distance(&b, &a, Some(2)));
    }

    #[test]
    fn dtw_within_agrees_with_the_naive_comparison() {
        let sequences: Vec<Vec<f64>> = vec![
            vec![],
            vec![3.0],
            vec![0.0, 10.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 10.0, 0.0, 0.0],
            vec![1.0, 4.0, 2.0, 9.0, 3.0],
            vec![2.0, 2.0, 8.0, 3.0, 1.0, 7.0],
        ];
        for a in &sequences {
            for b in &sequences {
                for band in [None, Some(0), Some(2)] {
                    let naive = normalized_dtw_distance(a, b, band);
                    for bound in [0.0, 0.1, 0.5, 1.0, 2.5, 10.0] {
                        assert_eq!(
                            dtw_within(a, b, band, bound),
                            naive <= bound,
                            "a={a:?} b={b:?} band={band:?} bound={bound}"
                        );
                    }
                    // The exact distance is the decision boundary: within
                    // at the naive value, not within just below it.
                    if naive.is_finite() {
                        assert!(dtw_within(a, b, band, naive));
                        if naive > 0.0 {
                            assert!(!dtw_within(a, b, band, naive * 0.999_999));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unequal_lengths_are_supported() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw_distance(&a, &b, None);
        assert!(d.is_finite());
        assert!(d > 0.0);
        let norm = normalized_dtw_distance(&a, &b, None);
        assert!((norm - d / 8.0).abs() < 1e-12);
    }
}
