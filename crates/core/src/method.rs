//! The catalogue of similarity methods evaluated by the paper.

use std::fmt;

/// One of the nine similarity methods (Section 3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Per-measurement relative difference against a threshold.
    RelDiff,
    /// Per-measurement absolute difference against a threshold
    /// (interpreted in microseconds, matching the paper's 10^1..10^6 grid).
    AbsDiff,
    /// Minkowski distance of order 1 over the measurement vectors.
    Manhattan,
    /// Minkowski distance of order 2 over the measurement vectors.
    Euclidean,
    /// Minkowski distance of order ∞ (largest single difference).
    Chebyshev,
    /// Euclidean distance between average-wavelet-transformed time-stamp
    /// vectors.
    AvgWave,
    /// Euclidean distance between Haar-wavelet-transformed time-stamp
    /// vectors.
    HaarWave,
    /// Keep only the first `k` instances of each segment pattern.
    IterK,
    /// Keep one instance per segment pattern holding running-average
    /// measurements.
    IterAvg,
}

impl Method {
    /// All methods, in the order the paper's figures list them.
    pub const ALL: [Method; 9] = [
        Method::RelDiff,
        Method::AbsDiff,
        Method::Manhattan,
        Method::Euclidean,
        Method::Chebyshev,
        Method::IterK,
        Method::IterAvg,
        Method::AvgWave,
        Method::HaarWave,
    ];

    /// The paper's name for this method.
    pub fn name(self) -> &'static str {
        match self {
            Method::RelDiff => "relDiff",
            Method::AbsDiff => "absDiff",
            Method::Manhattan => "Manhattan",
            Method::Euclidean => "Euclidean",
            Method::Chebyshev => "Chebyshev",
            Method::AvgWave => "avgWave",
            Method::HaarWave => "haarWave",
            Method::IterK => "iter_k",
            Method::IterAvg => "iter_avg",
        }
    }

    /// Looks a method up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Method> {
        Method::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// True for the distance methods (everything except the two
    /// iteration-based methods).
    pub fn is_distance_method(self) -> bool {
        !matches!(self, Method::IterK | Method::IterAvg)
    }

    /// True if the method takes a threshold parameter (`iter_avg` is the
    /// only one that does not).
    pub fn has_threshold(self) -> bool {
        !matches!(self, Method::IterAvg)
    }

    /// The representative ("best") threshold the paper selects for the
    /// comparative study (Section 5.2): 0.8 for relDiff, 1000 for absDiff,
    /// 0.4 for Manhattan, 0.2 for Euclidean and Chebyshev, k = 10 for
    /// iter_k, and 0.2 for both wavelet transforms.
    pub fn default_threshold(self) -> f64 {
        match self {
            Method::RelDiff => 0.8,
            Method::AbsDiff => 1_000.0,
            Method::Manhattan => 0.4,
            Method::Euclidean | Method::Chebyshev => 0.2,
            Method::AvgWave | Method::HaarWave => 0.2,
            Method::IterK => 10.0,
            Method::IterAvg => 0.0,
        }
    }

    /// The threshold grid the paper's threshold study sweeps for this
    /// method (Section 5.1): `{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}` for the
    /// relative-difference, Minkowski and wavelet methods; powers of ten
    /// from 10^1 to 10^6 for absDiff; `{1, 10, 50, 100, 500, 1000}` for
    /// iter_k; empty for iter_avg.
    pub fn threshold_grid(self) -> Vec<f64> {
        match self {
            Method::RelDiff
            | Method::Manhattan
            | Method::Euclidean
            | Method::Chebyshev
            | Method::AvgWave
            | Method::HaarWave => vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            Method::AbsDiff => vec![1e1, 1e2, 1e3, 1e4, 1e5, 1e6],
            Method::IterK => vec![1.0, 10.0, 50.0, 100.0, 500.0, 1000.0],
            Method::IterAvg => Vec::new(),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A method plus its threshold parameter.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MethodConfig {
    /// The similarity method.
    pub method: Method,
    /// The threshold: a relative factor for the distance methods, a value in
    /// microseconds for `absDiff`, the iteration count `k` for `iter_k`;
    /// ignored for `iter_avg`.
    pub threshold: f64,
}

impl MethodConfig {
    /// Creates a configuration with an explicit threshold.
    pub fn new(method: Method, threshold: f64) -> Self {
        MethodConfig { method, threshold }
    }

    /// Creates a configuration using the paper's representative threshold
    /// for the method.
    pub fn with_default_threshold(method: Method) -> Self {
        MethodConfig::new(method, method.default_threshold())
    }

    /// All nine methods at their paper-default thresholds, in paper order.
    pub fn all_defaults() -> Vec<MethodConfig> {
        Method::ALL
            .into_iter()
            .map(MethodConfig::with_default_threshold)
            .collect()
    }

    /// The `k` parameter for `iter_k` (threshold rounded to at least 1).
    pub fn iter_k(&self) -> usize {
        (self.threshold.round().max(1.0)) as usize
    }

    /// Short label such as `relDiff(0.8)` used in reports.
    pub fn label(&self) -> String {
        if self.method.has_threshold() {
            format!("{}({})", self.method.name(), self.threshold)
        } else {
            self.method.name().to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut names: Vec<_> = Method::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Method::ALL.len());
        for m in Method::ALL {
            assert_eq!(Method::by_name(m.name()), Some(m));
            assert_eq!(Method::by_name(&m.name().to_uppercase()), Some(m));
        }
        assert_eq!(Method::by_name("unknown"), None);
    }

    #[test]
    fn default_thresholds_match_the_paper() {
        assert_eq!(Method::RelDiff.default_threshold(), 0.8);
        assert_eq!(Method::AbsDiff.default_threshold(), 1_000.0);
        assert_eq!(Method::Manhattan.default_threshold(), 0.4);
        assert_eq!(Method::Euclidean.default_threshold(), 0.2);
        assert_eq!(Method::Chebyshev.default_threshold(), 0.2);
        assert_eq!(Method::AvgWave.default_threshold(), 0.2);
        assert_eq!(Method::HaarWave.default_threshold(), 0.2);
        assert_eq!(Method::IterK.default_threshold(), 10.0);
    }

    #[test]
    fn threshold_grids_match_the_paper() {
        assert_eq!(Method::RelDiff.threshold_grid().len(), 6);
        assert_eq!(
            Method::AbsDiff.threshold_grid(),
            vec![1e1, 1e2, 1e3, 1e4, 1e5, 1e6]
        );
        assert_eq!(
            Method::IterK.threshold_grid(),
            vec![1.0, 10.0, 50.0, 100.0, 500.0, 1000.0]
        );
        assert!(Method::IterAvg.threshold_grid().is_empty());
    }

    #[test]
    fn classification_helpers() {
        assert!(Method::AvgWave.is_distance_method());
        assert!(!Method::IterK.is_distance_method());
        assert!(!Method::IterAvg.has_threshold());
        assert!(Method::AbsDiff.has_threshold());
    }

    #[test]
    fn config_helpers() {
        let cfg = MethodConfig::with_default_threshold(Method::IterK);
        assert_eq!(cfg.iter_k(), 10);
        assert_eq!(cfg.label(), "iter_k(10)");
        let avg = MethodConfig::with_default_threshold(Method::IterAvg);
        assert_eq!(avg.label(), "iter_avg");
        assert_eq!(MethodConfig::all_defaults().len(), 9);
    }

    #[test]
    fn display_uses_paper_name() {
        assert_eq!(format!("{}", Method::AvgWave), "avgWave");
    }
}
