//! Cutting a rank trace into segments (Section 3.1).
//!
//! The tracer brackets every loop iteration (and the init/final phases) with
//! segment markers; the segmenter walks the raw record stream, collects the
//! events between a `SegmentBegin` and its matching `SegmentEnd`, and rebases
//! their time stamps to the segment start.

use trace_model::{RankTrace, Segment, Time, TraceRecord};

/// Statistics about a segmentation pass, used for trace-quality checks and
/// reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentationStats {
    /// Number of complete segments produced.
    pub segments: usize,
    /// Number of events that fell inside a segment.
    pub events_in_segments: usize,
    /// Number of events encountered outside any segment (dropped).
    pub orphan_events: usize,
    /// Number of `SegmentBegin` markers that never saw a matching end
    /// (closed implicitly at the last event).
    pub unterminated_segments: usize,
}

/// Online (record-at-a-time) segmenter.
///
/// The batch helpers below and the streaming reduction path (the
/// `trace_stream` crate) both drive this state machine, so a record stream
/// is segmented identically whether it arrives from an in-memory
/// [`RankTrace`] or one line at a time from a file.  At most one segment is
/// in flight per segmenter — the bounded-memory guarantee the streaming
/// reducer relies on.
#[derive(Clone, Debug, Default)]
pub struct OnlineSegmenter {
    current: Option<(trace_model::ContextId, Time, Vec<trace_model::Event>)>,
    stats: SegmentationStats,
}

impl OnlineSegmenter {
    /// Creates a segmenter with no segment in flight.
    pub fn new() -> Self {
        OnlineSegmenter::default()
    }

    /// Feeds one record, returning a segment if this record completed one.
    pub fn push(&mut self, record: &TraceRecord) -> Option<Segment> {
        match record {
            TraceRecord::SegmentBegin { context, time } => {
                let closed = self.current.take().map(|(ctx, start, events)| {
                    // Unterminated segment: close it at the latest known time.
                    self.stats.unterminated_segments += 1;
                    let end = events.iter().map(|e| e.end).max().unwrap_or(start);
                    self.emit(ctx, start, end, events)
                });
                self.current = Some((*context, *time, Vec::new()));
                closed
            }
            TraceRecord::SegmentEnd { context, time } => {
                match self.current.take() {
                    Some((ctx, start, events)) => {
                        if ctx != *context {
                            // Mismatched end marker: close the open segment at
                            // the marker time anyway, attributing it to its
                            // own context.
                            self.stats.unterminated_segments += 1;
                        }
                        Some(self.emit(ctx, start, *time, events))
                    }
                    // End without a begin: ignore.
                    None => None,
                }
            }
            TraceRecord::Event(event) => {
                if let Some((_, _, events)) = self.current.as_mut() {
                    events.push(*event);
                } else {
                    self.stats.orphan_events += 1;
                }
                None
            }
        }
    }

    /// Closes the in-flight segment (if any) at its latest known time.  Call
    /// once at the end of the record stream.
    pub fn finish(&mut self) -> Option<Segment> {
        self.current.take().map(|(ctx, start, events)| {
            self.stats.unterminated_segments += 1;
            let end = events.iter().map(|e| e.end).max().unwrap_or(start);
            self.emit(ctx, start, end, events)
        })
    }

    /// True if a segment is currently in flight.
    pub fn has_open_segment(&self) -> bool {
        self.current.is_some()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SegmentationStats {
        self.stats
    }

    fn emit(
        &mut self,
        ctx: trace_model::ContextId,
        start: Time,
        end: Time,
        events: Vec<trace_model::Event>,
    ) -> Segment {
        self.stats.events_in_segments += events.len();
        self.stats.segments += 1;
        Segment::from_absolute(ctx, start, end, events)
    }
}

/// Cuts a rank trace into rebased segments; also returns statistics about
/// malformed marker structure (orphan events, unterminated segments).
pub fn segments_of_rank_with_stats(trace: &RankTrace) -> (Vec<Segment>, SegmentationStats) {
    let mut segmenter = OnlineSegmenter::new();
    let mut segments = Vec::new();
    for record in &trace.records {
        if let Some(segment) = segmenter.push(record) {
            segments.push(segment);
        }
    }
    if let Some(segment) = segmenter.finish() {
        segments.push(segment);
    }
    (segments, segmenter.stats())
}

/// Cuts a rank trace into rebased segments.
pub fn segments_of_rank(trace: &RankTrace) -> Vec<Segment> {
    segments_of_rank_with_stats(trace).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{ContextId, Event, Rank, RegionId};

    fn event(start: u64, end: u64) -> Event {
        Event::compute(RegionId(0), Time::from_nanos(start), Time::from_nanos(end))
    }

    #[test]
    fn well_formed_trace_segments_cleanly() {
        let mut rt = RankTrace::new(Rank(0));
        let ctx = ContextId(3);
        for base in [100u64, 300, 500] {
            rt.begin_segment(ctx, Time::from_nanos(base));
            rt.push_event(event(base + 10, base + 50));
            rt.push_event(event(base + 60, base + 120));
            rt.end_segment(ctx, Time::from_nanos(base + 150));
        }
        let (segments, stats) = segments_of_rank_with_stats(&rt);
        assert_eq!(segments.len(), 3);
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.events_in_segments, 6);
        assert_eq!(stats.orphan_events, 0);
        assert_eq!(stats.unterminated_segments, 0);
        for (i, seg) in segments.iter().enumerate() {
            assert_eq!(seg.start.as_nanos(), 100 + 200 * i as u64);
            assert_eq!(seg.end.as_nanos(), 150);
            assert_eq!(seg.events.len(), 2);
            assert_eq!(seg.events[0].start.as_nanos(), 10);
            assert_eq!(seg.events[1].end.as_nanos(), 120);
            assert!(seg.is_well_formed());
        }
    }

    #[test]
    fn orphan_events_are_counted_and_dropped() {
        let mut rt = RankTrace::new(Rank(0));
        rt.push_event(event(0, 5));
        rt.begin_segment(ContextId(0), Time::from_nanos(10));
        rt.push_event(event(11, 12));
        rt.end_segment(ContextId(0), Time::from_nanos(13));
        rt.push_event(event(20, 25));
        let (segments, stats) = segments_of_rank_with_stats(&rt);
        assert_eq!(segments.len(), 1);
        assert_eq!(stats.orphan_events, 2);
        assert_eq!(stats.events_in_segments, 1);
    }

    #[test]
    fn unterminated_segment_is_closed_at_last_event() {
        let mut rt = RankTrace::new(Rank(0));
        rt.begin_segment(ContextId(0), Time::from_nanos(10));
        rt.push_event(event(12, 40));
        // A new segment begins without the previous one ending.
        rt.begin_segment(ContextId(0), Time::from_nanos(50));
        rt.push_event(event(51, 60));
        let (segments, stats) = segments_of_rank_with_stats(&rt);
        assert_eq!(segments.len(), 2);
        assert_eq!(stats.unterminated_segments, 2);
        assert_eq!(
            segments[0].end.as_nanos(),
            30,
            "closed at last event end (40) - start (10)"
        );
        assert_eq!(segments[1].end.as_nanos(), 10);
    }

    #[test]
    fn empty_trace_produces_no_segments() {
        let rt = RankTrace::new(Rank(0));
        let (segments, stats) = segments_of_rank_with_stats(&rt);
        assert!(segments.is_empty());
        assert_eq!(stats, SegmentationStats::default());
    }

    #[test]
    fn mismatched_end_marker_closes_open_segment() {
        let mut rt = RankTrace::new(Rank(0));
        rt.begin_segment(ContextId(0), Time::from_nanos(0));
        rt.push_event(event(1, 5));
        rt.end_segment(ContextId(9), Time::from_nanos(6));
        let (segments, stats) = segments_of_rank_with_stats(&rt);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].context, ContextId(0));
        assert_eq!(stats.unterminated_segments, 1);
    }

    #[test]
    fn segments_of_simulated_trace_cover_all_events() {
        use trace_sim::{SizePreset, Workload, WorkloadKind};
        let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
        for rank in &app.ranks {
            let (segments, stats) = segments_of_rank_with_stats(rank);
            assert_eq!(stats.orphan_events, 0);
            assert_eq!(stats.unterminated_segments, 0);
            assert_eq!(stats.events_in_segments, rank.event_count());
            assert_eq!(segments.len(), rank.segment_instance_count());
            assert!(segments.iter().all(Segment::is_well_formed));
        }
    }
}
