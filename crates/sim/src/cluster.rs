//! Virtual-time cluster: per-rank clocks with blocking MPI-like semantics.
//!
//! The cluster advances one virtual clock per rank and records trace events
//! as the workload generators drive it.  Communication operations resolve
//! the blocking semantics the paper's performance problems rely on:
//!
//! * standard send + blocking receive → a late sender makes the receiver
//!   wait (the *Late Sender* pattern);
//! * synchronous send + receive → a late receiver makes the sender wait
//!   (*Late Receiver*);
//! * rooted N-to-1 collectives → late senders make the root wait
//!   (*Early Gather* / *Early Reduce*);
//! * rooted 1-to-N collectives → a late root makes every receiver wait
//!   (*Late Broadcast* / *Late Scatter*);
//! * N-to-N collectives → the last arrival makes everyone wait
//!   (*Wait at Barrier* / *Wait at N×N*).
//!
//! All timings are deterministic given the seed; optional jitter and the
//! [`crate::noise::NoiseModel`] provide the run-to-run variation the
//! similarity metrics are evaluated against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trace_model::{
    AppTrace, CollectiveOp, CommInfo, ContextId, Duration, Event, Rank, RegionId, Time,
};

use crate::noise::NoiseModel;

/// Point-to-point send semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum P2pMode {
    /// Buffered/standard send: the sender does not block; a blocking receive
    /// waits for the matching send (late-sender behaviour).
    StandardSend,
    /// Synchronous send (`MPI_Ssend`): the sender blocks until the receiver
    /// has arrived (late-receiver behaviour).
    SynchronousSend,
}

/// Cost model for communication operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One-way point-to-point latency.
    pub latency: Duration,
    /// Transfer cost per byte, in nanoseconds.
    pub per_byte_ns: f64,
    /// Base cost of a collective operation.
    pub collective_base: Duration,
    /// Additional collective cost per participating rank (log factor applied).
    pub collective_per_rank: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency: Duration::from_micros(5),
            per_byte_ns: 0.5,
            collective_base: Duration::from_micros(10),
            collective_per_rank: Duration::from_micros(2),
        }
    }
}

impl CostModel {
    /// Transfer time for a message of `bytes` bytes.
    pub fn transfer(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_f64(self.per_byte_ns * bytes as f64)
    }

    /// Intrinsic cost of a collective over `n` ranks moving `bytes` per rank.
    pub fn collective(&self, n: u32, bytes: u64) -> Duration {
        let log_n = (u32::BITS - n.max(1).leading_zeros()) as u64;
        self.collective_base
            + Duration::from_nanos(self.collective_per_rank.as_nanos() * log_n)
            + Duration::from_f64(self.per_byte_ns * bytes as f64)
    }
}

/// The virtual-time cluster on which workloads are "run".
#[derive(Debug)]
pub struct Cluster {
    app: AppTrace,
    clocks: Vec<Time>,
    noise: NoiseModel,
    costs: CostModel,
    rng: StdRng,
    /// In-flight messages posted by [`Cluster::post_send`], keyed by
    /// `(sender, receiver, tag)`; the value is the time the payload becomes
    /// available at the receiver.
    in_flight: std::collections::HashMap<(usize, usize, u32), std::collections::VecDeque<Time>>,
    /// Range of the per-segment entry overhead (loop/instrumentation
    /// overhead) inserted between a segment-begin marker and the first
    /// event.  Real traces always contain such small, highly variable gaps;
    /// they are what makes the relative-difference metric strict (paper
    /// Section 3.2.1).  `None` disables the overhead.
    entry_overhead: Option<(Duration, Duration)>,
}

impl Cluster {
    /// Creates a cluster for `n_ranks` ranks with a deterministic seed.
    pub fn new(name: impl Into<String>, n_ranks: usize, seed: u64) -> Self {
        Cluster {
            app: AppTrace::new(name, n_ranks),
            clocks: vec![Time::ZERO; n_ranks],
            noise: NoiseModel::silent(),
            costs: CostModel::default(),
            rng: StdRng::seed_from_u64(seed),
            in_flight: std::collections::HashMap::new(),
            entry_overhead: Some((Duration::from_nanos(100), Duration::from_micros(10))),
        }
    }

    /// Overrides (or disables, with `None`) the per-segment entry overhead.
    pub fn with_entry_overhead(mut self, range: Option<(Duration, Duration)>) -> Self {
        self.entry_overhead = range;
        self
    }

    /// Installs a noise model (system interference).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Overrides the communication cost model.
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.clocks.len()
    }

    /// Current virtual time of `rank`.
    pub fn now(&self, rank: usize) -> Time {
        self.clocks[rank]
    }

    /// The communication cost model in use.
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// Interns a region name.
    pub fn region(&mut self, name: &str) -> RegionId {
        self.app.regions.intern(name)
    }

    /// Interns a segment context name.
    pub fn context(&mut self, name: &str) -> ContextId {
        self.app.contexts.intern(name)
    }

    /// A nominal duration with multiplicative uniform jitter of ±`frac`.
    pub fn jittered(&mut self, nominal: Duration, frac: f64) -> Duration {
        if frac <= 0.0 {
            return nominal;
        }
        let factor = 1.0 + self.rng.gen_range(-frac..frac);
        nominal.scale(factor)
    }

    /// Draws a uniform value in `[0, 1)`; used by generators for rare-event
    /// decisions so that all randomness flows from the cluster seed.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Emits a segment-begin marker for `rank` at its current time, then
    /// advances the rank by a small random entry overhead (loop and
    /// instrumentation overhead between the marker and the first event).
    pub fn begin_segment(&mut self, rank: usize, context: ContextId) {
        let now = self.clocks[rank];
        self.app.ranks[rank].begin_segment(context, now);
        if let Some((lo, hi)) = self.entry_overhead {
            // Log-uniform: small overheads are as common as large ones, which
            // is what timer-resolution-scale measurements look like in real
            // traces and what makes relative-difference comparisons strict.
            let (lo_f, hi_f) = (lo.as_f64().max(1.0), hi.as_f64().max(2.0));
            let ln = self.rng.gen_range(lo_f.ln()..hi_f.ln());
            self.clocks[rank] += Duration::from_f64(ln.exp());
        }
    }

    /// Emits a segment-end marker for `rank` at its current time.
    pub fn end_segment(&mut self, rank: usize, context: ContextId) {
        let now = self.clocks[rank];
        self.app.ranks[rank].end_segment(context, now);
    }

    /// Emits a segment-begin marker on every rank.
    pub fn begin_segment_all(&mut self, context: ContextId) {
        for rank in 0..self.rank_count() {
            self.begin_segment(rank, context);
        }
    }

    /// Emits a segment-end marker on every rank.
    pub fn end_segment_all(&mut self, context: ContextId) {
        for rank in 0..self.rank_count() {
            self.end_segment(rank, context);
        }
    }

    /// Advances `rank`'s clock without recording an event (idle time,
    /// e.g. skew introduced before the first segment).
    pub fn idle(&mut self, rank: usize, duration: Duration) {
        self.clocks[rank] += duration;
    }

    /// Runs a compute phase of nominal length `duration` on `rank`,
    /// stretched by the noise model, and records it as an event in
    /// `region`.  Returns the stretched duration.
    pub fn compute(&mut self, rank: usize, region: &str, duration: Duration) -> Duration {
        let region = self.region(region);
        let start = self.clocks[rank];
        let stretched = self.noise.stretch(rank as u32, start, duration);
        let end = start + stretched;
        self.app.ranks[rank].push_event(Event::compute(region, start, end));
        self.clocks[rank] = end;
        stretched
    }

    /// [`Cluster::compute`] with multiplicative jitter of ±`frac` applied to
    /// the nominal duration before noise stretching.
    pub fn compute_jittered(
        &mut self,
        rank: usize,
        region: &str,
        duration: Duration,
        frac: f64,
    ) -> Duration {
        let jittered = self.jittered(duration, frac);
        self.compute(rank, region, jittered)
    }

    /// Records a locally-completed event (no cross-rank blocking), such as
    /// `MPI_Init` setup work.
    pub fn local_event(&mut self, rank: usize, region: &str, duration: Duration) {
        let region = self.region(region);
        let start = self.clocks[rank];
        let end = start + duration;
        self.app.ranks[rank].push_event(Event::compute(region, start, end));
        self.clocks[rank] = end;
    }

    /// Executes a collective operation over all ranks with `bytes` of
    /// payload per rank, applying the blocking semantics of the operation's
    /// communication pattern.  Records one event per rank.
    pub fn collective(&mut self, op: CollectiveOp, root: usize, bytes: u64) {
        let n = self.rank_count() as u32;
        let cost = self.costs.collective(n, bytes);
        let region = self.region(op.mpi_name());
        let arrivals = self.clocks.clone();
        let max_arrival = arrivals.iter().copied().max().unwrap_or(Time::ZERO);
        let root_arrival = arrivals[root];
        let comm = CommInfo::Collective {
            op,
            root: Rank(root as u32),
            comm_size: n,
            bytes,
        };

        for (rank, &arrival) in arrivals.iter().enumerate() {
            let (end, wait) = if op.is_n_to_n() {
                let end = max_arrival + cost;
                (end, max_arrival - arrival)
            } else if op.is_one_to_n() {
                if rank == root {
                    (arrival + cost, Duration::ZERO)
                } else {
                    let end = arrival.max(root_arrival) + cost;
                    (end, root_arrival - arrival)
                }
            } else {
                // N-to-1: only the root waits for the slowest sender.
                if rank == root {
                    (max_arrival + cost, max_arrival - arrival)
                } else {
                    (arrival + cost, Duration::ZERO)
                }
            };
            self.app.ranks[rank]
                .push_event(Event::with_comm(region, arrival, end, comm).with_wait(wait));
            self.clocks[rank] = end;
        }
    }

    /// Executes a point-to-point message from `sender` to `receiver`.
    ///
    /// Both the send-side and receive-side events are recorded; the blocking
    /// side depends on `mode` (see [`P2pMode`]).
    pub fn point_to_point(
        &mut self,
        sender: usize,
        receiver: usize,
        tag: u32,
        bytes: u64,
        mode: P2pMode,
    ) {
        assert_ne!(sender, receiver, "self-messages are not modelled");
        let transfer = self.costs.transfer(bytes);
        let send_region = match mode {
            P2pMode::StandardSend => self.region("MPI_Send"),
            P2pMode::SynchronousSend => self.region("MPI_Ssend"),
        };
        let recv_region = self.region("MPI_Recv");
        let arrival_s = self.clocks[sender];
        let arrival_r = self.clocks[receiver];

        let (send_end, send_wait) = match mode {
            P2pMode::StandardSend => (arrival_s + transfer, Duration::ZERO),
            P2pMode::SynchronousSend => {
                let end = arrival_s.max(arrival_r) + transfer;
                (end, arrival_r - arrival_s)
            }
        };
        // The receive completes once both sides have arrived and the data
        // has moved; a late sender shows up as wait time on the receiver.
        let recv_end = arrival_r.max(arrival_s) + transfer;
        let recv_wait = arrival_s - arrival_r;

        self.app.ranks[sender].push_event(
            Event::with_comm(
                send_region,
                arrival_s,
                send_end,
                CommInfo::Send {
                    peer: Rank(receiver as u32),
                    tag,
                    bytes,
                },
            )
            .with_wait(send_wait),
        );
        self.app.ranks[receiver].push_event(
            Event::with_comm(
                recv_region,
                arrival_r,
                recv_end,
                CommInfo::Recv {
                    peer: Rank(sender as u32),
                    tag,
                    bytes,
                },
            )
            .with_wait(recv_wait),
        );
        self.clocks[sender] = send_end;
        self.clocks[receiver] = recv_end;
    }

    /// Posts a (buffered, non-blocking-completion) send from `sender` to
    /// `receiver`.  The send event is recorded immediately on the sender;
    /// the payload becomes available to a matching [`Cluster::wait_recv`]
    /// after the transfer time.
    ///
    /// Together with `wait_recv` this models pipelined producer/consumer
    /// communication such as the Sweep3D wavefront; the caller must post the
    /// send before the matching receive is waited on (process ranks in
    /// dependency order).
    pub fn post_send(&mut self, sender: usize, receiver: usize, tag: u32, bytes: u64) {
        assert_ne!(sender, receiver, "self-messages are not modelled");
        let transfer = self.costs.transfer(bytes);
        let region = self.region("MPI_Send");
        let start = self.clocks[sender];
        // The sender only pays the local injection overhead.
        let end = start + self.costs.latency;
        self.app.ranks[sender].push_event(Event::with_comm(
            region,
            start,
            end,
            CommInfo::Send {
                peer: Rank(receiver as u32),
                tag,
                bytes,
            },
        ));
        self.clocks[sender] = end;
        self.in_flight
            .entry((sender, receiver, tag))
            .or_default()
            .push_back(start + transfer);
    }

    /// Blocks `receiver` on a receive matching an earlier
    /// [`Cluster::post_send`] from `sender` with `tag`.
    ///
    /// # Panics
    /// Panics if no matching send was posted — that is a bug in the workload
    /// generator, equivalent to an MPI deadlock.
    pub fn wait_recv(&mut self, receiver: usize, sender: usize, tag: u32, bytes: u64) {
        let available = self
            .in_flight
            .get_mut(&(sender, receiver, tag))
            .and_then(|q| q.pop_front())
            .expect("wait_recv without a matching post_send (simulated deadlock)");
        let region = self.region("MPI_Recv");
        let start = self.clocks[receiver];
        let end = start.max(available) + self.costs.latency;
        let wait = available - start;
        self.app.ranks[receiver].push_event(
            Event::with_comm(
                region,
                start,
                end,
                CommInfo::Recv {
                    peer: Rank(sender as u32),
                    tag,
                    bytes,
                },
            )
            .with_wait(wait),
        );
        self.clocks[receiver] = end;
    }

    /// Executes a pairwise `MPI_Sendrecv` exchange between ranks `a` and
    /// `b`: both block until both have arrived.
    pub fn sendrecv(&mut self, a: usize, b: usize, tag: u32, bytes: u64) {
        assert_ne!(a, b, "self-exchanges are not modelled");
        let transfer = self.costs.transfer(bytes);
        let region = self.region("MPI_Sendrecv");
        let arrival_a = self.clocks[a];
        let arrival_b = self.clocks[b];
        let end = arrival_a.max(arrival_b) + transfer;
        self.app.ranks[a].push_event(
            Event::with_comm(
                region,
                arrival_a,
                end,
                CommInfo::SendRecv {
                    to: Rank(b as u32),
                    from: Rank(b as u32),
                    tag,
                    bytes,
                },
            )
            .with_wait(arrival_b - arrival_a),
        );
        self.app.ranks[b].push_event(
            Event::with_comm(
                region,
                arrival_b,
                end,
                CommInfo::SendRecv {
                    to: Rank(a as u32),
                    from: Rank(a as u32),
                    tag,
                    bytes,
                },
            )
            .with_wait(arrival_a - arrival_b),
        );
        self.clocks[a] = end;
        self.clocks[b] = end;
    }

    /// Finishes the run and returns the collected application trace.
    ///
    /// # Panics
    /// Panics (in debug builds) if any rank trace is not well formed; the
    /// generators in this crate always produce well-formed traces.
    pub fn finish(self) -> AppTrace {
        debug_assert!(
            self.app.is_well_formed(),
            "simulator produced a malformed trace"
        );
        self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new("test", n, 42)
    }

    #[test]
    fn compute_advances_clock_and_records_event() {
        let mut c = cluster(2);
        let d = c.compute(0, "do_work", Duration::from_micros(100));
        assert_eq!(d, Duration::from_micros(100));
        assert_eq!(c.now(0), Time::from_micros(100));
        assert_eq!(c.now(1), Time::ZERO);
        let app = c.finish();
        assert_eq!(app.ranks[0].event_count(), 1);
        assert_eq!(app.ranks[1].event_count(), 0);
    }

    #[test]
    fn n_to_n_collective_blocks_everyone_for_the_latest() {
        let mut c = cluster(4);
        for r in 0..4 {
            c.compute(r, "do_work", Duration::from_micros(100 * (r as u64 + 1)));
        }
        c.collective(CollectiveOp::Barrier, 0, 0);
        // Everyone finishes at the same time, after the slowest (rank 3).
        let finish: Vec<Time> = (0..4).map(|r| c.now(r)).collect();
        assert!(finish.iter().all(|&t| t == finish[0]));
        assert!(finish[0] >= Time::from_micros(400));
        let app = c.finish();
        let barrier_events: Vec<_> = app
            .ranks
            .iter()
            .map(|rt| *rt.events().last().unwrap())
            .collect();
        // Rank 0 arrived first and therefore waited the longest.
        assert!(barrier_events[0].wait > barrier_events[3].wait);
        assert_eq!(barrier_events[3].wait, Duration::ZERO);
    }

    #[test]
    fn n_to_one_collective_only_root_waits() {
        let mut c = cluster(3);
        c.compute(1, "do_work", Duration::from_micros(500));
        c.compute(2, "do_work", Duration::from_micros(200));
        c.collective(CollectiveOp::Gather, 0, 64);
        let app = c.finish();
        let root_event = *app.ranks[0].events().last().unwrap();
        let sender_event = *app.ranks[1].events().last().unwrap();
        assert_eq!(root_event.wait, Duration::from_micros(500));
        assert_eq!(sender_event.wait, Duration::ZERO);
        assert!(root_event.end > sender_event.end - root_event.wait);
    }

    #[test]
    fn one_to_n_collective_receivers_wait_for_root() {
        let mut c = cluster(3);
        c.compute(0, "do_work", Duration::from_micros(800));
        c.collective(CollectiveOp::Bcast, 0, 64);
        let app = c.finish();
        let root_event = *app.ranks[0].events().last().unwrap();
        let recv_event = *app.ranks[1].events().last().unwrap();
        assert_eq!(root_event.wait, Duration::ZERO);
        assert_eq!(recv_event.wait, Duration::from_micros(800));
        assert!(recv_event.end >= root_event.start);
    }

    #[test]
    fn late_sender_blocks_receiver() {
        let mut c = cluster(2);
        c.compute(0, "do_work", Duration::from_micros(1000)); // sender is late
        c.point_to_point(0, 1, 7, 1024, P2pMode::StandardSend);
        let app = c.finish();
        let send = *app.ranks[0].events().last().unwrap();
        let recv = *app.ranks[1].events().last().unwrap();
        assert_eq!(send.wait, Duration::ZERO);
        assert_eq!(recv.wait, Duration::from_micros(1000));
        assert_eq!(recv.start, Time::ZERO);
        assert!(recv.end > Time::from_micros(1000));
    }

    #[test]
    fn late_receiver_blocks_synchronous_sender() {
        let mut c = cluster(2);
        c.compute(1, "do_work", Duration::from_micros(1000)); // receiver is late
        c.point_to_point(0, 1, 7, 1024, P2pMode::SynchronousSend);
        let app = c.finish();
        let send = *app.ranks[0].events().last().unwrap();
        let recv = *app.ranks[1].events().last().unwrap();
        assert_eq!(send.wait, Duration::from_micros(1000));
        assert_eq!(recv.wait, Duration::ZERO);
        assert!(send.end > Time::from_micros(1000));
    }

    #[test]
    fn sendrecv_synchronizes_both_ranks() {
        let mut c = cluster(2);
        c.compute(0, "do_work", Duration::from_micros(300));
        c.sendrecv(0, 1, 3, 256);
        assert_eq!(c.now(0), c.now(1));
        let app = c.finish();
        let a = *app.ranks[0].events().last().unwrap();
        let b = *app.ranks[1].events().last().unwrap();
        assert_eq!(a.wait, Duration::ZERO);
        assert_eq!(b.wait, Duration::from_micros(300));
    }

    #[test]
    fn segments_wrap_events_and_trace_is_well_formed() {
        let mut c = cluster(2);
        let ctx = c.context("main.1");
        for _ in 0..3 {
            c.begin_segment_all(ctx);
            for r in 0..2 {
                c.compute(r, "do_work", Duration::from_micros(50));
            }
            c.collective(CollectiveOp::Allreduce, 0, 8);
            c.end_segment_all(ctx);
        }
        let app = c.finish();
        assert!(app.is_well_formed());
        for rt in &app.ranks {
            assert_eq!(rt.segment_instance_count(), 3);
            assert_eq!(rt.event_count(), 6);
        }
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let mut a = cluster(1);
        let mut b = cluster(1);
        let nominal = Duration::from_micros(1000);
        for _ in 0..100 {
            let ja = a.jittered(nominal, 0.05);
            let jb = b.jittered(nominal, 0.05);
            assert_eq!(ja, jb, "same seed must give the same jitter");
            assert!(ja >= nominal.scale(0.95) && ja <= nominal.scale(1.05));
        }
    }

    #[test]
    fn cost_model_scales_with_size_and_ranks() {
        let costs = CostModel::default();
        assert!(costs.transfer(1_000_000) > costs.transfer(100));
        assert!(costs.collective(32, 64) > costs.collective(8, 64));
    }

    #[test]
    #[should_panic(expected = "self-messages")]
    fn self_message_panics() {
        let mut c = cluster(2);
        c.point_to_point(1, 1, 0, 8, P2pMode::StandardSend);
    }

    #[test]
    fn post_send_wait_recv_models_pipeline_fill() {
        let mut c = cluster(3);
        // Rank 0 produces after 1ms; ranks 1 and 2 are idle consumers.
        c.compute(0, "sweep_", Duration::from_millis(1));
        c.post_send(0, 1, 0, 4096);
        c.wait_recv(1, 0, 0, 4096);
        c.compute(1, "sweep_", Duration::from_millis(1));
        c.post_send(1, 2, 0, 4096);
        c.wait_recv(2, 1, 0, 4096);
        let app = c.finish();
        assert!(app.is_well_formed());
        let recv1 = app.ranks[1]
            .events()
            .find(|e| matches!(e.comm, CommInfo::Recv { .. }))
            .unwrap();
        let recv2 = app.ranks[2]
            .events()
            .find(|e| matches!(e.comm, CommInfo::Recv { .. }))
            .unwrap();
        // Rank 1 waits ~1ms for rank 0; rank 2 waits ~2ms for the pipeline.
        assert!(recv1.wait >= Duration::from_millis(1));
        assert!(recv2.wait >= Duration::from_millis(2));
    }

    #[test]
    fn posted_sends_match_in_fifo_order() {
        let mut c = cluster(2);
        c.compute(0, "do_work", Duration::from_micros(10));
        c.post_send(0, 1, 5, 100);
        c.compute(0, "do_work", Duration::from_micros(10));
        c.post_send(0, 1, 5, 100);
        c.wait_recv(1, 0, 5, 100);
        let first_recv_end = c.now(1);
        c.wait_recv(1, 0, 5, 100);
        assert!(c.now(1) > first_recv_end);
        assert!(c.finish().is_well_formed());
    }

    #[test]
    #[should_panic(expected = "matching post_send")]
    fn unmatched_receive_panics() {
        let mut c = cluster(2);
        c.wait_recv(1, 0, 0, 8);
    }
}
