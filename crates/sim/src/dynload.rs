//! Dynamic load-balancing benchmark (`dyn_load_balance`).
//!
//! The paper's third benchmark family simulates an application whose load
//! drifts over time and is periodically corrected by a load balancer
//! (Section 4.1, "Dynamic Load Balancing"): iterations start at about 1 ms,
//! one half of the ranks does progressively *more* work each iteration while
//! the other half does progressively *less*, until the load balancer resets
//! everybody to equal work.  Each iteration ends in an `MPI_Alltoall`, so
//! the exhibited problem is *imbalance at MPI all-to-all* ("Wait at N×N").

use trace_model::{AppTrace, CollectiveOp, Duration};

use crate::ats::{finalize_phase, init_phase};
use crate::cluster::Cluster;

/// Parameters for the dynamic load-balancing benchmark.
#[derive(Clone, Copy, Debug)]
pub struct DynLoadParams {
    /// Number of ranks (the paper uses 8).
    pub ranks: usize,
    /// Total number of iterations.
    pub iterations: usize,
    /// Balanced per-iteration work (about 1 ms in the paper).
    pub base_work: Duration,
    /// Additional work the growing half accumulates per iteration (and the
    /// shrinking half sheds per iteration).
    pub drift_per_iteration: Duration,
    /// The load balancer triggers when the accumulated drift reaches this
    /// many iterations.
    pub rebalance_every: usize,
    /// Time the load balancer itself takes when it runs.
    pub balance_cost: Duration,
    /// Multiplicative jitter on compute phases.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynLoadParams {
    fn default() -> Self {
        DynLoadParams {
            ranks: 8,
            iterations: 100,
            base_work: Duration::from_millis(1),
            drift_per_iteration: Duration::from_micros(80),
            rebalance_every: 10,
            balance_cost: Duration::from_micros(400),
            jitter: 0.02,
            seed: 0xd1b5,
        }
    }
}

impl DynLoadParams {
    /// Paper-scale parameters (8 ranks, 100 iterations, rebalance every 10).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced parameters for fast unit tests.
    pub fn small() -> Self {
        DynLoadParams {
            ranks: 4,
            iterations: 24,
            rebalance_every: 6,
            ..Self::default()
        }
    }
}

/// Generates the `dyn_load_balance` trace.
pub fn dyn_load_balance(params: &DynLoadParams) -> AppTrace {
    let mut c = Cluster::new("dyn_load_balance", params.ranks, params.seed);
    init_phase(&mut c, params.ranks);
    let ctx = c.context("main.1");
    let half = params.ranks / 2;
    let mut drift_steps: u64 = 0;
    for _ in 0..params.iterations {
        c.begin_segment_all(ctx);
        let drift = Duration::from_nanos(params.drift_per_iteration.as_nanos() * drift_steps);
        for rank in 0..params.ranks {
            // Upper half grows, lower half shrinks (never below 20% of base).
            let work = if rank >= half {
                params.base_work + drift
            } else {
                params
                    .base_work
                    .saturating_sub(drift)
                    .max(params.base_work.scale(0.2))
            };
            c.compute_jittered(rank, "do_work", work, params.jitter);
        }
        c.collective(CollectiveOp::Alltoall, 0, 4096);
        drift_steps += 1;
        if drift_steps as usize >= params.rebalance_every {
            // The load balancer runs on every rank and equalizes the load.
            for rank in 0..params.ranks {
                c.compute_jittered(rank, "load_balancer", params.balance_cost, params.jitter);
            }
            drift_steps = 0;
        }
        c.end_segment_all(ctx);
    }
    finalize_phase(&mut c, params.ranks);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::Duration;

    #[test]
    fn trace_is_well_formed_with_expected_structure() {
        let p = DynLoadParams::small();
        let app = dyn_load_balance(&p);
        assert!(app.is_well_formed());
        assert_eq!(app.name, "dyn_load_balance");
        assert_eq!(app.rank_count(), p.ranks);
        for rt in &app.ranks {
            assert_eq!(rt.segment_instance_count(), p.iterations + 2);
        }
        assert!(app.regions.lookup("load_balancer").is_some());
    }

    #[test]
    fn lower_ranks_wait_in_alltoall_upper_ranks_do_more_work() {
        let p = DynLoadParams::paper();
        let app = dyn_load_balance(&p);
        let alltoall = app.regions.lookup("MPI_Alltoall").unwrap();
        let work = app.regions.lookup("do_work").unwrap();
        let low_wait: Duration = app.ranks[0]
            .events()
            .filter(|e| e.region == alltoall)
            .map(|e| e.wait)
            .sum();
        let high_wait: Duration = app.ranks[p.ranks - 1]
            .events()
            .filter(|e| e.region == alltoall)
            .map(|e| e.wait)
            .sum();
        assert!(
            low_wait > high_wait.scale(2.0),
            "lower ranks must wait much longer at the all-to-all ({low_wait} vs {high_wait})"
        );
        let low_work = app.ranks[0].time_in_region(work);
        let high_work = app.ranks[p.ranks - 1].time_in_region(work);
        assert!(high_work > low_work, "upper ranks must do more work");
    }

    #[test]
    fn load_balancer_resets_the_imbalance() {
        let p = DynLoadParams::paper();
        let app = dyn_load_balance(&p);
        let alltoall = app.regions.lookup("MPI_Alltoall").unwrap();
        // Per-iteration wait of rank 0 should follow a sawtooth: right after
        // a rebalance the wait is much smaller than just before it.
        let waits: Vec<f64> = app.ranks[0]
            .events()
            .filter(|e| e.region == alltoall)
            .map(|e| e.wait.as_f64())
            .collect();
        assert_eq!(waits.len(), p.iterations);
        let period = p.rebalance_every;
        // Compare the iteration just before each rebalance with the first
        // iteration after it.
        let mut before = 0.0;
        let mut after = 0.0;
        let mut cycles = 0.0;
        let mut k = period - 1;
        while k + 1 < waits.len() {
            before += waits[k];
            after += waits[k + 1];
            cycles += 1.0;
            k += period;
        }
        assert!(cycles >= 2.0);
        assert!(
            before / cycles > 2.0 * (after / cycles + 1.0),
            "wait just before rebalance ({}) should exceed wait right after ({})",
            before / cycles,
            after / cycles
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DynLoadParams::small();
        assert_eq!(dyn_load_balance(&p), dyn_load_balance(&p));
    }
}
