//! Deterministic spec-driven trace generation for property tests.
//!
//! The streaming and container property suites (`crates/stream/tests`,
//! `crates/container/tests`) all need the same thing: a multi-rank trace
//! built from a compact generated description — which context each segment
//! runs in, which event-shape template it instantiates, and a timing
//! jitter — so same-shape segments are eligible to match and the jitter
//! decides whether a similarity metric accepts them.  Keeping the one
//! generator here guarantees every suite exercises the same trace
//! population.

use trace_model::{AppTrace, CommInfo, Event, Rank, Time};

/// One generated segment: `(context, event-shape template, timing jitter)`.
pub type SegmentSpec = (u8, u8, u16);

/// Builds a deterministic multi-rank trace from per-rank segment specs.
///
/// Three event shapes are instantiated (a compute burst, a compute+send
/// pair, a receive), over three regions and two contexts; the same shape
/// always produces the same regions and comm parameters.
pub fn trace_from_specs(name: &str, rank_specs: &[Vec<SegmentSpec>]) -> AppTrace {
    let mut app = AppTrace::new(name, rank_specs.len());
    let regions: Vec<_> = (0..3)
        .map(|i| app.regions.intern(&format!("region_{i}")))
        .collect();
    let contexts: Vec<_> = (0..2)
        .map(|i| app.contexts.intern(&format!("loop.{i}")))
        .collect();

    for (rank_index, specs) in rank_specs.iter().enumerate() {
        let rank = &mut app.ranks[rank_index];
        let mut now = 0u64;
        for &(ctx, shape, jitter) in specs {
            let context = contexts[(ctx as usize) % contexts.len()];
            let jitter = u64::from(jitter);
            rank.begin_segment(context, Time::from_nanos(now));
            let mut cursor = now + 5;
            match shape % 3 {
                0 => {
                    rank.push_event(Event::compute(
                        regions[0],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 100 + jitter),
                    ));
                    cursor += 100 + jitter;
                }
                1 => {
                    rank.push_event(Event::compute(
                        regions[1],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 50),
                    ));
                    cursor += 50;
                    rank.push_event(Event::with_comm(
                        regions[2],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 200 + 2 * jitter),
                        CommInfo::Send {
                            peer: Rank(((rank_index + 1) % rank_specs.len().max(1)) as u32),
                            tag: 7,
                            bytes: 1024,
                        },
                    ));
                    cursor += 200 + 2 * jitter;
                }
                _ => {
                    rank.push_event(Event::with_comm(
                        regions[2],
                        Time::from_nanos(cursor),
                        Time::from_nanos(cursor + 300 + jitter),
                        CommInfo::Recv {
                            peer: Rank(0),
                            tag: 7,
                            bytes: 1024,
                        },
                    ));
                    cursor += 300 + jitter;
                }
            }
            rank.end_segment(context, Time::from_nanos(cursor + 5));
            now = cursor + 10;
        }
    }
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_traces_are_well_formed_and_deterministic() {
        let specs = vec![vec![(0, 0, 10), (1, 1, 500), (0, 2, 0)], vec![(1, 0, 3)]];
        let a = trace_from_specs("spec", &specs);
        let b = trace_from_specs("spec", &specs);
        assert_eq!(a, b);
        assert!(a.is_well_formed());
        assert_eq!(a.rank_count(), 2);
        assert_eq!(a.ranks[0].segment_instance_count(), 3);
        // Shape 1 emits two events, shapes 0 and 2 one each.
        assert_eq!(a.total_events(), 5);
    }
}
