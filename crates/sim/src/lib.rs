#![forbid(unsafe_code)]
//! Virtual-time message-passing simulator and workload generators.
//!
//! The paper evaluates its trace-reduction methods on traces collected from
//! MPI programs running on a Linux cluster: APART Test Suite (ATS)
//! benchmarks with known performance behaviours, interference benchmarks
//! modelled after the ASCI Q system noise study, a dynamic-load-balancing
//! benchmark, and the Sweep3D application.  This crate substitutes for that
//! measurement infrastructure with a deterministic virtual-time simulator
//! that produces [`trace_model::AppTrace`]s with the same structure:
//!
//! * [`cluster::Cluster`] — per-rank virtual clocks, blocking point-to-point
//!   and collective semantics, wait-time accounting, segment markers and
//!   event recording.
//! * [`noise`] — periodic system-interference model (ASCI Q style).
//! * [`ats`] — the five regular-behaviour benchmarks.
//! * [`interference`] — the ten irregular-behaviour benchmarks (five
//!   communication patterns × two interference scales).
//! * [`dynload`] — the dynamic load-balancing benchmark.
//! * [`sweep3d`] — a pipelined-wavefront model of Sweep3D.
//! * [`workload`] — a registry of all 18 paper workloads with scalable
//!   size presets.
//! * [`specgen`] — a deterministic spec-driven generator shared by the
//!   property-test suites across the workspace.
//!
//! Every generator is deterministic given its seed, which keeps the
//! evaluation experiments and the benchmark harness reproducible.

#![warn(missing_docs)]

pub mod ats;
pub mod cluster;
pub mod dynload;
pub mod interference;
pub mod noise;
pub mod specgen;
pub mod sweep3d;
pub mod workload;

pub use cluster::{Cluster, P2pMode};
pub use noise::{NoiseModel, NoiseSource};
pub use workload::{SizePreset, Workload, WorkloadKind};
