//! Sweep3D: a pipelined-wavefront structured-mesh application model.
//!
//! Sweep3D solves a 3-D neutron-transport problem with the KBA algorithm:
//! the 3-D domain is decomposed over a 2-D process grid, and for each of the
//! eight sweep directions (octants) a wavefront of work moves diagonally
//! across the grid in pipelined blocks.  Each rank repeatedly receives
//! boundary data from its upstream neighbours, computes a block, and sends
//! to its downstream neighbours; pipeline fill and drain produce
//! rank-dependent waiting time in `MPI_Recv`.
//!
//! The model reproduces the program structure that matters to the trace
//! reducers: many distinct segment contexts, per-octant differences in
//! message-passing parameters (different peers per sweep direction), very
//! regular behaviour across outer iterations, and a per-iteration
//! `MPI_Allreduce` (the flux-error check).  The paper traces an 8-process
//! run (`input.50`) and a 32-process run (`input.150`).

use trace_model::{AppTrace, CollectiveOp, Duration};

use crate::cluster::Cluster;

/// Parameters of the Sweep3D model.
#[derive(Clone, Copy, Debug)]
pub struct Sweep3dParams {
    /// Process-grid extent in the i direction.
    pub npe_i: usize,
    /// Process-grid extent in the j direction.
    pub npe_j: usize,
    /// Number of outer (timestep/source) iterations.
    pub iterations: usize,
    /// Number of pipelined blocks per octant (k-plane/angle blocks).
    pub blocks_per_octant: usize,
    /// Compute time per block per rank.
    pub block_work: Duration,
    /// Boundary-exchange message size in bytes.
    pub boundary_bytes: u64,
    /// Multiplicative jitter on compute phases.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Sweep3dParams {
    /// The 8-process configuration (`sweep3d_8p`, input.50): 2×4 grid.
    pub fn paper_8p() -> Self {
        Sweep3dParams {
            npe_i: 2,
            npe_j: 4,
            iterations: 12,
            blocks_per_octant: 4,
            block_work: Duration::from_micros(400),
            boundary_bytes: 20_000,
            jitter: 0.02,
            seed: 0x53e3,
        }
    }

    /// The 32-process configuration (`sweep3d_32p`, input.150): 4×8 grid
    /// with a larger per-rank problem.
    pub fn paper_32p() -> Self {
        Sweep3dParams {
            npe_i: 4,
            npe_j: 8,
            iterations: 12,
            blocks_per_octant: 6,
            block_work: Duration::from_micros(700),
            boundary_bytes: 60_000,
            jitter: 0.02,
            seed: 0x53e4,
        }
    }

    /// A tiny configuration for unit tests (2×2 grid).
    pub fn small() -> Self {
        Sweep3dParams {
            npe_i: 2,
            npe_j: 2,
            iterations: 3,
            blocks_per_octant: 2,
            block_work: Duration::from_micros(200),
            boundary_bytes: 4_000,
            jitter: 0.02,
            seed: 0x53e5,
        }
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        self.npe_i * self.npe_j
    }
}

/// One of the eight sweep directions.
#[derive(Clone, Copy, Debug)]
struct Octant {
    /// +1 sweeps towards increasing i, -1 towards decreasing i.
    di: i32,
    /// +1 sweeps towards increasing j, -1 towards decreasing j.
    dj: i32,
    /// Message tag distinguishing this octant's boundary exchanges.
    tag: u32,
}

/// The eight octants: four 2-D wavefront directions, each swept twice
/// (once per k direction).
fn octants() -> [Octant; 8] {
    let mut out = [Octant {
        di: 1,
        dj: 1,
        tag: 0,
    }; 8];
    let dirs = [(1, 1), (-1, 1), (1, -1), (-1, -1)];
    for (idx, slot) in out.iter_mut().enumerate() {
        let (di, dj) = dirs[idx % 4];
        *slot = Octant {
            di,
            dj,
            tag: idx as u32,
        };
    }
    out
}

/// Grid coordinates of `rank`.
fn coords(rank: usize, npe_i: usize) -> (usize, usize) {
    (rank % npe_i, rank / npe_i)
}

/// Rank at grid coordinates `(i, j)`.
fn rank_at(i: usize, j: usize, npe_i: usize) -> usize {
    j * npe_i + i
}

/// The neighbour of `(i, j)` one step *against* the sweep direction `d`
/// along the given axis extent, i.e. the rank data is received from.
fn upstream(coord: usize, d: i32, extent: usize) -> Option<usize> {
    if d > 0 {
        coord.checked_sub(1)
    } else if coord + 1 < extent {
        Some(coord + 1)
    } else {
        None
    }
}

/// The neighbour of `(i, j)` one step *along* the sweep direction `d`.
fn downstream(coord: usize, d: i32, extent: usize) -> Option<usize> {
    if d > 0 {
        if coord + 1 < extent {
            Some(coord + 1)
        } else {
            None
        }
    } else {
        coord.checked_sub(1)
    }
}

/// Ranks ordered so that every rank appears after both of its upstream
/// neighbours for the given octant (wavefront/topological order).
fn wavefront_order(params: &Sweep3dParams, octant: &Octant) -> Vec<usize> {
    let mut order: Vec<usize> = (0..params.ranks()).collect();
    order.sort_by_key(|&rank| {
        let (i, j) = coords(rank, params.npe_i);
        let depth_i = if octant.di > 0 {
            i
        } else {
            params.npe_i - 1 - i
        };
        let depth_j = if octant.dj > 0 {
            j
        } else {
            params.npe_j - 1 - j
        };
        depth_i + depth_j
    });
    order
}

/// Generates a Sweep3D trace with the given name and parameters.
pub fn sweep3d(name: &str, params: &Sweep3dParams) -> AppTrace {
    let ranks = params.ranks();
    let mut c = Cluster::new(name, ranks, params.seed);

    // Initialization: MPI_Init, read/broadcast of the input deck, domain
    // decomposition.
    let ctx_init = c.context("init");
    c.begin_segment_all(ctx_init);
    for rank in 0..ranks {
        c.local_event(
            rank,
            "MPI_Init",
            Duration::from_micros(250 + 11 * rank as u64),
        );
        c.compute_jittered(rank, "decomp", Duration::from_micros(120), params.jitter);
    }
    c.collective(CollectiveOp::Bcast, 0, 2048);
    c.end_segment_all(ctx_init);

    let ctx_source = c.context("main.1");
    let ctx_octant = c.context("main.1.1");
    let ctx_stage = c.context("main.1.1.1");
    let ctx_flux = c.context("main.2");

    for _ in 0..params.iterations {
        // Per-iteration source computation (no communication).
        c.begin_segment_all(ctx_source);
        for rank in 0..ranks {
            c.compute_jittered(rank, "source", params.block_work.scale(0.5), params.jitter);
        }
        c.end_segment_all(ctx_source);

        // The eight octant sweeps.
        for octant in octants() {
            let order = wavefront_order(params, &octant);

            // Per-octant setup (angle initialisation) — its own segment so
            // the sweep stages below are a separate context.
            for &rank in &order {
                c.begin_segment(rank, ctx_octant);
                c.compute_jittered(
                    rank,
                    "octant_setup",
                    Duration::from_micros(40),
                    params.jitter,
                );
                c.end_segment(rank, ctx_octant);
            }

            for _stage in 0..params.blocks_per_octant {
                for &rank in &order {
                    let (i, j) = coords(rank, params.npe_i);
                    c.begin_segment(rank, ctx_stage);
                    if let Some(ui) = upstream(i, octant.di, params.npe_i) {
                        let peer = rank_at(ui, j, params.npe_i);
                        c.wait_recv(rank, peer, octant.tag, params.boundary_bytes);
                    }
                    if let Some(uj) = upstream(j, octant.dj, params.npe_j) {
                        let peer = rank_at(i, uj, params.npe_i);
                        c.wait_recv(rank, peer, octant.tag + 100, params.boundary_bytes);
                    }
                    c.compute_jittered(rank, "sweep_", params.block_work, params.jitter);
                    if let Some(dsi) = downstream(i, octant.di, params.npe_i) {
                        let peer = rank_at(dsi, j, params.npe_i);
                        c.post_send(rank, peer, octant.tag, params.boundary_bytes);
                    }
                    if let Some(dsj) = downstream(j, octant.dj, params.npe_j) {
                        let peer = rank_at(i, dsj, params.npe_i);
                        c.post_send(rank, peer, octant.tag + 100, params.boundary_bytes);
                    }
                    c.end_segment(rank, ctx_stage);
                }
            }
        }

        // Flux-error check: global reduction.
        c.begin_segment_all(ctx_flux);
        for rank in 0..ranks {
            c.compute_jittered(rank, "flux_err", Duration::from_micros(60), params.jitter);
        }
        c.collective(CollectiveOp::Allreduce, 0, 64);
        c.end_segment_all(ctx_flux);
    }

    // Finalization: gather of global diagnostics plus MPI_Finalize.
    let ctx_final = c.context("final");
    c.begin_segment_all(ctx_final);
    c.collective(CollectiveOp::Gather, 0, 4096);
    for rank in 0..ranks {
        c.local_event(rank, "MPI_Finalize", Duration::from_micros(150));
    }
    c.end_segment_all(ctx_final);

    c.finish()
}

/// The paper's 8-process Sweep3D run.
pub fn sweep3d_8p() -> AppTrace {
    sweep3d("sweep3d_8p", &Sweep3dParams::paper_8p())
}

/// The paper's 32-process Sweep3D run.
pub fn sweep3d_32p() -> AppTrace {
    sweep3d("sweep3d_32p", &Sweep3dParams::paper_32p())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::Time;

    #[test]
    fn small_sweep_is_well_formed() {
        let p = Sweep3dParams::small();
        let app = sweep3d("sweep3d_test", &p);
        assert!(app.is_well_formed());
        assert_eq!(app.rank_count(), 4);
        // Contexts: init, main.1, main.1.1, main.1.1.1, main.2, final.
        assert_eq!(app.contexts.len(), 6);
    }

    #[test]
    fn corner_ranks_wait_for_the_pipeline() {
        // In a wavefront sweep the ranks far from the starting corner spend
        // time waiting in MPI_Recv during pipeline fill.
        let p = Sweep3dParams::small();
        let app = sweep3d("sweep3d_test", &p);
        let recv = app.regions.lookup("MPI_Recv").unwrap();
        let total_wait: Time = app
            .ranks
            .iter()
            .flat_map(|rt| rt.events())
            .filter(|e| e.region == recv)
            .map(|e| e.wait)
            .sum();
        assert!(
            total_wait > Duration::from_micros(100),
            "pipeline fill should produce measurable receive wait, got {total_wait}"
        );
    }

    #[test]
    fn every_rank_has_the_same_segment_structure_per_iteration() {
        let p = Sweep3dParams::small();
        let app = sweep3d("sweep3d_test", &p);
        // Per iteration: 1 source + 8 octant setups + 8*blocks stages + 1 flux.
        let per_iter = 1 + 8 + 8 * p.blocks_per_octant + 1;
        let expected = 2 + p.iterations * per_iter; // + init + final
        for rt in &app.ranks {
            assert_eq!(rt.segment_instance_count(), expected);
        }
    }

    #[test]
    fn octant_direction_changes_message_peers() {
        let p = Sweep3dParams::small();
        let app = sweep3d("sweep3d_test", &p);
        // Rank 0 (corner) must send to different peers in different octants.
        let peers: std::collections::HashSet<u32> = app.ranks[0]
            .events()
            .filter_map(|e| match e.comm {
                trace_model::CommInfo::Send { peer, .. } => Some(peer.as_u32()),
                _ => None,
            })
            .collect();
        assert!(
            peers.len() >= 2,
            "corner rank should talk to both grid neighbours"
        );
    }

    #[test]
    fn paper_configurations_have_expected_rank_counts() {
        assert_eq!(Sweep3dParams::paper_8p().ranks(), 8);
        assert_eq!(Sweep3dParams::paper_32p().ranks(), 32);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = Sweep3dParams::small();
        assert_eq!(sweep3d("a", &p), sweep3d("a", &p));
    }
}
