//! Regular-behaviour benchmarks (APART Test Suite equivalents).
//!
//! Each benchmark simulates a program that exhibits one well-known MPI
//! performance problem with the *same severity in every iteration*
//! (Section 4.1, "Benchmarks with Regular Behavior"):
//!
//! | benchmark                  | pattern | problem                      |
//! |----------------------------|---------|------------------------------|
//! | `early_gather`             | N→1     | root blocks in `MPI_Gather`  |
//! | `imbalance_at_mpi_barrier` | N→N     | last rank delays the barrier |
//! | `late_receiver`            | 1→1     | `MPI_Ssend` blocks on a slow receiver |
//! | `late_sender`              | 1→1     | `MPI_Recv` blocks on a slow sender    |
//! | `late_broadcast`           | 1→N     | slow root delays `MPI_Bcast` |
//!
//! The paper runs each with 8 processes; the rank count is a parameter here
//! so tests can use smaller runs.

use trace_model::{AppTrace, CollectiveOp, Duration};

use crate::cluster::{Cluster, P2pMode};

/// Parameters shared by the regular benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct RegularParams {
    /// Number of MPI ranks (the paper uses 8).
    pub ranks: usize,
    /// Number of iterations of the main loop.
    pub iterations: usize,
    /// Baseline per-iteration compute time for an unaffected rank.
    pub base_work: Duration,
    /// Extra compute time given to the rank(s) that cause the problem.
    pub severity: Duration,
    /// Multiplicative jitter applied to every compute phase.
    pub jitter: f64,
    /// RNG seed (controls jitter only).
    pub seed: u64,
}

impl Default for RegularParams {
    fn default() -> Self {
        RegularParams {
            ranks: 8,
            iterations: 100,
            base_work: Duration::from_micros(800),
            severity: Duration::from_micros(900),
            jitter: 0.02,
            seed: 0x5eed,
        }
    }
}

impl RegularParams {
    /// Paper-scale parameters (8 ranks, 100 iterations).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced parameters for fast unit tests.
    pub fn small() -> Self {
        RegularParams {
            ranks: 4,
            iterations: 12,
            ..Self::default()
        }
    }
}

/// Runs the init segment (`MPI_Init`) on every rank.
pub(crate) fn init_phase(c: &mut Cluster, ranks: usize) {
    let ctx = c.context("init");
    c.begin_segment_all(ctx);
    for rank in 0..ranks {
        // Start-up cost differs slightly per rank so that ranks are not in
        // perfect lockstep when the first iteration begins.
        let setup = Duration::from_micros(200 + 13 * rank as u64);
        c.local_event(rank, "MPI_Init", setup);
    }
    c.collective(CollectiveOp::Barrier, 0, 0);
    c.end_segment_all(ctx);
}

/// Runs the final segment (`MPI_Finalize`) on every rank.
pub(crate) fn finalize_phase(c: &mut Cluster, ranks: usize) {
    let ctx = c.context("final");
    c.begin_segment_all(ctx);
    for rank in 0..ranks {
        c.local_event(rank, "MPI_Finalize", Duration::from_micros(150));
    }
    c.end_segment_all(ctx);
}

/// `early_gather`: all non-root ranks are slow, the root arrives early and
/// blocks inside `MPI_Gather` waiting for its senders.
pub fn early_gather(params: &RegularParams) -> AppTrace {
    let mut c = Cluster::new("early_gather", params.ranks, params.seed);
    init_phase(&mut c, params.ranks);
    let ctx = c.context("main.1");
    for _ in 0..params.iterations {
        c.begin_segment_all(ctx);
        for rank in 0..params.ranks {
            let work = if rank == 0 {
                params.base_work
            } else {
                params.base_work + params.severity
            };
            c.compute_jittered(rank, "do_work", work, params.jitter);
        }
        c.collective(CollectiveOp::Gather, 0, 1024);
        c.end_segment_all(ctx);
    }
    finalize_phase(&mut c, params.ranks);
    c.finish()
}

/// `imbalance_at_mpi_barrier`: compute time grows linearly with the rank
/// number, so the highest rank delays everybody at the barrier.
pub fn imbalance_at_mpi_barrier(params: &RegularParams) -> AppTrace {
    let mut c = Cluster::new("imbalance_at_mpi_barrier", params.ranks, params.seed);
    init_phase(&mut c, params.ranks);
    let ctx = c.context("main.1");
    let denom = (params.ranks.max(2) - 1) as f64;
    for _ in 0..params.iterations {
        c.begin_segment_all(ctx);
        for rank in 0..params.ranks {
            let extra = params.severity.scale(rank as f64 / denom);
            c.compute_jittered(rank, "do_work", params.base_work + extra, params.jitter);
        }
        c.collective(CollectiveOp::Barrier, 0, 0);
        c.end_segment_all(ctx);
    }
    finalize_phase(&mut c, params.ranks);
    c.finish()
}

/// `late_sender`: even ranks send to the next odd rank; the senders are slow
/// so the receivers block in `MPI_Recv`.
pub fn late_sender(params: &RegularParams) -> AppTrace {
    pairwise(params, "late_sender", P2pMode::StandardSend, true)
}

/// `late_receiver`: even ranks perform a synchronous send to the next odd
/// rank; the receivers are slow so the senders block in `MPI_Ssend`.
pub fn late_receiver(params: &RegularParams) -> AppTrace {
    pairwise(params, "late_receiver", P2pMode::SynchronousSend, false)
}

/// Shared driver for the two 1-to-1 benchmarks.  `slow_sender` selects which
/// side of each pair gets the extra work.
fn pairwise(params: &RegularParams, name: &str, mode: P2pMode, slow_sender: bool) -> AppTrace {
    assert!(
        params.ranks >= 2 && params.ranks.is_multiple_of(2),
        "pairwise benchmarks need an even rank count"
    );
    let mut c = Cluster::new(name, params.ranks, params.seed);
    init_phase(&mut c, params.ranks);
    let ctx = c.context("main.1");
    for _ in 0..params.iterations {
        c.begin_segment_all(ctx);
        for pair in 0..params.ranks / 2 {
            let sender = 2 * pair;
            let receiver = 2 * pair + 1;
            let (sender_work, receiver_work) = if slow_sender {
                (params.base_work + params.severity, params.base_work)
            } else {
                (params.base_work, params.base_work + params.severity)
            };
            c.compute_jittered(sender, "do_work", sender_work, params.jitter);
            c.compute_jittered(receiver, "do_work", receiver_work, params.jitter);
            c.point_to_point(sender, receiver, 42, 65_536, mode);
        }
        c.end_segment_all(ctx);
    }
    finalize_phase(&mut c, params.ranks);
    c.finish()
}

/// `late_broadcast`: the root is slow, so every other rank blocks in
/// `MPI_Bcast` waiting for it.
pub fn late_broadcast(params: &RegularParams) -> AppTrace {
    let mut c = Cluster::new("late_broadcast", params.ranks, params.seed);
    init_phase(&mut c, params.ranks);
    let ctx = c.context("main.1");
    for _ in 0..params.iterations {
        c.begin_segment_all(ctx);
        for rank in 0..params.ranks {
            let work = if rank == 0 {
                params.base_work + params.severity
            } else {
                params.base_work
            };
            c.compute_jittered(rank, "do_work", work, params.jitter);
        }
        c.collective(CollectiveOp::Bcast, 0, 8192);
        c.end_segment_all(ctx);
    }
    finalize_phase(&mut c, params.ranks);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::CommInfo;

    fn params() -> RegularParams {
        RegularParams::small()
    }

    fn total_wait_in(app: &AppTrace, region: &str) -> Duration {
        let id = app.regions.lookup(region);
        app.ranks
            .iter()
            .flat_map(|rt| rt.events())
            .filter(|e| Some(e.region) == id)
            .map(|e| e.wait)
            .sum()
    }

    fn wait_of_rank_in(app: &AppTrace, rank: usize, region: &str) -> Duration {
        let id = app.regions.lookup(region);
        app.ranks[rank]
            .events()
            .filter(|e| Some(e.region) == id)
            .map(|e| e.wait)
            .sum()
    }

    #[test]
    fn all_regular_benchmarks_produce_well_formed_traces() {
        let p = params();
        for app in [
            early_gather(&p),
            imbalance_at_mpi_barrier(&p),
            late_sender(&p),
            late_receiver(&p),
            late_broadcast(&p),
        ] {
            assert!(app.is_well_formed(), "{} trace malformed", app.name);
            assert_eq!(app.rank_count(), p.ranks);
            for rt in &app.ranks {
                // init + iterations + final segments on every rank.
                assert_eq!(rt.segment_instance_count(), p.iterations + 2);
            }
        }
    }

    #[test]
    fn early_gather_root_waits_most() {
        let app = early_gather(&params());
        let root_wait = wait_of_rank_in(&app, 0, "MPI_Gather");
        let other_wait = wait_of_rank_in(&app, 1, "MPI_Gather");
        assert!(
            root_wait > other_wait.scale(4.0),
            "root wait {root_wait} should dominate sender wait {other_wait}"
        );
    }

    #[test]
    fn imbalance_at_barrier_lowest_rank_waits_most() {
        let p = params();
        let app = imbalance_at_mpi_barrier(&p);
        let low = wait_of_rank_in(&app, 0, "MPI_Barrier");
        let high = wait_of_rank_in(&app, p.ranks - 1, "MPI_Barrier");
        assert!(
            low > high,
            "rank 0 ({low}) must wait more than the slowest rank ({high})"
        );
    }

    #[test]
    fn late_sender_puts_wait_on_receivers() {
        let app = late_sender(&params());
        let recv_wait = total_wait_in(&app, "MPI_Recv");
        let send_wait = total_wait_in(&app, "MPI_Send");
        assert!(recv_wait > Duration::from_millis(1));
        assert_eq!(send_wait, Duration::ZERO);
    }

    #[test]
    fn late_receiver_puts_wait_on_senders() {
        let app = late_receiver(&params());
        let send_wait = total_wait_in(&app, "MPI_Ssend");
        let recv_wait = total_wait_in(&app, "MPI_Recv");
        assert!(send_wait > Duration::from_millis(1));
        assert!(send_wait > recv_wait.scale(4.0));
    }

    #[test]
    fn late_broadcast_makes_receivers_wait() {
        let app = late_broadcast(&params());
        let root_wait = wait_of_rank_in(&app, 0, "MPI_Bcast");
        let recv_wait = wait_of_rank_in(&app, 1, "MPI_Bcast");
        assert_eq!(root_wait, Duration::ZERO);
        assert!(recv_wait > Duration::from_millis(1));
    }

    #[test]
    fn regular_benchmarks_are_deterministic() {
        let p = params();
        let a = late_sender(&p);
        let b = late_sender(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn point_to_point_events_carry_parameters() {
        let app = late_sender(&params());
        let send = app.ranks[0]
            .events()
            .find(|e| matches!(e.comm, CommInfo::Send { .. }))
            .unwrap();
        match send.comm {
            CommInfo::Send { peer, tag, bytes } => {
                assert_eq!(peer.as_u32(), 1);
                assert_eq!(tag, 42);
                assert_eq!(bytes, 65_536);
            }
            _ => unreachable!(),
        }
    }
}
