//! Registry of the paper's 18 workloads.
//!
//! The evaluation of the paper uses 18 program traces: five regular ATS
//! benchmarks, ten interference benchmarks (five communication patterns ×
//! two interference scales), the dynamic load-balancing benchmark, and two
//! Sweep3D runs.  [`Workload`] names and generates each of them, with a
//! [`SizePreset`] that scales the run down for unit tests and up for the
//! full experiment reproduction.

use trace_model::AppTrace;

use crate::ats::{self, RegularParams};
use crate::dynload::{dyn_load_balance, DynLoadParams};
use crate::interference::{interference, InterferenceParams, InterferenceScale, Pattern};
use crate::sweep3d::{sweep3d, Sweep3dParams};

/// How large a run to generate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SizePreset {
    /// Paper-scale runs: what `TRACE_REPRO_PRESET=paper cargo bench` and
    /// the recorded numbers in `EXPERIMENTS.md` (repository root) use.
    Paper,
    /// Reduced iteration counts; keeps every behaviour but runs quickly.
    /// Used by the integration tests and examples.
    Small,
    /// Minimal runs for unit tests.
    Tiny,
}

impl SizePreset {
    /// Scales an iteration count for this preset.
    fn scale_iterations(self, paper_iterations: usize) -> usize {
        match self {
            SizePreset::Paper => paper_iterations,
            SizePreset::Small => (paper_iterations / 4).max(8),
            SizePreset::Tiny => (paper_iterations / 10).max(4),
        }
    }
}

/// The broad workload category used when summarizing results.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadCategory {
    /// Benchmarks with regular behaviour (Section 4.1, first group).
    Regular,
    /// Benchmarks with simulated system interference.
    Interference,
    /// The dynamic load-balancing benchmark.
    DynamicLoadBalance,
    /// The Sweep3D application runs.
    Application,
}

/// Identifies one of the paper's workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// `early_gather` (regular, N→1).
    EarlyGather,
    /// `imbalance_at_mpi_barrier` (regular, N→N).
    ImbalanceAtMpiBarrier,
    /// `late_receiver` (regular, 1→1 synchronous send).
    LateReceiver,
    /// `late_sender` (regular, 1→1 blocking receive).
    LateSender,
    /// `late_broadcast` (regular, 1→N).
    LateBroadcast,
    /// One of the ten interference benchmarks.
    Interference(Pattern, InterferenceScale),
    /// `dyn_load_balance`.
    DynLoadBalance,
    /// `sweep3d_8p` (input.50).
    Sweep3d8p,
    /// `sweep3d_32p` (input.150).
    Sweep3d32p,
}

impl WorkloadKind {
    /// All 18 workloads in the order the paper presents them.
    pub fn all_paper() -> Vec<WorkloadKind> {
        let mut all = vec![
            WorkloadKind::EarlyGather,
            WorkloadKind::ImbalanceAtMpiBarrier,
            WorkloadKind::LateReceiver,
            WorkloadKind::LateSender,
            WorkloadKind::LateBroadcast,
        ];
        for scale in [InterferenceScale::Nodes32, InterferenceScale::Procs1024] {
            for pattern in Pattern::ALL {
                all.push(WorkloadKind::Interference(pattern, scale));
            }
        }
        all.push(WorkloadKind::DynLoadBalance);
        all.push(WorkloadKind::Sweep3d8p);
        all.push(WorkloadKind::Sweep3d32p);
        all
    }

    /// The 16 benchmark workloads (everything except Sweep3D).
    pub fn benchmarks() -> Vec<WorkloadKind> {
        Self::all_paper()
            .into_iter()
            .filter(|k| k.category() != WorkloadCategory::Application)
            .collect()
    }

    /// The workload's name as used in the paper's figures and tables.
    pub fn name(&self) -> String {
        match self {
            WorkloadKind::EarlyGather => "early_gather".into(),
            WorkloadKind::ImbalanceAtMpiBarrier => "imbalance_at_mpi_barrier".into(),
            WorkloadKind::LateReceiver => "late_receiver".into(),
            WorkloadKind::LateSender => "late_sender".into(),
            WorkloadKind::LateBroadcast => "late_broadcast".into(),
            WorkloadKind::Interference(pattern, scale) => {
                format!("{}_{}", pattern.short_name(), scale.suffix())
            }
            WorkloadKind::DynLoadBalance => "dyn_load_balance".into(),
            WorkloadKind::Sweep3d8p => "sweep3d_8p".into(),
            WorkloadKind::Sweep3d32p => "sweep3d_32p".into(),
        }
    }

    /// Looks a workload up by its paper name.
    pub fn by_name(name: &str) -> Option<WorkloadKind> {
        Self::all_paper().into_iter().find(|k| k.name() == name)
    }

    /// The workload's category.
    pub fn category(&self) -> WorkloadCategory {
        match self {
            WorkloadKind::EarlyGather
            | WorkloadKind::ImbalanceAtMpiBarrier
            | WorkloadKind::LateReceiver
            | WorkloadKind::LateSender
            | WorkloadKind::LateBroadcast => WorkloadCategory::Regular,
            WorkloadKind::Interference(..) => WorkloadCategory::Interference,
            WorkloadKind::DynLoadBalance => WorkloadCategory::DynamicLoadBalance,
            WorkloadKind::Sweep3d8p | WorkloadKind::Sweep3d32p => WorkloadCategory::Application,
        }
    }
}

/// A workload plus the size preset to generate it at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Workload {
    /// Which of the 18 workloads.
    pub kind: WorkloadKind,
    /// How large a run to generate.
    pub preset: SizePreset,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(kind: WorkloadKind, preset: SizePreset) -> Self {
        Workload { kind, preset }
    }

    /// All 18 paper workloads at the given preset.
    pub fn all(preset: SizePreset) -> Vec<Workload> {
        WorkloadKind::all_paper()
            .into_iter()
            .map(|kind| Workload::new(kind, preset))
            .collect()
    }

    /// The workload's paper name.
    pub fn name(&self) -> String {
        self.kind.name()
    }

    /// Generates the full trace for this workload.
    pub fn generate(&self) -> AppTrace {
        let preset = self.preset;
        match self.kind {
            WorkloadKind::EarlyGather => ats::early_gather(&regular_params(preset)),
            WorkloadKind::ImbalanceAtMpiBarrier => {
                ats::imbalance_at_mpi_barrier(&regular_params(preset))
            }
            WorkloadKind::LateReceiver => ats::late_receiver(&regular_params(preset)),
            WorkloadKind::LateSender => ats::late_sender(&regular_params(preset)),
            WorkloadKind::LateBroadcast => ats::late_broadcast(&regular_params(preset)),
            WorkloadKind::Interference(pattern, scale) => {
                interference(pattern, scale, &interference_params(preset))
            }
            WorkloadKind::DynLoadBalance => dyn_load_balance(&dynload_params(preset)),
            WorkloadKind::Sweep3d8p => sweep3d(
                "sweep3d_8p",
                &sweep3d_params(Sweep3dParams::paper_8p(), preset),
            ),
            WorkloadKind::Sweep3d32p => sweep3d(
                "sweep3d_32p",
                &sweep3d_params(Sweep3dParams::paper_32p(), preset),
            ),
        }
    }
}

impl Workload {
    /// Generates the workload and writes it to `out` in the text trace
    /// format, ready for streaming consumers (`trace-tools reduce --stream`,
    /// the `trace_stream` crate).
    pub fn write_text_to<W: std::io::Write>(&self, out: W) -> std::io::Result<W> {
        trace_format::write_app_trace_to(out, &self.generate())
    }

    /// Writes the workload to `out` in the text trace format with every
    /// rank's run replayed `repeats` times back-to-back (time stamps offset
    /// so each rank stays monotone).
    ///
    /// Only one in-memory copy of the workload is generated regardless of
    /// `repeats`, and the amplified trace is streamed out record by record
    /// — this is how the end-to-end big-trace tests and benches produce
    /// traces much larger than the generator's working set.  A `repeats`
    /// of 0 is treated as 1.
    pub fn write_text_amplified_to<W: std::io::Write>(
        &self,
        out: W,
        repeats: usize,
    ) -> std::io::Result<W> {
        let app = self.generate();
        let writer = trace_format::AppTraceTextWriter::new(
            out,
            &app.name,
            app.rank_count(),
            app.regions.names(),
            app.contexts.names(),
        )?;
        replay_amplified(TextSink(writer), &app, repeats)
    }

    /// Generates the workload and writes it to `out` as a chunked binary
    /// container (`.trc` v2), ready for the binary streaming consumers
    /// (`trace-tools reduce --stream` on container files, the
    /// `trace_container` crate's indexed readers).
    pub fn write_container_to<W: std::io::Write>(
        &self,
        out: W,
        spec: trace_container::ChunkSpec,
    ) -> std::io::Result<W> {
        trace_container::write_app_container(out, &self.generate(), spec)
    }

    /// Writes the workload to `out` as a chunked container with every
    /// rank's run replayed `repeats` times back-to-back, mirroring
    /// [`Workload::write_text_amplified_to`]: one in-memory copy of the
    /// workload, O(one chunk) writer state, arbitrarily large output.
    pub fn write_container_amplified_to<W: std::io::Write>(
        &self,
        out: W,
        repeats: usize,
        spec: trace_container::ChunkSpec,
    ) -> std::io::Result<W> {
        let app = self.generate();
        let writer = trace_container::ChunkWriter::app(
            out,
            &app.name,
            app.rank_count(),
            app.regions.names(),
            app.contexts.names(),
            spec,
        )?;
        replay_amplified(ContainerSink(writer), &app, repeats)
    }
}

/// The rank/record/finish surface shared by the text and container trace
/// writers, so the amplification replay below exists once.
trait RecordSink<W> {
    fn begin_rank(&mut self, rank: trace_model::Rank) -> std::io::Result<()>;
    fn record(&mut self, record: &trace_model::TraceRecord) -> std::io::Result<()>;
    fn end_rank(&mut self) -> std::io::Result<()>;
    fn finish(self) -> std::io::Result<W>;
}

struct TextSink<W: std::io::Write>(trace_format::AppTraceTextWriter<W>);

impl<W: std::io::Write> RecordSink<W> for TextSink<W> {
    fn begin_rank(&mut self, rank: trace_model::Rank) -> std::io::Result<()> {
        self.0.begin_rank(rank)
    }
    fn record(&mut self, record: &trace_model::TraceRecord) -> std::io::Result<()> {
        self.0.record(record)
    }
    fn end_rank(&mut self) -> std::io::Result<()> {
        self.0.end_rank()
    }
    fn finish(self) -> std::io::Result<W> {
        self.0.finish()
    }
}

struct ContainerSink<W: std::io::Write>(trace_container::ChunkWriter<W>);

impl<W: std::io::Write> RecordSink<W> for ContainerSink<W> {
    fn begin_rank(&mut self, rank: trace_model::Rank) -> std::io::Result<()> {
        self.0.begin_rank(rank)
    }
    fn record(&mut self, record: &trace_model::TraceRecord) -> std::io::Result<()> {
        self.0.record(record)
    }
    fn end_rank(&mut self) -> std::io::Result<()> {
        self.0.end_rank()
    }
    fn finish(self) -> std::io::Result<W> {
        self.0.finish()
    }
}

/// Streams `app` into `sink` with every rank's run replayed `repeats`
/// times back-to-back, time stamps offset so each rank stays monotone.
/// A `repeats` of 0 is treated as 1.
fn replay_amplified<W, S: RecordSink<W>>(
    mut sink: S,
    app: &AppTrace,
    repeats: usize,
) -> std::io::Result<W> {
    use trace_model::{Time, TraceRecord};

    let repeats = repeats.max(1);
    // Any per-repeat offset >= the run's end keeps each rank's record
    // stream monotone; the app-wide end keeps ranks aligned.
    let period = app.end_time().as_nanos();

    for rank in &app.ranks {
        sink.begin_rank(rank.rank)?;
        for repeat in 0..repeats {
            let offset = Time::from_nanos(period * repeat as u64);
            for record in &rank.records {
                let shifted = match record {
                    TraceRecord::SegmentBegin { context, time } => TraceRecord::SegmentBegin {
                        context: *context,
                        time: *time + offset,
                    },
                    TraceRecord::SegmentEnd { context, time } => TraceRecord::SegmentEnd {
                        context: *context,
                        time: *time + offset,
                    },
                    TraceRecord::Event(event) => TraceRecord::Event(event.offset(offset)),
                };
                sink.record(&shifted)?;
            }
        }
        sink.end_rank()?;
    }
    sink.finish()
}

fn regular_params(preset: SizePreset) -> RegularParams {
    let paper = RegularParams::paper();
    RegularParams {
        iterations: preset.scale_iterations(paper.iterations),
        ..paper
    }
}

fn interference_params(preset: SizePreset) -> InterferenceParams {
    let paper = InterferenceParams::paper();
    InterferenceParams {
        iterations: preset.scale_iterations(paper.iterations),
        ranks: match preset {
            SizePreset::Paper | SizePreset::Small => paper.ranks,
            SizePreset::Tiny => 8,
        },
        ..paper
    }
}

fn dynload_params(preset: SizePreset) -> DynLoadParams {
    let paper = DynLoadParams::paper();
    DynLoadParams {
        iterations: preset.scale_iterations(paper.iterations),
        ..paper
    }
}

fn sweep3d_params(paper: Sweep3dParams, preset: SizePreset) -> Sweep3dParams {
    Sweep3dParams {
        iterations: preset.scale_iterations(paper.iterations),
        ..paper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eighteen_paper_workloads_with_unique_names() {
        let all = WorkloadKind::all_paper();
        assert_eq!(all.len(), 18);
        let mut names: Vec<String> = all.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 18);
        assert_eq!(WorkloadKind::benchmarks().len(), 16);
    }

    #[test]
    fn names_round_trip_through_by_name() {
        for kind in WorkloadKind::all_paper() {
            assert_eq!(WorkloadKind::by_name(&kind.name()), Some(kind));
        }
        assert_eq!(WorkloadKind::by_name("nonexistent"), None);
    }

    #[test]
    fn categories_partition_the_workloads() {
        let all = WorkloadKind::all_paper();
        let regular = all
            .iter()
            .filter(|k| k.category() == WorkloadCategory::Regular)
            .count();
        let noise = all
            .iter()
            .filter(|k| k.category() == WorkloadCategory::Interference)
            .count();
        let dynload = all
            .iter()
            .filter(|k| k.category() == WorkloadCategory::DynamicLoadBalance)
            .count();
        let apps = all
            .iter()
            .filter(|k| k.category() == WorkloadCategory::Application)
            .count();
        assert_eq!((regular, noise, dynload, apps), (5, 10, 1, 2));
    }

    #[test]
    fn tiny_workloads_generate_and_are_well_formed() {
        // Generate every workload at the tiny preset; this covers every
        // generator path without long runtimes.
        for workload in Workload::all(SizePreset::Tiny) {
            let app = workload.generate();
            assert_eq!(app.name, workload.name());
            assert!(app.is_well_formed(), "{} malformed", app.name);
            assert!(app.total_events() > 0);
        }
    }

    #[test]
    fn write_text_to_round_trips_through_the_format_parser() {
        let workload = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny);
        let bytes = workload.write_text_to(Vec::new()).unwrap();
        let parsed = trace_format::parse_app_trace(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(parsed, workload.generate());
    }

    #[test]
    fn amplified_traces_replay_the_run_and_stay_well_formed() {
        let workload = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny);
        let app = workload.generate();
        let bytes = workload.write_text_amplified_to(Vec::new(), 5).unwrap();
        let parsed = trace_format::parse_app_trace(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert!(parsed.is_well_formed());
        assert_eq!(parsed.rank_count(), app.rank_count());
        assert_eq!(parsed.total_events(), 5 * app.total_events());
        // repeats = 0 degrades to a single copy.
        let once = workload.write_text_amplified_to(Vec::new(), 0).unwrap();
        let single = trace_format::parse_app_trace(std::str::from_utf8(&once).unwrap()).unwrap();
        assert_eq!(single, app);
    }

    #[test]
    fn container_writers_round_trip_and_amplify() {
        use trace_container::{read_app_container, ChunkSpec, Codec};

        let workload = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny);
        let app = workload.generate();
        let bytes = workload
            .write_container_to(Vec::new(), ChunkSpec::with_segments(4))
            .unwrap();
        assert_eq!(read_app_container(&bytes[..]).unwrap(), app);

        let amplified = workload
            .write_container_amplified_to(Vec::new(), 5, ChunkSpec::with_segments(4))
            .unwrap();
        let parsed = read_app_container(&amplified[..]).unwrap();
        assert!(parsed.is_well_formed());
        assert_eq!(parsed.rank_count(), app.rank_count());
        assert_eq!(parsed.total_events(), 5 * app.total_events());

        // The chunk spec carries the compression codec straight through the
        // workload writers: amplified runs repeat, so delta-lz must shrink
        // the container while decoding to the identical trace.
        let compressed = workload
            .write_container_amplified_to(
                Vec::new(),
                5,
                ChunkSpec::with_segments(4).codec(Codec::DeltaLz),
            )
            .unwrap();
        assert!(
            compressed.len() < amplified.len(),
            "{} vs {}",
            compressed.len(),
            amplified.len()
        );
        assert_eq!(read_app_container(&compressed[..]).unwrap(), parsed);
    }

    #[test]
    fn presets_scale_trace_sizes() {
        let tiny = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny)
            .generate()
            .total_events();
        let small = Workload::new(WorkloadKind::LateSender, SizePreset::Small)
            .generate()
            .total_events();
        assert!(small > tiny);
    }
}
