//! System-interference (noise) model.
//!
//! The irregular benchmarks of the paper simulate the periodic operating
//! system interference that Petrini et al. identified on ASCI Q: daemons and
//! kernel activity interrupt the application at fixed periods on every node,
//! stretching compute phases and de-synchronizing ranks before communication
//! steps.  The paper runs two scenarios: interruptions as seen by a 32-node
//! run, and the (much heavier) aggregate interruption load a 1024-process
//! run would experience.
//!
//! [`NoiseModel`] reproduces that structure: a set of periodic
//! [`NoiseSource`]s per node, each with a period, a per-occurrence duration
//! and a per-node phase offset.  Applying the model to a compute interval
//! returns the interval's stretched duration.

use trace_model::{Duration, Time};

/// One periodic source of interference (e.g. an OS daemon).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseSource {
    /// Interval between consecutive interruptions.
    pub period: Duration,
    /// Duration stolen from the application per interruption.
    pub duration: Duration,
    /// Per-node phase offset multiplier: node `n` sees this source shifted by
    /// `offset_step * n` so that nodes are not interrupted in lockstep.
    pub offset_step: Duration,
}

impl NoiseSource {
    /// Creates a noise source.
    pub fn new(period: Duration, duration: Duration, offset_step: Duration) -> Self {
        NoiseSource {
            period,
            duration,
            offset_step,
        }
    }

    /// Total interruption time this source injects into the half-open busy
    /// interval `[start, start + busy)` on node `node`.
    fn interference_in(&self, node: u32, start: Time, busy: Duration) -> Duration {
        if self.period.is_zero() || busy.is_zero() {
            return Duration::ZERO;
        }
        let period = self.period.as_nanos();
        let offset = self.offset_step.as_nanos().wrapping_mul(u64::from(node)) % period;
        let lo = start.as_nanos();
        let hi = lo + busy.as_nanos();
        // Occurrences are at offset + k * period.  Count k with lo <= t < hi.
        let first_k = if lo <= offset {
            0
        } else {
            (lo - offset).div_ceil(period)
        };
        let first_t = offset + first_k * period;
        if first_t >= hi {
            return Duration::ZERO;
        }
        let count = (hi - 1 - first_t) / period + 1;
        Duration::from_nanos(count * self.duration.as_nanos())
    }
}

/// A collection of noise sources applied to every node of the simulated
/// machine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NoiseModel {
    /// The periodic sources making up the interference.
    pub sources: Vec<NoiseSource>,
    /// How many ranks share one node (interference is per node).
    pub ranks_per_node: u32,
}

impl NoiseModel {
    /// Creates a noise model with the given sources; `ranks_per_node`
    /// defaults to one rank per node.
    pub fn new(sources: Vec<NoiseSource>) -> Self {
        NoiseModel {
            sources,
            ranks_per_node: 1,
        }
    }

    /// A model with no interference.
    pub fn silent() -> Self {
        NoiseModel::new(Vec::new())
    }

    /// ASCI-Q-like interference for a 32-node run (the `_32` benchmarks):
    /// a frequent short kernel tick plus two slower, longer daemons.
    pub fn asci_q_32() -> Self {
        NoiseModel::new(vec![
            // Kernel timer tick style: every 10ms steal 25us.
            NoiseSource::new(
                Duration::from_millis(10),
                Duration::from_micros(25),
                Duration::from_micros(310),
            ),
            // Node-local daemon: every 125ms steal 2.5ms.
            NoiseSource::new(
                Duration::from_millis(125),
                Duration::from_micros(2_500),
                Duration::from_millis(3),
            ),
            // Cluster management heartbeat: every 1s steal 5ms.
            NoiseSource::new(
                Duration::from_secs(1),
                Duration::from_millis(5),
                Duration::from_millis(17),
            ),
        ])
    }

    /// The interference a 1024-process run would experience, simulated on 32
    /// ranks (the `_1024` benchmarks).  With 32× more processes the chance
    /// that *some* rank is interrupted before a collective grows
    /// proportionally; the paper emulates this by injecting the aggregate
    /// interruption load into each of the 32 simulated ranks, which we model
    /// by scaling source frequency.
    pub fn asci_q_1024() -> Self {
        let mut model = Self::asci_q_32();
        for src in &mut model.sources {
            // 8× more frequent interruptions per rank approximates the
            // aggregate noise a 1024-process machine injects into each
            // collective; periods stay well above the per-iteration work.
            src.period = Duration::from_nanos((src.period.as_nanos() / 8).max(1));
        }
        model
    }

    /// Returns the node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_node.max(1)
    }

    /// Stretches a busy interval starting at `start` with nominal duration
    /// `busy` by the interference the node of `rank` experiences.
    ///
    /// The computation is applied twice so interference landing inside the
    /// stretched portion is also (approximately) accounted for.
    pub fn stretch(&self, rank: u32, start: Time, busy: Duration) -> Duration {
        if self.sources.is_empty() || busy.is_zero() {
            return busy;
        }
        let node = self.node_of(rank);
        let first: Duration = self
            .sources
            .iter()
            .map(|s| s.interference_in(node, start, busy))
            .sum();
        let extended = busy + first;
        let second: Duration = self
            .sources
            .iter()
            .map(|s| s.interference_in(node, start, extended))
            .sum();
        busy + second
    }

    /// Total interference injected per second of busy time, as a fraction.
    /// Useful for sanity checks and reporting.
    pub fn overhead_fraction(&self) -> f64 {
        self.sources
            .iter()
            .map(|s| {
                if s.period.is_zero() {
                    0.0
                } else {
                    s.duration.as_f64() / s.period.as_f64()
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_model_changes_nothing() {
        let m = NoiseModel::silent();
        let busy = Duration::from_millis(1);
        assert_eq!(m.stretch(0, Time::ZERO, busy), busy);
    }

    #[test]
    fn single_source_counts_occurrences() {
        let src = NoiseSource::new(
            Duration::from_micros(100),
            Duration::from_micros(10),
            Duration::ZERO,
        );
        // Busy for 1ms starting at 0: occurrences at 0, 100us, ..., 900us = 10.
        let hit = src.interference_in(0, Time::ZERO, Duration::from_millis(1));
        assert_eq!(hit.as_nanos(), 10 * 10_000);
        // A window that contains no occurrence.
        let miss = src.interference_in(0, Time::from_micros(1), Duration::from_micros(50));
        assert_eq!(miss, Duration::ZERO);
    }

    #[test]
    fn offsets_differ_per_node() {
        let src = NoiseSource::new(
            Duration::from_micros(100),
            Duration::from_micros(10),
            Duration::from_micros(50),
        );
        // Node 0 sees an occurrence at t=0; node 1 is offset by 50us.
        let n0 = src.interference_in(0, Time::ZERO, Duration::from_micros(40));
        let n1 = src.interference_in(1, Time::ZERO, Duration::from_micros(40));
        assert_eq!(n0.as_nanos(), 10_000);
        assert_eq!(n1, Duration::ZERO);
    }

    #[test]
    fn stretch_grows_with_noise_scale() {
        let m32 = NoiseModel::asci_q_32();
        let m1024 = NoiseModel::asci_q_1024();
        let busy = Duration::from_millis(50);
        let s32 = m32.stretch(3, Time::from_millis(1), busy);
        let s1024 = m1024.stretch(3, Time::from_millis(1), busy);
        assert!(s32 >= busy);
        assert!(
            s1024 > s32,
            "1024-process interference must stretch more than 32-node interference"
        );
        assert!(m1024.overhead_fraction() > m32.overhead_fraction());
    }

    #[test]
    fn stretch_is_monotone_in_busy_time() {
        let m = NoiseModel::asci_q_32();
        let short = m.stretch(0, Time::ZERO, Duration::from_millis(1));
        let long = m.stretch(0, Time::ZERO, Duration::from_millis(10));
        assert!(long >= short);
    }

    #[test]
    fn zero_period_source_is_ignored() {
        let m = NoiseModel::new(vec![NoiseSource::new(
            Duration::ZERO,
            Duration::from_micros(10),
            Duration::ZERO,
        )]);
        assert_eq!(
            m.stretch(0, Time::ZERO, Duration::from_millis(1)),
            Duration::from_millis(1)
        );
        assert_eq!(m.overhead_fraction(), 0.0);
    }

    #[test]
    fn node_mapping_respects_ranks_per_node() {
        let mut m = NoiseModel::asci_q_32();
        m.ranks_per_node = 4;
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(3), 0);
        assert_eq!(m.node_of(4), 1);
        assert_eq!(m.node_of(31), 7);
    }
}
