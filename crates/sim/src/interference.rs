//! Irregular-behaviour benchmarks: system interference.
//!
//! The paper's second benchmark family reproduces the ASCI Q system-noise
//! study of Petrini et al.: every iteration performs about 1 ms of work that
//! is identical across ranks and iterations, followed by a communication
//! step; the *only* performance problem comes from periodic operating-system
//! interference that delays individual ranks before the communication step.
//!
//! Two interference scales are simulated on 32 ranks: the interruptions a
//! 32-node machine injects (`_32`) and the aggregate interruptions a
//! 1024-process run would experience (`_1024`).  Five communication
//! patterns are exercised: N→1 (`MPI_Gather`), 1→N (`MPI_Bcast`), N→N
//! (`MPI_Barrier`), and the two 1→1 variants (receiver-blocked `1to1r`, and
//! sender-blocked `1to1s`).

use trace_model::{AppTrace, CollectiveOp, Duration};

use crate::ats::{finalize_phase, init_phase};
use crate::cluster::{Cluster, P2pMode};
use crate::noise::NoiseModel;

/// Which communication pattern closes each iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// N→1: `MPI_Gather` to rank 0.
    NTo1,
    /// 1→N: `MPI_Bcast` from rank 0.
    OneToN,
    /// N→N: `MPI_Barrier`.
    NToN,
    /// 1→1 with a blocking receive (receiver blocked by a late sender).
    OneToOneRecvBlocked,
    /// 1→1 with a synchronous send (sender blocked by a late receiver).
    OneToOneSendBlocked,
}

impl Pattern {
    /// Short name used in benchmark names (`Nto1`, `1toN`, ...).
    pub fn short_name(self) -> &'static str {
        match self {
            Pattern::NTo1 => "Nto1",
            Pattern::OneToN => "1toN",
            Pattern::NToN => "NtoN",
            Pattern::OneToOneRecvBlocked => "1to1r",
            Pattern::OneToOneSendBlocked => "1to1s",
        }
    }

    /// All patterns, in the order the paper lists them.
    pub const ALL: [Pattern; 5] = [
        Pattern::NTo1,
        Pattern::NToN,
        Pattern::OneToN,
        Pattern::OneToOneRecvBlocked,
        Pattern::OneToOneSendBlocked,
    ];
}

/// Interference scale: how much system noise is injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterferenceScale {
    /// Noise of a 32-node run.
    Nodes32,
    /// Aggregate noise of a 1024-process run, simulated on 32 ranks.
    Procs1024,
}

impl InterferenceScale {
    /// Suffix used in benchmark names (`_32` / `_1024`).
    pub fn suffix(self) -> &'static str {
        match self {
            InterferenceScale::Nodes32 => "32",
            InterferenceScale::Procs1024 => "1024",
        }
    }

    /// The noise model for this scale.
    pub fn noise(self) -> NoiseModel {
        match self {
            InterferenceScale::Nodes32 => NoiseModel::asci_q_32(),
            InterferenceScale::Procs1024 => NoiseModel::asci_q_1024(),
        }
    }
}

/// Parameters for the interference benchmarks.
#[derive(Clone, Copy, Debug)]
pub struct InterferenceParams {
    /// Number of ranks (the paper uses 32).
    pub ranks: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Nominal per-iteration work (about 1 ms in the paper).
    pub work: Duration,
    /// Multiplicative jitter on the work.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InterferenceParams {
    fn default() -> Self {
        InterferenceParams {
            ranks: 32,
            iterations: 200,
            work: Duration::from_millis(1),
            jitter: 0.01,
            seed: 0xa5c1,
        }
    }
}

impl InterferenceParams {
    /// Paper-scale parameters (32 ranks, 200 iterations).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced parameters for fast unit tests.
    pub fn small() -> Self {
        InterferenceParams {
            ranks: 8,
            iterations: 20,
            ..Self::default()
        }
    }
}

/// Generates one interference benchmark for the given communication pattern
/// and interference scale, e.g. `interference(Pattern::NTo1,
/// InterferenceScale::Procs1024, &params)` is the paper's `Nto1_1024`.
pub fn interference(
    pattern: Pattern,
    scale: InterferenceScale,
    params: &InterferenceParams,
) -> AppTrace {
    let name = format!("{}_{}", pattern.short_name(), scale.suffix());
    let mut c = Cluster::new(name, params.ranks, params.seed).with_noise(scale.noise());
    init_phase(&mut c, params.ranks);
    let ctx = c.context("main.1");
    for _ in 0..params.iterations {
        c.begin_segment_all(ctx);
        for rank in 0..params.ranks {
            c.compute_jittered(rank, "do_work", params.work, params.jitter);
        }
        match pattern {
            Pattern::NTo1 => c.collective(CollectiveOp::Gather, 0, 1024),
            Pattern::OneToN => c.collective(CollectiveOp::Bcast, 0, 1024),
            Pattern::NToN => c.collective(CollectiveOp::Barrier, 0, 0),
            Pattern::OneToOneRecvBlocked | Pattern::OneToOneSendBlocked => {
                let mode = if pattern == Pattern::OneToOneRecvBlocked {
                    P2pMode::StandardSend
                } else {
                    P2pMode::SynchronousSend
                };
                for pair in 0..params.ranks / 2 {
                    c.point_to_point(2 * pair, 2 * pair + 1, 17, 32_768, mode);
                }
            }
        }
        c.end_segment_all(ctx);
    }
    finalize_phase(&mut c, params.ranks);
    c.finish()
}

/// Generates all ten interference benchmarks of the paper (five patterns ×
/// two scales) with the given parameters.
pub fn all_interference(params: &InterferenceParams) -> Vec<AppTrace> {
    let mut out = Vec::with_capacity(10);
    for scale in [InterferenceScale::Nodes32, InterferenceScale::Procs1024] {
        for pattern in Pattern::ALL {
            out.push(interference(pattern, scale, params));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::Time;

    fn params() -> InterferenceParams {
        InterferenceParams::small()
    }

    #[test]
    fn names_match_paper_convention() {
        let p = params();
        let app = interference(
            Pattern::OneToOneRecvBlocked,
            InterferenceScale::Procs1024,
            &p,
        );
        assert_eq!(app.name, "1to1r_1024");
        let app = interference(Pattern::NTo1, InterferenceScale::Nodes32, &p);
        assert_eq!(app.name, "Nto1_32");
    }

    #[test]
    fn all_patterns_produce_well_formed_traces() {
        let p = params();
        for app in all_interference(&p) {
            assert!(app.is_well_formed(), "{} malformed", app.name);
            assert_eq!(app.rank_count(), p.ranks);
            for rt in &app.ranks {
                assert_eq!(rt.segment_instance_count(), p.iterations + 2);
            }
        }
    }

    #[test]
    fn heavier_interference_runs_longer() {
        let p = params();
        let light = interference(Pattern::NToN, InterferenceScale::Nodes32, &p);
        let heavy = interference(Pattern::NToN, InterferenceScale::Procs1024, &p);
        assert!(
            heavy.end_time() > light.end_time(),
            "1024-scale noise must stretch the run ({} vs {})",
            heavy.end_time(),
            light.end_time()
        );
    }

    #[test]
    fn interference_creates_iteration_to_iteration_variation() {
        // Without noise all iterations would be nearly identical; with noise
        // the per-iteration barrier wait must vary noticeably.
        let p = params();
        let app = interference(Pattern::NToN, InterferenceScale::Procs1024, &p);
        let barrier = app.regions.lookup("MPI_Barrier").unwrap();
        let waits: Vec<f64> = app.ranks[0]
            .events()
            .filter(|e| e.region == barrier)
            .map(|e| e.wait.as_f64())
            .collect();
        assert!(waits.len() >= p.iterations);
        let max = waits.iter().copied().fold(0.0f64, f64::max);
        let min = waits.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max > 2.0 * (min + 1.0),
            "interference should make some iterations wait much longer (min {min}, max {max})"
        );
    }

    #[test]
    fn nominal_work_is_balanced_across_ranks() {
        // The only imbalance should come from interference.  Undisturbed
        // iterations exist for every rank, so the *minimum* per-iteration
        // do_work duration must be essentially the same everywhere (the
        // nominal 1 ms ± jitter), even though totals differ due to noise.
        let p = params();
        let app = interference(Pattern::NTo1, InterferenceScale::Nodes32, &p);
        let work = app.regions.lookup("do_work").unwrap();
        let mins: Vec<Time> = app
            .ranks
            .iter()
            .map(|rt| {
                rt.events()
                    .filter(|e| e.region == work)
                    .map(|e| e.duration())
                    .min()
                    .unwrap()
            })
            .collect();
        let max = mins.iter().max().unwrap().as_f64();
        let min = mins.iter().min().unwrap().as_f64();
        assert!(
            max / min < 1.05,
            "nominal per-iteration work should match across ranks ({max} vs {min})"
        );
    }
}
