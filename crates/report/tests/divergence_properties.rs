//! Property tests for the per-rank divergence scorer: across randomly
//! sized runs with realistic per-rank jitter, an unperturbed run must
//! never flag anyone, and a run where exactly one rank is slowed down by
//! a large factor must flag exactly that rank.

use proptest::prelude::*;
use trace_model::{
    ContextId, ContextTable, Event, Rank, ReducedAppTrace, ReducedRankTrace, RegionId, RegionTable,
    Segment, SegmentExec, StoredSegment, Time,
};
use trace_reduce::{Method, MethodConfig};
use trace_report::divergence::analyze;

const DIVERGENCE_THRESHOLD: f64 = 0.25;

fn segment(context: ContextId, base_ns: u64, factor: f64) -> Segment {
    let duration = ((base_ns as f64) * factor).round().max(1.0) as u64;
    Segment {
        context,
        start: Time::ZERO,
        end: Time::from_nanos(duration),
        events: vec![Event::compute(
            RegionId(0),
            Time::ZERO,
            Time::from_nanos((duration * 2) / 5),
        )],
    }
}

/// One rank per entry in `factors`; every rank executes the same two
/// structural segment keys (`main`, `main.loop`) with its timings scaled
/// by its factor, which is exactly the SPMD shape the scorer targets.
fn synthetic(factors: &[f64]) -> ReducedAppTrace {
    let mut contexts = ContextTable::new();
    let main = contexts.intern("main");
    let inner = contexts.intern("main.loop");
    let mut regions = RegionTable::new();
    regions.intern("compute");
    let ranks = factors
        .iter()
        .enumerate()
        .map(|(i, &factor)| ReducedRankTrace {
            rank: Rank(i as u32),
            stored: vec![
                StoredSegment {
                    id: 0,
                    segment: segment(main, 1_000_000, factor),
                    represented: 2,
                },
                StoredSegment {
                    id: 1,
                    segment: segment(inner, 250_000, factor),
                    represented: 1,
                },
            ],
            execs: vec![
                SegmentExec {
                    segment: 0,
                    start: Time::ZERO,
                },
                SegmentExec {
                    segment: 1,
                    start: Time::from_nanos(2_000_000),
                },
            ],
        })
        .collect();
    ReducedAppTrace {
        name: "property".to_string(),
        regions,
        contexts,
        ranks,
    }
}

fn config() -> MethodConfig {
    MethodConfig::with_default_threshold(Method::RelDiff)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-rank jitter of up to ±2% is normal SPMD noise and must stay far
    /// below the flagging threshold for every rank.
    #[test]
    fn unperturbed_runs_flag_nobody(
        jitters in prop::collection::vec(0.98f64..1.02, 3..9),
    ) {
        let reduced = synthetic(&jitters);
        let report = analyze(&reduced, &config(), DIVERGENCE_THRESHOLD);
        prop_assert_eq!(report.shared_keys, 2);
        prop_assert!(!report.any_flagged(), "flagged: {:?}", report.divergent_ranks());
        prop_assert!(report.ranks.iter().all(|r| r.max_score < DIVERGENCE_THRESHOLD));
    }

    /// Slowing one rank down by 4–16x on top of the same jitter must flag
    /// exactly that rank, with the worst score attributed to a real context.
    #[test]
    fn the_perturbed_rank_and_only_it_is_flagged(
        jitters in prop::collection::vec(0.98f64..1.02, 3..9),
        victim_seed in 0usize..64,
        slowdown in 4.0f64..16.0,
    ) {
        let victim = victim_seed % jitters.len();
        let mut factors = jitters;
        if let Some(f) = factors.get_mut(victim) {
            *f *= slowdown;
        }
        let reduced = synthetic(&factors);
        let report = analyze(&reduced, &config(), DIVERGENCE_THRESHOLD);
        prop_assert_eq!(report.divergent_ranks(), vec![victim as u32]);
        let row = report.ranks.get(victim).expect("row per rank");
        prop_assert!(row.flagged);
        prop_assert!(row.max_score > DIVERGENCE_THRESHOLD);
        prop_assert!(row.worst_context.is_some());
        // An 8x+ slowdown also fails the relDiff kernel itself (relative
        // difference >= 0.875 against the 0.8 default threshold).
        if slowdown >= 8.5 {
            prop_assert!(row.kernel_mismatches > 0);
        }
    }
}
