//! The report sinks promise byte-identical output: across repeated runs
//! on the same input, and across every reduction driver (sequential,
//! parallel, streaming, sharded-streaming) — the drivers produce equal
//! reduced traces, and the sinks must not reintroduce nondeterminism on
//! top of them.

use std::io::Cursor;

use trace_reduce::{reduce_app_parallel, Method, MethodConfig, Reducer};
use trace_report::{build_model, render_chrome_trace, render_html, render_text, ReportOptions};
use trace_sim::{SizePreset, Workload, WorkloadKind};
use trace_stream::{reduce_stream, reduce_stream_sharded};

fn options() -> ReportOptions {
    ReportOptions {
        method: MethodConfig::with_default_threshold(Method::RelDiff),
        ..ReportOptions::default()
    }
}

#[test]
fn sinks_are_byte_identical_across_repeat_runs() {
    let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let reduced = Reducer::new(config).reduce_app(&app);

    let first = build_model(&reduced, Some(&app), None, &options());
    let second = build_model(&reduced, Some(&app), None, &options());
    assert_eq!(render_text(&first), render_text(&second));
    assert_eq!(render_html(&first), render_html(&second));
    assert_eq!(render_chrome_trace(&reduced), render_chrome_trace(&reduced));
}

#[test]
fn sinks_are_byte_identical_across_all_four_drivers() {
    let app = Workload::new(WorkloadKind::DynLoadBalance, SizePreset::Tiny).generate();
    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let text = trace_format::write_app_trace(&app);

    let sequential = Reducer::new(config).reduce_app(&app);
    let parallel = reduce_app_parallel(&Reducer::new(config), &app, 3);
    let streamed = reduce_stream(config, text.as_bytes())
        .expect("stream reduce")
        .reduced;
    let sharded = reduce_stream_sharded(config, 3, |_| Ok(Cursor::new(text.clone().into_bytes())))
        .expect("sharded reduce")
        .reduced;

    let drivers = [
        ("sequential", &sequential),
        ("parallel", &parallel),
        ("streaming", &streamed),
        ("sharded", &sharded),
    ];
    let reference_model = build_model(&sequential, None, None, &options());
    let reference = (
        render_text(&reference_model),
        render_html(&reference_model),
        render_chrome_trace(&sequential),
    );
    assert!(
        reference.1.starts_with("<!DOCTYPE html>"),
        "html preamble missing"
    );
    for (name, reduced) in drivers {
        let model = build_model(reduced, None, None, &options());
        assert_eq!(render_text(&model), reference.0, "{name} text drifted");
        assert_eq!(render_html(&model), reference.1, "{name} html drifted");
        assert_eq!(
            render_chrome_trace(reduced),
            reference.2,
            "{name} chrome trace drifted"
        );
    }
}

#[test]
fn chrome_export_round_trips_through_the_shared_reader() {
    let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let reduced = Reducer::new(config).reduce_app(&app);

    let rendered = render_chrome_trace(&reduced);
    let events = trace_obs::chrome::parse(&rendered).expect("valid chrome document");
    assert_eq!(events.len(), reduced.total_execs());
    assert_eq!(trace_obs::chrome::render(&events), rendered);
}

#[test]
fn html_is_self_contained_and_escapes_the_json_island() {
    let app = Workload::new(WorkloadKind::LateSender, SizePreset::Tiny).generate();
    let config = MethodConfig::with_default_threshold(Method::RelDiff);
    let reduced = Reducer::new(config).reduce_app(&app);
    let model = build_model(&reduced, Some(&app), None, &options());
    let html = render_html(&model);

    assert!(!html.contains("http://") && !html.contains("https://"));
    assert!(!html.contains("src="), "no external scripts or images");
    assert!(html.contains("id=\"report-data\""));

    // The JSON island parses with the canonical reader after undoing the
    // one embedding escape (`<` is emitted as < so `</script>` can
    // never appear inside the island).
    let start = html.find("id=\"report-data\">").expect("island") + "id=\"report-data\">".len();
    let end = html[start..].find("</script>").expect("island end") + start;
    let island = &html[start..end];
    assert!(!island.contains('<'));
    let parsed = trace_obs::json::parse(island).expect("island is canonical JSON");
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some("trace-report")
    );
    assert_eq!(
        parsed.get("ranks").and_then(|v| v.as_u64()),
        Some(reduced.rank_count() as u64)
    );
}
