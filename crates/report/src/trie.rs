//! Region/callpath trie: where the reduced trace says time went.
//!
//! Contexts in this workspace are dotted call paths (`main`, `main.2`,
//! `main.2.1`, …; see [`trace_model::ContextTable::parent_name`]).  The
//! trie splits every executed representative's context on `.` and
//! accumulates, along the path, the time the execution log attributes to
//! that subtree — the tlparse-style "stack trie" view of a run, but built
//! from the reduced form alone: each [`trace_model::SegmentExec`] entry
//! contributes its representative's duration, so a representative standing
//! for a thousand executions is counted a thousand times, exactly as the
//! reconstruction would replay it.
//!
//! At the node where a segment actually executed, per-region rows record
//! how the segment's events split that time between traced regions.  Wait
//! time per region comes from the severity metrics of
//! [`fn@trace_analysis::diagnose`] run on the reconstructed trace: the
//! diagnosis is region-keyed, so each node's share is attributed
//! proportionally to the node's fraction of that region's total time.

use std::collections::BTreeMap;

use trace_analysis::Diagnosis;
use trace_model::ReducedAppTrace;

/// Per-region accumulation at one exact trie node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionStat {
    /// Time inside this region at this node, in nanoseconds.
    pub time_ns: u64,
    /// Event count (calls) of this region at this node.
    pub calls: u64,
    /// Wait-state time attributed to this node's share of the region, in
    /// milliseconds (proportional split of the diagnosis totals).
    pub wait_ms: f64,
}

/// One node of the region trie.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrieNode {
    /// Child nodes, keyed by path component (deterministic order).
    pub children: BTreeMap<String, TrieNode>,
    /// Time attributed to this subtree, in nanoseconds.
    pub inclusive_ns: u64,
    /// Segment executions that landed exactly at this node.
    pub exec_count: u64,
    /// Time of executions that landed exactly at this node, in nanoseconds.
    pub self_ns: u64,
    /// Per-region split of `self_ns`.
    pub regions: BTreeMap<String, RegionStat>,
}

/// The full trie plus the grand total it was normalised against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionTrie {
    /// Synthetic root; its children are the top-level contexts.
    pub root: TrieNode,
    /// Total attributed time across all ranks, in nanoseconds.
    pub total_ns: u64,
}

impl RegionTrie {
    /// Builds the trie from a reduced trace and the diagnosis of its
    /// reconstruction.
    pub fn build(reduced: &ReducedAppTrace, diagnosis: &Diagnosis) -> RegionTrie {
        let mut root = TrieNode::default();
        for rank in &reduced.ranks {
            for exec in &rank.execs {
                let Some(stored) = rank.stored_segment(exec.segment) else {
                    continue;
                };
                let duration = stored.segment.end.as_nanos();
                let path = reduced.contexts.name_or_unknown(stored.segment.context);
                root.inclusive_ns = root.inclusive_ns.saturating_add(duration);
                let mut node = &mut root;
                for component in path.split('.') {
                    node = node.children.entry(component.to_string()).or_default();
                    node.inclusive_ns = node.inclusive_ns.saturating_add(duration);
                }
                node.exec_count += 1;
                node.self_ns = node.self_ns.saturating_add(duration);
                for event in &stored.segment.events {
                    let region = reduced.regions.name_or_unknown(event.region);
                    let stat = node.regions.entry(region.to_string()).or_default();
                    stat.time_ns = stat.time_ns.saturating_add(event.duration().as_nanos());
                    stat.calls += 1;
                }
            }
        }
        let total_ns = root.inclusive_ns;
        let mut trie = RegionTrie { root, total_ns };
        trie.attribute_waits(diagnosis);
        trie
    }

    /// Splits the diagnosis' per-region wait totals across the trie nodes
    /// proportionally to each node's share of the region's time.
    fn attribute_waits(&mut self, diagnosis: &Diagnosis) {
        let mut wait_by_region: BTreeMap<&str, f64> = BTreeMap::new();
        for entry in diagnosis.entries.values() {
            if entry.metric.is_wait_state() {
                *wait_by_region.entry(entry.region.as_str()).or_default() += entry.total_ms();
            }
        }
        if wait_by_region.is_empty() {
            return;
        }
        let mut time_by_region: BTreeMap<String, u64> = BTreeMap::new();
        sum_region_time(&self.root, &mut time_by_region);
        fn sum_region_time(node: &TrieNode, acc: &mut BTreeMap<String, u64>) {
            for (region, stat) in &node.regions {
                let slot = acc.entry(region.clone()).or_default();
                *slot = slot.saturating_add(stat.time_ns);
            }
            for child in node.children.values() {
                sum_region_time(child, acc);
            }
        }
        fn apply(node: &mut TrieNode, waits: &BTreeMap<&str, f64>, totals: &BTreeMap<String, u64>) {
            for (region, stat) in &mut node.regions {
                let total = totals.get(region).copied().unwrap_or(0);
                if total > 0 {
                    if let Some(wait) = waits.get(region.as_str()) {
                        stat.wait_ms = wait * (stat.time_ns as f64 / total as f64);
                    }
                }
            }
            for child in node.children.values_mut() {
                apply(child, waits, totals);
            }
        }
        apply(&mut self.root, &wait_by_region, &time_by_region);
    }

    /// Renders the trie as an indented text tree, deterministic and
    /// suitable for both the text sink and `<pre>` blocks.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, "", self.total_ns, &mut out);
        out
    }
}

fn render_node(node: &TrieNode, indent: &str, total_ns: u64, out: &mut String) {
    use std::fmt::Write as _;
    for (component, child) in &node.children {
        let percent = if total_ns > 0 {
            child.inclusive_ns as f64 * 100.0 / total_ns as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{indent}{component}  {:.3} ms  ({:.1}%, {} execs)",
            child.inclusive_ns as f64 / 1e6,
            percent,
            child.exec_count
        );
        for (region, stat) in &child.regions {
            let _ = writeln!(
                out,
                "{indent}  [{region}]  {:.3} ms  ({} calls, wait {:.3} ms)",
                stat.time_ns as f64 / 1e6,
                stat.calls,
                stat.wait_ms
            );
        }
        let deeper = format!("{indent}  ");
        render_node(child, &deeper, total_ns, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_analysis::diagnose;
    use trace_model::{
        ContextTable, Event, Rank, ReducedAppTrace, ReducedRankTrace, RegionTable, Segment,
        SegmentExec, StoredSegment, Time,
    };

    fn reduced_fixture() -> ReducedAppTrace {
        let mut contexts = ContextTable::new();
        let top = contexts.intern("main");
        let inner = contexts.intern("main.2");
        let mut regions = RegionTable::new();
        let compute = regions.intern("compute");
        let seg = |ctx, ns| Segment {
            context: ctx,
            start: Time::ZERO,
            end: Time::from_nanos(ns),
            events: vec![Event::compute(compute, Time::ZERO, Time::from_nanos(ns))],
        };
        let rank = ReducedRankTrace {
            rank: Rank(0),
            stored: vec![
                StoredSegment {
                    id: 0,
                    segment: seg(top, 1_000_000),
                    represented: 1,
                },
                StoredSegment {
                    id: 1,
                    segment: seg(inner, 500_000),
                    represented: 2,
                },
            ],
            execs: vec![
                SegmentExec {
                    segment: 0,
                    start: Time::ZERO,
                },
                SegmentExec {
                    segment: 1,
                    start: Time::from_nanos(1_000_000),
                },
                SegmentExec {
                    segment: 1,
                    start: Time::from_nanos(1_500_000),
                },
            ],
        };
        let _ = compute;
        ReducedAppTrace {
            name: "fixture".to_string(),
            regions,
            contexts,
            ranks: vec![rank],
        }
    }

    #[test]
    fn inclusive_time_accumulates_along_the_path() {
        let reduced = reduced_fixture();
        let diagnosis = diagnose(&reduced.reconstruct());
        let trie = RegionTrie::build(&reduced, &diagnosis);
        // Two execs of the 0.5 ms inner segment plus one 1 ms top segment.
        assert_eq!(trie.total_ns, 2_000_000);
        let main = trie.root.children.get("main").expect("main node");
        assert_eq!(main.inclusive_ns, 2_000_000);
        assert_eq!(main.exec_count, 1);
        assert_eq!(main.self_ns, 1_000_000);
        let inner = main.children.get("2").expect("main.2 node");
        assert_eq!(inner.inclusive_ns, 1_000_000);
        assert_eq!(inner.exec_count, 2);
    }

    #[test]
    fn region_rows_split_self_time() {
        let reduced = reduced_fixture();
        let diagnosis = diagnose(&reduced.reconstruct());
        let trie = RegionTrie::build(&reduced, &diagnosis);
        let main = trie.root.children.get("main").expect("main node");
        let stat = main.regions.get("compute").expect("compute row");
        assert_eq!(stat.time_ns, 1_000_000);
        assert_eq!(stat.calls, 1);
    }

    #[test]
    fn render_is_indented_and_deterministic() {
        let reduced = reduced_fixture();
        let diagnosis = diagnose(&reduced.reconstruct());
        let trie = RegionTrie::build(&reduced, &diagnosis);
        let a = trie.render_text();
        let b = trie.render_text();
        assert_eq!(a, b);
        assert!(a.contains("main"));
        assert!(a.contains("[compute]"));
    }
}
