//! Per-rank divergence detection over stored representatives.
//!
//! The reducer stores one representative per matched segment class *per
//! rank*, so in an SPMD run the same [`SegmentKey`] (call context plus
//! event shape) usually appears on every rank with near-identical
//! measurements.  A rank whose representatives drift away from its peers —
//! a slow node, a perturbed network link, an imbalanced domain — is
//! exactly what the paper's perturbation study looks for, and this module
//! surfaces it from the *reduced* trace alone.
//!
//! Scoring works per shared key.  Each participating rank gets a profile:
//! the representation-weighted mean of its representatives' measurement
//! vectors (`[duration, e0.start, e0.end, …]`, the paper's comparison
//! vector).  The cross-rank baseline is the element-wise **median** of the
//! profiles, so with three or more ranks a single outlier cannot drag the
//! baseline toward itself.  A rank's score for the key is the Chebyshev
//! distance from its profile to the baseline, normalised by the largest
//! absolute element of either vector — a scale-free "worst component
//! relative error" in `[0, ~1]` for same-magnitude vectors.  The rank's
//! overall score is the maximum over its shared keys, and ranks whose
//! score exceeds the configured threshold are flagged.
//!
//! Alongside the distance score, each rank's first representative for a
//! key is checked against every peer's via the configured similarity
//! kernel ([`segments_match_cached`]) — the same accept/reject decision
//! the reducer itself makes.  A representative that matches *no* peer
//! counts as a kernel mismatch, tying the report's verdicts to the
//! paper's own match semantics rather than to a new ad-hoc metric.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use trace_model::stats::chebyshev_distance;
use trace_model::{ReducedAppTrace, Segment, SegmentKey};
use trace_reduce::{segments_match_cached, MatchStats, MethodConfig, SegmentFeatures};

/// Divergence verdict for a single rank.
#[derive(Clone, Debug, PartialEq)]
pub struct RankDivergence {
    /// The rank this row describes.
    pub rank: u32,
    /// Number of shared segment keys this rank participated in.
    pub keys_compared: usize,
    /// Worst normalised Chebyshev distance from the cross-rank baseline.
    pub max_score: f64,
    /// Context name of the key behind `max_score`, when any key scored.
    pub worst_context: Option<String>,
    /// Representatives that matched no peer under the similarity kernel.
    pub kernel_mismatches: usize,
    /// True when `max_score` exceeds the configured threshold.
    pub flagged: bool,
}

/// Cross-rank divergence analysis of a reduced trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DivergenceReport {
    /// Label of the similarity method used for kernel verdicts.
    pub method_label: String,
    /// Score threshold above which a rank is flagged.
    pub threshold: f64,
    /// Segment keys present on at least two ranks.
    pub shared_keys: usize,
    /// Per-rank verdicts, ascending by rank.
    pub ranks: Vec<RankDivergence>,
}

impl DivergenceReport {
    /// Ranks whose score exceeded the threshold, ascending.
    pub fn divergent_ranks(&self) -> Vec<u32> {
        self.ranks
            .iter()
            .filter(|r| r.flagged)
            .map(|r| r.rank)
            .collect()
    }

    /// True if any rank was flagged.
    pub fn any_flagged(&self) -> bool {
        self.ranks.iter().any(|r| r.flagged)
    }
}

/// Weighted measurement profile of one rank's representatives for a key.
struct Profile<'a> {
    sum: Vec<f64>,
    weight: f64,
    first: &'a Segment,
}

/// Analyzes cross-rank divergence of `reduced` under `method`, flagging
/// ranks whose score exceeds `threshold`.
pub fn analyze(
    reduced: &ReducedAppTrace,
    method: &MethodConfig,
    threshold: f64,
) -> DivergenceReport {
    let mut by_key: BTreeMap<SegmentKey, BTreeMap<u32, Profile<'_>>> = BTreeMap::new();
    for rank in &reduced.ranks {
        for stored in &rank.stored {
            let vector = stored.segment.measurement_vector();
            let weight = f64::from(stored.represented.max(1));
            let per_rank = by_key.entry(stored.segment.key()).or_default();
            match per_rank.entry(rank.rank.as_u32()) {
                Entry::Occupied(mut occupied) => {
                    let profile = occupied.get_mut();
                    for (acc, value) in profile.sum.iter_mut().zip(&vector) {
                        *acc += value * weight;
                    }
                    profile.weight += weight;
                }
                Entry::Vacant(vacant) => {
                    vacant.insert(Profile {
                        sum: vector.iter().map(|value| value * weight).collect(),
                        weight,
                        first: &stored.segment,
                    });
                }
            }
        }
    }

    let mut rows: BTreeMap<u32, RankDivergence> = reduced
        .ranks
        .iter()
        .map(|rank| {
            let id = rank.rank.as_u32();
            (
                id,
                RankDivergence {
                    rank: id,
                    keys_compared: 0,
                    max_score: 0.0,
                    worst_context: None,
                    kernel_mismatches: 0,
                    flagged: false,
                },
            )
        })
        .collect();

    let mut shared_keys = 0usize;
    let mut stats = MatchStats::default();
    for (key, per_rank) in &by_key {
        if per_rank.len() < 2 {
            continue;
        }
        shared_keys += 1;
        let context = reduced.contexts.name_or_unknown(key.context);

        let profiles: Vec<(u32, Vec<f64>)> = per_rank
            .iter()
            .map(|(rank, profile)| {
                let mean = profile.sum.iter().map(|v| v / profile.weight).collect();
                (*rank, mean)
            })
            .collect();
        let baseline = elementwise_median(&profiles);

        for (rank, profile) in &profiles {
            let scale = profile
                .iter()
                .chain(baseline.iter())
                .fold(0.0_f64, |acc, v| acc.max(v.abs()));
            let distance = chebyshev_distance(profile, &baseline);
            let score = if scale > 0.0 { distance / scale } else { 0.0 };
            if let Some(row) = rows.get_mut(rank) {
                row.keys_compared += 1;
                if score > row.max_score {
                    row.max_score = score;
                    row.worst_context = Some(context.to_string());
                }
            }
        }

        let features: Vec<(u32, SegmentFeatures)> = per_rank
            .iter()
            .map(|(rank, profile)| (*rank, SegmentFeatures::for_config(method, profile.first)))
            .collect();
        for (i, (rank, mine)) in features.iter().enumerate() {
            let matched = features.iter().enumerate().any(|(j, (_, peer))| {
                i != j && segments_match_cached(method, mine, peer, &mut stats)
            });
            if !matched {
                if let Some(row) = rows.get_mut(rank) {
                    row.kernel_mismatches += 1;
                }
            }
        }
    }

    let mut ranks: Vec<RankDivergence> = rows.into_values().collect();
    for row in &mut ranks {
        row.flagged = row.max_score > threshold;
    }
    DivergenceReport {
        method_label: method.label(),
        threshold,
        shared_keys,
        ranks,
    }
}

/// Element-wise median across equal-length profiles (same segment shape,
/// so the reducer guarantees equal measurement-vector lengths).
fn elementwise_median(profiles: &[(u32, Vec<f64>)]) -> Vec<f64> {
    let len = profiles
        .iter()
        .map(|(_, vector)| vector.len())
        .min()
        .unwrap_or(0);
    let mut baseline = Vec::with_capacity(len);
    for i in 0..len {
        let mut column: Vec<f64> = profiles
            .iter()
            .filter_map(|(_, vector)| vector.get(i))
            .copied()
            .collect();
        column.sort_by(|a, b| a.total_cmp(b));
        let n = column.len();
        let median = if n % 2 == 1 {
            column.get(n / 2).copied().unwrap_or(0.0)
        } else {
            let lo = column.get(n / 2 - 1).copied().unwrap_or(0.0);
            let hi = column.get(n / 2).copied().unwrap_or(0.0);
            (lo + hi) / 2.0
        };
        baseline.push(median);
    }
    baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{
        ContextId, ContextTable, Event, Rank, ReducedRankTrace, RegionId, RegionTable, SegmentExec,
        StoredSegment, Time,
    };
    use trace_reduce::Method;

    fn segment(context: ContextId, scale: u64) -> Segment {
        Segment {
            context,
            start: Time::ZERO,
            end: Time::from_nanos(1_000 * scale),
            events: vec![Event::compute(
                RegionId(0),
                Time::ZERO,
                Time::from_nanos(400 * scale),
            )],
        }
    }

    fn synthetic(scales: &[u64]) -> ReducedAppTrace {
        let mut contexts = ContextTable::new();
        let main = contexts.intern("main");
        let mut regions = RegionTable::new();
        regions.intern("compute");
        let ranks = scales
            .iter()
            .enumerate()
            .map(|(i, &scale)| ReducedRankTrace {
                rank: Rank(i as u32),
                stored: vec![StoredSegment {
                    id: 0,
                    segment: segment(main, scale),
                    represented: 3,
                }],
                execs: vec![SegmentExec {
                    segment: 0,
                    start: Time::ZERO,
                }],
            })
            .collect();
        ReducedAppTrace {
            name: "synthetic".to_string(),
            regions,
            contexts,
            ranks,
        }
    }

    #[test]
    fn identical_ranks_report_no_divergence() {
        let reduced = synthetic(&[1, 1, 1, 1]);
        let report = analyze(
            &reduced,
            &MethodConfig::with_default_threshold(Method::RelDiff),
            0.25,
        );
        assert!(!report.any_flagged());
        assert!(report.ranks.iter().all(|r| r.max_score == 0.0));
        assert_eq!(report.shared_keys, 1);
    }

    #[test]
    fn perturbed_rank_is_flagged() {
        // relDiff's default threshold is 0.8, so an 8x slowdown (relative
        // difference 0.875) fails the kernel as well as the score.
        let reduced = synthetic(&[1, 1, 8, 1]);
        let report = analyze(
            &reduced,
            &MethodConfig::with_default_threshold(Method::RelDiff),
            0.25,
        );
        assert_eq!(report.divergent_ranks(), vec![2]);
        let row = &report.ranks[2];
        assert!(row.max_score > 0.25);
        assert!(row.kernel_mismatches > 0);
        assert_eq!(row.worst_context.as_deref(), Some("main"));
    }

    #[test]
    fn single_rank_traces_have_no_shared_keys() {
        let reduced = synthetic(&[1]);
        let report = analyze(
            &reduced,
            &MethodConfig::with_default_threshold(Method::RelDiff),
            0.25,
        );
        assert_eq!(report.shared_keys, 0);
        assert!(!report.any_flagged());
    }
}
