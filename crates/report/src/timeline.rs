//! chrome://tracing export of the *reduced* timeline.
//!
//! Each [`trace_model::SegmentExec`] entry becomes one complete (`"ph":
//! "X"`) event: the slice starts at the execution's recorded start time
//! and lasts the representative's duration — the exact approximation the
//! reconstruction replays, visualised.  Ranks map to chrome's `pid` axis
//! so chrome://tracing groups the timeline per rank.
//!
//! Serialisation goes through [`trace_obs::chrome::render`], the same
//! writer the pipeline-span export uses, so the two chrome exports of
//! this workspace cannot drift apart in format.

use trace_model::ReducedAppTrace;
use trace_obs::chrome::{self, ChromeEvent};

/// Builds the reduced-timeline events, ordered by rank then execution log.
pub fn reduced_timeline(reduced: &ReducedAppTrace) -> Vec<ChromeEvent> {
    let mut events = Vec::with_capacity(reduced.total_execs());
    for rank in &reduced.ranks {
        for exec in &rank.execs {
            let Some(stored) = rank.stored_segment(exec.segment) else {
                continue;
            };
            events.push(ChromeEvent {
                name: reduced
                    .contexts
                    .name_or_unknown(stored.segment.context)
                    .to_string(),
                cat: "reduced".to_string(),
                pid: u64::from(rank.rank.as_u32()),
                tid: 0,
                ts_ns: exec.start.as_nanos(),
                dur_ns: stored.segment.end.as_nanos(),
            });
        }
    }
    events
}

/// Renders the reduced timeline as a chrome://tracing JSON document.
pub fn render_chrome_trace(reduced: &ReducedAppTrace) -> String {
    chrome::render(&reduced_timeline(reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{
        ContextTable, Event, Rank, ReducedRankTrace, RegionId, RegionTable, Segment, SegmentExec,
        StoredSegment, Time,
    };

    fn fixture() -> ReducedAppTrace {
        let mut contexts = ContextTable::new();
        let main = contexts.intern("main");
        let mut regions = RegionTable::new();
        regions.intern("compute");
        let rank = ReducedRankTrace {
            rank: Rank(3),
            stored: vec![StoredSegment {
                id: 0,
                segment: Segment {
                    context: main,
                    start: Time::ZERO,
                    end: Time::from_nanos(2_500),
                    events: vec![Event::compute(
                        RegionId(0),
                        Time::ZERO,
                        Time::from_nanos(2_500),
                    )],
                },
                represented: 2,
            }],
            execs: vec![
                SegmentExec {
                    segment: 0,
                    start: Time::from_nanos(1_000),
                },
                SegmentExec {
                    segment: 0,
                    start: Time::from_nanos(5_000),
                },
            ],
        };
        ReducedAppTrace {
            name: "fixture".to_string(),
            regions,
            contexts,
            ranks: vec![rank],
        }
    }

    #[test]
    fn one_event_per_execution_with_rank_as_pid() {
        let events = reduced_timeline(&fixture());
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.pid == 3 && e.cat == "reduced"));
        assert_eq!(events[0].ts_ns, 1_000);
        assert_eq!(events[1].ts_ns, 5_000);
        assert!(events.iter().all(|e| e.dur_ns == 2_500));
    }

    #[test]
    fn chrome_document_round_trips_through_the_shared_reader() {
        let rendered = render_chrome_trace(&fixture());
        let parsed = chrome::parse(&rendered).expect("valid chrome trace");
        assert_eq!(parsed, reduced_timeline(&fixture()));
    }
}
