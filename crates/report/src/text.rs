//! Text sink: the terminal rendering of a [`ReportModel`].
//!
//! Tables go through [`trace_eval::report::Table`] so the report lines up
//! with the evaluation harness output, and the severity section embeds
//! [`trace_analysis::Diagnosis::render_chart`]'s ASCII chart verbatim —
//! the same chart `trace-tools analyze` prints, now attached to every
//! report instead of living CLI-only.

use std::fmt::Write as _;

use trace_eval::report::{fmt_f64, Table};

use crate::model::ReportModel;

/// Renders the model as a deterministic plain-text report.
pub fn render_text(model: &ReportModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== trace report: {} ==", model.trace_name);
    let _ = writeln!(
        out,
        "ranks: {}  stored: {}  execs: {}  degree of matching: {}",
        model.rank_count,
        model.total_stored,
        model.total_execs,
        fmt_f64(model.degree_of_matching)
    );
    if let Some(compression) = &model.compression {
        let _ = writeln!(
            out,
            "file size: {}% of full trace ({} events, {} ranks)",
            fmt_f64(compression.file_size_percent),
            compression.full_events,
            compression.full_ranks
        );
    }
    out.push('\n');

    let mut ranks = Table::new(
        "per-rank reduction",
        &["rank", "stored", "execs", "matches", "degree"],
    );
    for rank in &model.ranks {
        ranks.push_row(vec![
            rank.rank.to_string(),
            rank.stored.to_string(),
            rank.execs.to_string(),
            rank.matches.to_string(),
            fmt_f64(rank.degree_of_matching),
        ]);
    }
    out.push_str(&ranks.render());
    out.push('\n');

    let divergence = &model.divergence;
    let _ = writeln!(
        out,
        "divergence: method {}  threshold {}  shared keys {}",
        divergence.method_label,
        fmt_f64(divergence.threshold),
        divergence.shared_keys
    );
    let mut table = Table::new(
        "per-rank divergence",
        &[
            "rank",
            "keys",
            "max score",
            "worst context",
            "kernel misses",
            "flagged",
        ],
    );
    for row in &divergence.ranks {
        table.push_row(vec![
            row.rank.to_string(),
            row.keys_compared.to_string(),
            fmt_f64(row.max_score),
            row.worst_context.clone().unwrap_or_else(|| "-".to_string()),
            row.kernel_mismatches.to_string(),
            if row.flagged { "YES" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let flagged = divergence.divergent_ranks();
    if flagged.is_empty() {
        let _ = writeln!(out, "divergent ranks: none");
    } else {
        let list: Vec<String> = flagged.iter().map(u32::to_string).collect();
        let _ = writeln!(out, "divergent ranks: {}", list.join(", "));
    }
    out.push('\n');

    let _ = writeln!(out, "-- region trie (where time went) --");
    out.push_str(&model.trie.render_text());
    out.push('\n');

    let _ = writeln!(out, "-- severity chart (reconstructed trace) --");
    out.push_str(&model.severity_chart);
    if !model.severity_chart.ends_with('\n') {
        out.push('\n');
    }
    if model.significant_waits.is_empty() {
        let _ = writeln!(out, "significant wait states: none");
    } else {
        for wait in &model.significant_waits {
            let _ = writeln!(
                out,
                "significant wait: {} in {} ({} ms)",
                wait.metric,
                wait.region,
                fmt_f64(wait.total_ms)
            );
        }
    }

    if let Some(pipeline) = &model.pipeline {
        out.push('\n');
        let mut stages = Table::new("pipeline stages", &["stage", "spans", "total ms", "max ms"]);
        for stage in &pipeline.stages {
            stages.push_row(vec![
                stage.stage.to_string(),
                stage.spans.to_string(),
                fmt_f64(stage.total_ns as f64 / 1e6),
                fmt_f64(stage.max_ns as f64 / 1e6),
            ]);
        }
        out.push_str(&stages.render());
        let mut counters = Table::new("pipeline counters", &["counter", "value"]);
        for (name, value) in &pipeline.counters {
            counters.push_row(vec![name.clone(), value.to_string()]);
        }
        out.push_str(&counters.render());
    }
    out
}
