//! The analysis model every sink renders from.
//!
//! [`build_model`] takes the reduced trace (always), plus optionally the
//! original full trace (for compression/fidelity numbers that need both
//! sides) and a [`trace_obs::RunReport`] from the run that produced the
//! reduction (for pipeline metrics).  All derived analysis — divergence,
//! region trie, severity diagnosis of the reconstruction — happens here
//! once, so the HTML, chrome and text sinks cannot disagree about the
//! numbers they show.

use trace_analysis::diagnose;
use trace_eval::file_size_percent;
use trace_model::{AppTrace, ReducedAppTrace};
use trace_obs::{RunReport, Stage};
use trace_reduce::{Method, MethodConfig};

use crate::divergence::{self, DivergenceReport};
use crate::trie::RegionTrie;

/// Tunables for model construction.
#[derive(Clone, Debug)]
pub struct ReportOptions {
    /// Similarity method used for cross-rank kernel verdicts.
    pub method: MethodConfig,
    /// Divergence score above which a rank is flagged.
    pub divergence_threshold: f64,
    /// Fraction of total time a wait state must exceed to be listed as
    /// significant (passed to `Diagnosis::significant_wait_states`).
    pub wait_fraction: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            method: MethodConfig::with_default_threshold(Method::RelDiff),
            divergence_threshold: 0.25,
            wait_fraction: 0.05,
        }
    }
}

/// Reduction statistics for one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct RankSummary {
    /// The rank.
    pub rank: u32,
    /// Stored representative segments.
    pub stored: usize,
    /// Segment executions in the log.
    pub execs: usize,
    /// Executions that matched an existing representative.
    pub matches: usize,
    /// Degree of matching (Section 4.3.2).
    pub degree_of_matching: f64,
}

/// Numbers that need the original trace alongside the reduction.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressionSummary {
    /// Reduced trace size as a percentage of the full trace (the paper's
    /// file-size criterion).
    pub file_size_percent: f64,
    /// Events in the full trace.
    pub full_events: usize,
    /// Ranks in the full trace.
    pub full_ranks: usize,
}

/// Per-stage pipeline timing from a [`RunReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name (`parse`, `match`, …).
    pub stage: &'static str,
    /// Number of recorded spans.
    pub spans: u64,
    /// Total time across spans, in nanoseconds.
    pub total_ns: u64,
    /// Longest single span, in nanoseconds.
    pub max_ns: u64,
}

/// Pipeline metrics carried over from the observability layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineSummary {
    /// All counters, in name order.
    pub counters: Vec<(String, u64)>,
    /// Stage timings, in pipeline order; stages with no spans are omitted.
    pub stages: Vec<StageSummary>,
}

/// A significant wait state from the severity diagnosis.
#[derive(Clone, Debug, PartialEq)]
pub struct WaitState {
    /// Metric abbreviation (`LS`, `WB`, …).
    pub metric: &'static str,
    /// Region name.
    pub region: String,
    /// Total time in the state across ranks, in milliseconds.
    pub total_ms: f64,
}

/// Everything the sinks render.
#[derive(Clone, Debug)]
pub struct ReportModel {
    /// Name of the analyzed trace.
    pub trace_name: String,
    /// Label of the similarity method used for divergence verdicts.
    pub method_label: String,
    /// Number of ranks.
    pub rank_count: usize,
    /// Stored representatives across ranks.
    pub total_stored: usize,
    /// Segment executions across ranks.
    pub total_execs: usize,
    /// Application-wide degree of matching.
    pub degree_of_matching: f64,
    /// Per-rank reduction statistics.
    pub ranks: Vec<RankSummary>,
    /// Cross-rank divergence verdicts.
    pub divergence: DivergenceReport,
    /// Region/callpath trie of the reduced timeline.
    pub trie: RegionTrie,
    /// ASCII severity chart of the reconstructed trace
    /// ([`trace_analysis::Diagnosis::render_chart`]).
    pub severity_chart: String,
    /// Wait states above the significance cutoff, worst first.
    pub significant_waits: Vec<WaitState>,
    /// Present when the original trace was supplied.
    pub compression: Option<CompressionSummary>,
    /// Present when a pipeline run report was supplied.
    pub pipeline: Option<PipelineSummary>,
}

/// Builds the analysis model for `reduced`.
///
/// `original` enables the compression summary; `run` carries the pipeline
/// metrics of the reduce that produced this trace.
pub fn build_model(
    reduced: &ReducedAppTrace,
    original: Option<&AppTrace>,
    run: Option<&RunReport>,
    options: &ReportOptions,
) -> ReportModel {
    let reconstructed = reduced.reconstruct();
    let diagnosis = diagnose(&reconstructed);
    let significant_waits = diagnosis
        .significant_wait_states(options.wait_fraction)
        .into_iter()
        .map(|entry| WaitState {
            metric: entry.metric.abbreviation(),
            region: entry.region.clone(),
            total_ms: entry.total_ms(),
        })
        .collect();
    let ranks = reduced
        .ranks
        .iter()
        .map(|rank| RankSummary {
            rank: rank.rank.as_u32(),
            stored: rank.stored_count(),
            execs: rank.exec_count(),
            matches: rank.match_count(),
            degree_of_matching: rank.degree_of_matching(),
        })
        .collect();
    ReportModel {
        trace_name: reduced.name.clone(),
        method_label: options.method.label(),
        rank_count: reduced.rank_count(),
        total_stored: reduced.total_stored(),
        total_execs: reduced.total_execs(),
        degree_of_matching: reduced.degree_of_matching(),
        ranks,
        divergence: divergence::analyze(reduced, &options.method, options.divergence_threshold),
        trie: RegionTrie::build(reduced, &diagnosis),
        severity_chart: diagnosis.render_chart(),
        significant_waits,
        compression: original.map(|app| CompressionSummary {
            file_size_percent: file_size_percent(app, reduced),
            full_events: app.total_events(),
            full_ranks: app.rank_count(),
        }),
        pipeline: run.map(pipeline_summary),
    }
}

fn pipeline_summary(run: &RunReport) -> PipelineSummary {
    let counters = run
        .counters
        .iter()
        .map(|(name, value)| (name.clone(), *value))
        .collect();
    let stages = Stage::ALL
        .iter()
        .filter_map(|stage| {
            let snapshot = run.histograms.get(stage.histogram_name())?;
            if snapshot.count == 0 {
                return None;
            }
            Some(StageSummary {
                stage: stage.name(),
                spans: snapshot.count,
                total_ns: snapshot.sum,
                max_ns: snapshot.max,
            })
        })
        .collect();
    PipelineSummary { counters, stages }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_use_the_paper_method() {
        let options = ReportOptions::default();
        assert_eq!(options.method.method, Method::RelDiff);
        assert!(options.divergence_threshold > 0.0);
    }
}
