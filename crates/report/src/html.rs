//! HTML sink: a self-contained static report.
//!
//! One file, no external assets — inline CSS only, no scripts fetched,
//! nothing referenced by URL — so the report can be archived next to the
//! trace it describes and opened offline years later.  Output is
//! deterministic byte-for-byte: every collection rendered is ordered
//! (`BTreeMap` iteration or explicit sorts) and no clock or randomness is
//! consulted.
//!
//! A machine-readable copy of the model is embedded in a
//! `<script type="application/json">` island, serialised through the
//! canonical writer in [`trace_obs::json`] (the same one the pipeline
//! run-report uses).  That writer has no float variant by design — its
//! schema is integers-and-strings — so fractional values are embedded as
//! fixed-format strings via [`trace_eval::report::fmt_f64`].

use trace_eval::report::fmt_f64;
use trace_obs::json::JsonValue;

use crate::model::ReportModel;
use crate::trie::TrieNode;

/// Schema name embedded in the JSON island.
pub const HTML_SCHEMA_NAME: &str = "trace-report";
/// Schema version embedded in the JSON island.
pub const HTML_SCHEMA_VERSION: u64 = 1;

const STYLE: &str = "\
body{font-family:ui-monospace,Menlo,Consolas,monospace;margin:2rem auto;max-width:70rem;\
padding:0 1rem;color:#1a1a2e;background:#fafaf7}\
h1{font-size:1.3rem;border-bottom:2px solid #1a1a2e;padding-bottom:.3rem}\
h2{font-size:1.05rem;margin-top:1.6rem}\
table{border-collapse:collapse;margin:.5rem 0}\
th,td{border:1px solid #b5b5ad;padding:.2rem .55rem;text-align:right}\
th{background:#ecece4;text-align:center}\
td.name{text-align:left}\
tr.flagged td{background:#ffd9d9;font-weight:bold}\
pre{background:#1a1a2e;color:#e8e8df;padding:.7rem;overflow-x:auto;line-height:1.25}\
details{margin-left:1rem;border-left:1px dotted #b5b5ad;padding-left:.5rem}\
summary{cursor:pointer}\
.meta{color:#55555e}\
.regions{color:#55555e;margin:.1rem 0 .1rem 1.2rem;padding:0;list-style:none}";

/// Renders the model as a single self-contained HTML document.
pub fn render_html(model: &ReportModel) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>trace report: ");
    escape_html_into(&model.trace_name, &mut out);
    out.push_str("</title>\n<style>");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n");

    out.push_str("<h1>trace report: ");
    escape_html_into(&model.trace_name, &mut out);
    out.push_str("</h1>\n<p class=\"meta\">method ");
    escape_html_into(&model.method_label, &mut out);
    out.push_str(&format!(
        " &middot; {} ranks &middot; {} stored / {} execs &middot; degree of matching {}</p>\n",
        model.rank_count,
        model.total_stored,
        model.total_execs,
        fmt_f64(model.degree_of_matching)
    ));

    summary_section(model, &mut out);
    divergence_section(model, &mut out);
    trie_section(model, &mut out);
    severity_section(model, &mut out);
    pipeline_section(model, &mut out);

    out.push_str("<script type=\"application/json\" id=\"report-data\">");
    out.push_str(&embedded_json(model));
    out.push_str("</script>\n</body>\n</html>\n");
    out
}

fn summary_section(model: &ReportModel, out: &mut String) {
    out.push_str("<section id=\"summary\">\n<h2>Per-rank reduction</h2>\n<table>\n");
    out.push_str(
        "<tr><th>rank</th><th>stored</th><th>execs</th><th>matches</th><th>degree</th></tr>\n",
    );
    for rank in &model.ranks {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            rank.rank,
            rank.stored,
            rank.execs,
            rank.matches,
            fmt_f64(rank.degree_of_matching)
        ));
    }
    out.push_str("</table>\n");
    if let Some(compression) = &model.compression {
        out.push_str(&format!(
            "<p>file size: {}% of the full trace ({} events across {} ranks).</p>\n",
            fmt_f64(compression.file_size_percent),
            compression.full_events,
            compression.full_ranks
        ));
    }
    out.push_str("</section>\n");
}

fn divergence_section(model: &ReportModel, out: &mut String) {
    let divergence = &model.divergence;
    out.push_str("<section id=\"divergence\">\n<h2>Per-rank divergence</h2>\n");
    out.push_str(&format!(
        "<p class=\"meta\">method {} &middot; threshold {} &middot; {} shared segment keys</p>\n",
        escape_html(&divergence.method_label),
        fmt_f64(divergence.threshold),
        divergence.shared_keys
    ));
    out.push_str("<table>\n<tr><th>rank</th><th>keys</th><th>max score</th>");
    out.push_str("<th>worst context</th><th>kernel misses</th><th>flagged</th></tr>\n");
    for row in &divergence.ranks {
        let class = if row.flagged {
            " class=\"flagged\""
        } else {
            ""
        };
        out.push_str(&format!(
            "<tr{}><td>{}</td><td>{}</td><td>{}</td><td class=\"name\">{}</td><td>{}</td><td>{}</td></tr>\n",
            class,
            row.rank,
            row.keys_compared,
            fmt_f64(row.max_score),
            escape_html(row.worst_context.as_deref().unwrap_or("-")),
            row.kernel_mismatches,
            if row.flagged { "YES" } else { "no" }
        ));
    }
    out.push_str("</table>\n");
    let flagged = divergence.divergent_ranks();
    if flagged.is_empty() {
        out.push_str("<p id=\"divergent-ranks\">divergent ranks: none</p>\n");
    } else {
        let list: Vec<String> = flagged.iter().map(u32::to_string).collect();
        out.push_str(&format!(
            "<p id=\"divergent-ranks\">divergent ranks: {}</p>\n",
            list.join(", ")
        ));
    }
    out.push_str("</section>\n");
}

fn trie_section(model: &ReportModel, out: &mut String) {
    out.push_str("<section id=\"trie\">\n<h2>Region trie</h2>\n");
    trie_children(&model.trie.root, model.trie.total_ns, 0, out);
    out.push_str("</section>\n");
}

fn trie_children(node: &TrieNode, total_ns: u64, depth: usize, out: &mut String) {
    for (component, child) in &node.children {
        let percent = if total_ns > 0 {
            child.inclusive_ns as f64 * 100.0 / total_ns as f64
        } else {
            0.0
        };
        let open = if depth < 2 { " open" } else { "" };
        out.push_str(&format!(
            "<details{}><summary>{} &mdash; {} ms ({}%, {} execs)</summary>\n",
            open,
            escape_html(component),
            fmt_f64(child.inclusive_ns as f64 / 1e6),
            fmt_f64(percent),
            child.exec_count
        ));
        if !child.regions.is_empty() {
            out.push_str("<ul class=\"regions\">\n");
            for (region, stat) in &child.regions {
                out.push_str(&format!(
                    "<li>[{}] {} ms, {} calls, wait {} ms</li>\n",
                    escape_html(region),
                    fmt_f64(stat.time_ns as f64 / 1e6),
                    stat.calls,
                    fmt_f64(stat.wait_ms)
                ));
            }
            out.push_str("</ul>\n");
        }
        trie_children(child, total_ns, depth + 1, out);
        out.push_str("</details>\n");
    }
}

fn severity_section(model: &ReportModel, out: &mut String) {
    out.push_str("<section id=\"severity\">\n<h2>Severity chart</h2>\n<pre>");
    escape_html_into(&model.severity_chart, out);
    out.push_str("</pre>\n");
    if model.significant_waits.is_empty() {
        out.push_str("<p>significant wait states: none</p>\n");
    } else {
        out.push_str("<ul>\n");
        for wait in &model.significant_waits {
            out.push_str(&format!(
                "<li>{} in {}: {} ms</li>\n",
                wait.metric,
                escape_html(&wait.region),
                fmt_f64(wait.total_ms)
            ));
        }
        out.push_str("</ul>\n");
    }
    out.push_str("</section>\n");
}

fn pipeline_section(model: &ReportModel, out: &mut String) {
    let Some(pipeline) = &model.pipeline else {
        return;
    };
    out.push_str("<section id=\"pipeline\">\n<h2>Pipeline metrics</h2>\n<table>\n");
    out.push_str("<tr><th>stage</th><th>spans</th><th>total ms</th><th>max ms</th></tr>\n");
    for stage in &pipeline.stages {
        out.push_str(&format!(
            "<tr><td class=\"name\">{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            stage.stage,
            stage.spans,
            fmt_f64(stage.total_ns as f64 / 1e6),
            fmt_f64(stage.max_ns as f64 / 1e6)
        ));
    }
    out.push_str("</table>\n<table>\n<tr><th>counter</th><th>value</th></tr>\n");
    for (name, value) in &pipeline.counters {
        out.push_str(&format!(
            "<tr><td class=\"name\">{}</td><td>{}</td></tr>\n",
            escape_html(name),
            value
        ));
    }
    out.push_str("</table>\n</section>\n");
}

/// Serialises the model through the canonical JSON writer and hardens it
/// for inline embedding (`<` escaped so `</script>` cannot occur).
fn embedded_json(model: &ReportModel) -> String {
    let ranks = model
        .ranks
        .iter()
        .map(|rank| {
            JsonValue::Obj(vec![
                ("rank".to_string(), JsonValue::UInt(u64::from(rank.rank))),
                ("stored".to_string(), JsonValue::UInt(rank.stored as u64)),
                ("execs".to_string(), JsonValue::UInt(rank.execs as u64)),
                ("matches".to_string(), JsonValue::UInt(rank.matches as u64)),
                (
                    "degree".to_string(),
                    JsonValue::Str(fmt_f64(rank.degree_of_matching)),
                ),
            ])
        })
        .collect();
    let divergence_rows = model
        .divergence
        .ranks
        .iter()
        .map(|row| {
            JsonValue::Obj(vec![
                ("rank".to_string(), JsonValue::UInt(u64::from(row.rank))),
                (
                    "keys".to_string(),
                    JsonValue::UInt(row.keys_compared as u64),
                ),
                (
                    "max_score".to_string(),
                    JsonValue::Str(fmt_f64(row.max_score)),
                ),
                (
                    "worst_context".to_string(),
                    match &row.worst_context {
                        Some(context) => JsonValue::Str(context.clone()),
                        None => JsonValue::Null,
                    },
                ),
                (
                    "kernel_mismatches".to_string(),
                    JsonValue::UInt(row.kernel_mismatches as u64),
                ),
                ("flagged".to_string(), JsonValue::Bool(row.flagged)),
            ])
        })
        .collect();
    let mut fields = vec![
        (
            "schema".to_string(),
            JsonValue::Str(HTML_SCHEMA_NAME.to_string()),
        ),
        ("version".to_string(), JsonValue::UInt(HTML_SCHEMA_VERSION)),
        (
            "trace".to_string(),
            JsonValue::Str(model.trace_name.clone()),
        ),
        (
            "method".to_string(),
            JsonValue::Str(model.method_label.clone()),
        ),
        (
            "ranks".to_string(),
            JsonValue::UInt(model.rank_count as u64),
        ),
        (
            "stored".to_string(),
            JsonValue::UInt(model.total_stored as u64),
        ),
        (
            "execs".to_string(),
            JsonValue::UInt(model.total_execs as u64),
        ),
        (
            "degree_of_matching".to_string(),
            JsonValue::Str(fmt_f64(model.degree_of_matching)),
        ),
        ("per_rank".to_string(), JsonValue::Arr(ranks)),
        (
            "divergence".to_string(),
            JsonValue::Obj(vec![
                (
                    "threshold".to_string(),
                    JsonValue::Str(fmt_f64(model.divergence.threshold)),
                ),
                (
                    "shared_keys".to_string(),
                    JsonValue::UInt(model.divergence.shared_keys as u64),
                ),
                ("per_rank".to_string(), JsonValue::Arr(divergence_rows)),
            ]),
        ),
    ];
    if let Some(compression) = &model.compression {
        fields.push((
            "compression".to_string(),
            JsonValue::Obj(vec![
                (
                    "file_size_percent".to_string(),
                    JsonValue::Str(fmt_f64(compression.file_size_percent)),
                ),
                (
                    "full_events".to_string(),
                    JsonValue::UInt(compression.full_events as u64),
                ),
                (
                    "full_ranks".to_string(),
                    JsonValue::UInt(compression.full_ranks as u64),
                ),
            ]),
        ));
    }
    if let Some(pipeline) = &model.pipeline {
        fields.push((
            "pipeline".to_string(),
            JsonValue::Obj(vec![
                (
                    "counters".to_string(),
                    JsonValue::Obj(
                        pipeline
                            .counters
                            .iter()
                            .map(|(name, value)| (name.clone(), JsonValue::UInt(*value)))
                            .collect(),
                    ),
                ),
                (
                    "stages".to_string(),
                    JsonValue::Arr(
                        pipeline
                            .stages
                            .iter()
                            .map(|stage| {
                                JsonValue::Obj(vec![
                                    ("stage".to_string(), JsonValue::Str(stage.stage.to_string())),
                                    ("spans".to_string(), JsonValue::UInt(stage.spans)),
                                    ("total_ns".to_string(), JsonValue::UInt(stage.total_ns)),
                                    ("max_ns".to_string(), JsonValue::UInt(stage.max_ns)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    JsonValue::Obj(fields).render().replace('<', "\\u003c")
}

/// HTML-escapes `s` into `out`.
fn escape_html_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// HTML-escapes `s` into a fresh string.
fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_html_into(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_markup_characters() {
        assert_eq!(escape_html("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
