//! Analysis reports over *reduced* traces.
//!
//! Reduction is only useful if someone can look at the result.  This
//! crate turns a [`trace_model::ReducedAppTrace`] — plus, optionally, the
//! original full trace and the [`trace_obs::RunReport`] of the reduce
//! that produced it — into one analysis model ([`ReportModel`]) and
//! renders that model through three sinks that cannot disagree:
//!
//! * **Text** ([`render_text`]): `trace_eval` tables plus the severity
//!   ASCII chart, for terminals and logs.
//! * **HTML** ([`render_html`]): a single self-contained static file with
//!   no external assets, deterministic byte-for-byte, with a
//!   machine-readable JSON island serialised by the canonical writer in
//!   [`trace_obs::json`].
//! * **chrome://tracing** ([`render_chrome_trace`]): the reduced timeline
//!   itself — one complete event per segment execution — through the same
//!   shared [`trace_obs::chrome`] writer the pipeline-span export uses.
//!
//! The model side computes per-rank divergence (which ranks' stored
//! representatives drift from their peers, scored against an element-wise
//! median baseline and cross-checked with the paper's own similarity
//! kernels — see [`divergence`]), a region/callpath trie of where the
//! reduced timeline spends time ([`trie`]), and match-quality /
//! compression / pipeline summaries ([`model`]).
//!
//! Everything here is deterministic: ordered collections only, no clocks,
//! no randomness, total float ordering.  The crate sits on the xtask
//! determinism and decode-surface lint lists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod html;
pub mod model;
pub mod text;
pub mod timeline;
pub mod trie;

pub use divergence::{DivergenceReport, RankDivergence};
pub use html::render_html;
pub use model::{
    build_model, CompressionSummary, PipelineSummary, RankSummary, ReportModel, ReportOptions,
    StageSummary, WaitState,
};
pub use text::render_text;
pub use timeline::{reduced_timeline, render_chrome_trace};
pub use trie::{RegionStat, RegionTrie, TrieNode};
