//! Zero-padding helpers.
//!
//! Both wavelet transforms require an input whose length is a power of two.
//! The paper allocates a vector whose length is the next power of two after
//! the number of time stamps and zero-pads the tail; these helpers do the
//! same.

/// The smallest power of two that is `>= n` (and at least 1).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns `values` zero-padded at the end to the next power-of-two length.
pub fn pad_to_power_of_two(values: &[f64]) -> Vec<f64> {
    let target = next_power_of_two(values.len());
    let mut out = Vec::with_capacity(target);
    out.extend_from_slice(values);
    out.resize(target, 0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(2), 2);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(6), 8);
        assert_eq!(next_power_of_two(8), 8);
        assert_eq!(next_power_of_two(9), 16);
    }

    #[test]
    fn padding_preserves_prefix_and_zero_fills() {
        let padded = pad_to_power_of_two(&[1.0, 2.0, 3.0]);
        assert_eq!(padded, vec![1.0, 2.0, 3.0, 0.0]);
        let already = pad_to_power_of_two(&[1.0, 2.0]);
        assert_eq!(already, vec![1.0, 2.0]);
        assert_eq!(pad_to_power_of_two(&[]), vec![0.0]);
    }

    #[test]
    fn padded_length_is_a_power_of_two() {
        for n in 0..40 {
            let v = vec![1.0; n];
            let padded = pad_to_power_of_two(&v);
            assert!(padded.len().is_power_of_two());
            assert!(padded.len() >= n);
        }
    }
}
