//! The Cohen–Daubechies–Feauveau 9/7 wavelet transform.
//!
//! Gamblin et al. compress load-balance traces with the CDF 9/7 wavelet (the
//! transform used by JPEG 2000) instead of the Haar wavelet, because its
//! longer filters capture smooth trends in per-rank load with fewer
//! significant coefficients.  The paper under reproduction lists that work as
//! related work and names "additional difference methods" as future work;
//! this module provides the transform so the extended similarity methods can
//! use it as an alternative to `avgWave`/`haarWave`.
//!
//! The implementation uses the standard lifting factorization (Daubechies &
//! Sweldens) with symmetric boundary extension:
//!
//! 1. predict 1 (α), 2. update 1 (β), 3. predict 2 (γ), 4. update 2 (δ),
//! 5. scaling (ζ).
//!
//! The multi-level decomposition recurses on the approximation coefficients
//! and lays the output out exactly like the average/Haar transforms of this
//! crate: `[overall approximation | coarsest details | … | finest details]`.

use crate::pad::pad_to_power_of_two;

/// Lifting coefficients of the CDF 9/7 factorization.
const ALPHA: f64 = -1.586_134_342_059_924;
const BETA: f64 = -0.052_980_118_572_961;
const GAMMA: f64 = 0.882_911_075_530_934;
const DELTA: f64 = 0.443_506_852_043_971;
/// Scaling factor ζ applied to the approximation band (details get 1/ζ).
const ZETA: f64 = 1.149_604_398_860_241;

/// Mirrors an out-of-range index back into `0..len` (symmetric extension).
#[inline]
fn mirror(index: isize, len: usize) -> usize {
    debug_assert!(len > 0);
    let len = len as isize;
    let mut i = index;
    if i < 0 {
        i = -i;
    }
    if i >= len {
        i = 2 * (len - 1) - i;
    }
    i.clamp(0, len - 1) as usize
}

/// One lifting pass over the odd (when `odd` is true) or even samples.
fn lift(values: &mut [f64], coefficient: f64, odd: bool) {
    let len = values.len();
    let start = if odd { 1 } else { 0 };
    let snapshot: Vec<f64> = values.to_vec();
    let mut i = start;
    while i < len {
        let left = snapshot[mirror(i as isize - 1, len)];
        let right = snapshot[mirror(i as isize + 1, len)];
        values[i] += coefficient * (left + right);
        i += 2;
    }
}

/// One forward CDF 9/7 level over an even-length slice, returning
/// `(approximation, detail)` bands of half the length each.
fn forward_level(values: &[f64]) -> (Vec<f64>, Vec<f64>) {
    debug_assert!(values.len().is_multiple_of(2) && !values.is_empty());
    let mut work = values.to_vec();
    lift(&mut work, ALPHA, true);
    lift(&mut work, BETA, false);
    lift(&mut work, GAMMA, true);
    lift(&mut work, DELTA, false);
    let half = work.len() / 2;
    let mut approx = Vec::with_capacity(half);
    let mut detail = Vec::with_capacity(half);
    for (i, v) in work.iter().enumerate() {
        if i % 2 == 0 {
            approx.push(v * ZETA);
        } else {
            detail.push(v / ZETA);
        }
    }
    (approx, detail)
}

/// Inverts one CDF 9/7 level.
fn inverse_level(approx: &[f64], detail: &[f64]) -> Vec<f64> {
    debug_assert_eq!(approx.len(), detail.len());
    let len = approx.len() * 2;
    let mut work = vec![0.0; len];
    for i in 0..approx.len() {
        work[2 * i] = approx[i] / ZETA;
        work[2 * i + 1] = detail[i] * ZETA;
    }
    lift(&mut work, -DELTA, false);
    lift(&mut work, -GAMMA, true);
    lift(&mut work, -BETA, false);
    lift(&mut work, -ALPHA, true);
    work
}

/// Multi-level forward CDF 9/7 transform.
///
/// The input is zero-padded to the next power of two; the output has the
/// same layout as [`crate::average_transform`]: overall approximation first,
/// then detail bands from coarsest to finest.
pub fn cdf97_transform(values: &[f64]) -> Vec<f64> {
    let padded = pad_to_power_of_two(values);
    let n = padded.len();
    if n == 1 {
        return padded;
    }
    let mut levels: Vec<Vec<f64>> = Vec::new();
    let mut current = padded;
    while current.len() > 1 {
        let (approx, detail) = forward_level(&current);
        levels.push(detail);
        current = approx;
    }
    let mut out = Vec::with_capacity(n);
    out.push(current[0]);
    for detail in levels.into_iter().rev() {
        out.extend(detail);
    }
    out
}

/// Inverse of [`cdf97_transform`] (up to the zero padding).
///
/// # Panics
///
/// Panics if `coefficients.len()` is not a power of two, which cannot happen
/// for vectors produced by [`cdf97_transform`].
pub fn inverse_cdf97_transform(coefficients: &[f64]) -> Vec<f64> {
    assert!(
        coefficients.len().is_power_of_two(),
        "coefficient vectors have power-of-two lengths"
    );
    let mut approx = vec![coefficients[0]];
    let mut offset = 1;
    while offset < coefficients.len() {
        let detail = &coefficients[offset..offset + approx.len()];
        approx = inverse_level(&approx, detail);
        offset += detail.len();
    }
    approx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn mirror_reflects_at_both_ends() {
        assert_eq!(mirror(-1, 4), 1);
        assert_eq!(mirror(0, 4), 0);
        assert_eq!(mirror(3, 4), 3);
        assert_eq!(mirror(4, 4), 2);
        assert_eq!(mirror(-1, 1), 0);
        assert_eq!(mirror(1, 1), 0);
    }

    #[test]
    fn single_level_round_trips() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let (approx, detail) = forward_level(&v);
        assert_eq!(approx.len(), 4);
        assert_eq!(detail.len(), 4);
        assert_close(&inverse_level(&approx, &detail), &v, 1e-9);
    }

    #[test]
    fn multi_level_round_trips_power_of_two_inputs() {
        let v = [0.0, 1.0, 17.0, 18.0, 48.0, 49.0, 50.0, 51.0];
        assert_close(&inverse_cdf97_transform(&cdf97_transform(&v)), &v, 1e-9);
        let short = [2.0, 8.0];
        assert_close(
            &inverse_cdf97_transform(&cdf97_transform(&short)),
            &short,
            1e-9,
        );
    }

    #[test]
    fn constant_signal_concentrates_in_the_approximation() {
        let t = cdf97_transform(&[5.0; 8]);
        // All energy should sit in the first coefficient; the detail bands of
        // a constant signal are (numerically) zero because the predict steps
        // subtract the exact neighbour average.
        for &d in &t[1..] {
            assert!(
                d.abs() < 1e-9,
                "detail {d} should be ~0 for a constant signal"
            );
        }
        assert!(t[0].abs() > 1.0);
    }

    #[test]
    fn smooth_ramp_has_smaller_details_than_haar() {
        // The 9/7 filters annihilate linear trends, which the Haar transform
        // does not; this is exactly why Gamblin et al. prefer it for smooth
        // load curves.
        let ramp: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let cdf = cdf97_transform(&ramp);
        let haar = crate::haar_transform(&ramp);
        let finest_cdf: f64 = cdf[8..].iter().map(|v| v.abs()).sum();
        let finest_haar: f64 = haar[8..].iter().map(|v| v.abs()).sum();
        assert!(
            finest_cdf < finest_haar,
            "CDF 9/7 finest details {finest_cdf} should be smaller than Haar {finest_haar}"
        );
    }

    #[test]
    fn pads_short_and_empty_inputs() {
        assert_eq!(cdf97_transform(&[1.0, 2.0, 3.0]).len(), 4);
        assert_eq!(cdf97_transform(&[7.0]).len(), 1);
        assert_eq!(cdf97_transform(&[]).len(), 1);
    }

    #[test]
    fn transform_is_linear() {
        let a = [1.0, 4.0, 2.0, 8.0];
        let b = [3.0, 0.0, 5.0, 1.0];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ta = cdf97_transform(&a);
        let tb = cdf97_transform(&b);
        let tsum = cdf97_transform(&sum);
        let combined: Vec<f64> = ta.iter().zip(&tb).map(|(x, y)| x + y).collect();
        assert_close(&tsum, &combined, 1e-9);
    }
}
