//! Wavelet-based signal compression (Gamblin et al., SC'08).
//!
//! Gamblin et al. compress per-rank load signals by wavelet-transforming them
//! and keeping only the largest coefficients; the reconstruction error is
//! reported as a root-mean-square measure.  The paper under reproduction
//! cites that work as a signal-processing alternative to pattern-based
//! reduction, and its evaluation borrows the RMS-error idea.  This module
//! provides the keep-top-k compression and the error measures so the
//! extension experiments can compare against it.

use crate::transform::WaveletKind;
use crate::{cdf97, transform};

/// A wavelet-compressed signal: the retained coefficients (index, value)
/// plus enough metadata to reconstruct an approximation.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedSignal {
    /// Which transform produced the coefficients.
    pub kind: WaveletKind,
    /// Length of the padded coefficient vector (a power of two).
    pub padded_len: usize,
    /// Length of the original, unpadded signal.
    pub original_len: usize,
    /// Retained `(index, coefficient)` pairs, sorted by index.
    pub coefficients: Vec<(u32, f64)>,
}

impl CompressedSignal {
    /// Number of retained coefficients.
    pub fn retained(&self) -> usize {
        self.coefficients.len()
    }

    /// Compression ratio: original length over retained coefficient count
    /// (`inf` when nothing was retained).
    pub fn compression_ratio(&self) -> f64 {
        if self.coefficients.is_empty() {
            f64::INFINITY
        } else {
            self.original_len as f64 / self.coefficients.len() as f64
        }
    }

    /// Reconstructs an approximation of the original signal (truncated back
    /// to the original length).
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut coefficients = vec![0.0; self.padded_len];
        for &(index, value) in &self.coefficients {
            if (index as usize) < self.padded_len {
                coefficients[index as usize] = value;
            }
        }
        let mut signal = match self.kind {
            WaveletKind::Average => transform::inverse_average_transform(&coefficients),
            WaveletKind::Haar => transform::inverse_haar_transform(&coefficients),
            WaveletKind::Cdf97 => cdf97::inverse_cdf97_transform(&coefficients),
        };
        signal.truncate(self.original_len);
        signal
    }
}

/// Compresses `signal` by keeping the `keep` coefficients with the largest
/// magnitude of its wavelet transform.
///
/// The overall approximation coefficient (index 0) is always kept when
/// `keep > 0`, because dropping it shifts the whole reconstruction.
pub fn compress_top_k(signal: &[f64], kind: WaveletKind, keep: usize) -> CompressedSignal {
    let transformed = kind.transform(signal);
    let padded_len = transformed.len();
    let mut indexed: Vec<(u32, f64)> = transformed
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();

    let mut coefficients: Vec<(u32, f64)> = Vec::new();
    if keep > 0 && !indexed.is_empty() {
        // Always retain the overall approximation.
        coefficients.push(indexed[0]);
        indexed.remove(0);
        indexed.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        coefficients.extend(indexed.into_iter().take(keep.saturating_sub(1)));
        coefficients.sort_by_key(|&(i, _)| i);
        // Drop retained zeros — they carry no information.
        // lint:allow(float_eq) -- exact-zero coefficients are the ones that encode nothing
        coefficients.retain(|&(i, v)| i == 0 || v != 0.0);
    }

    CompressedSignal {
        kind,
        padded_len,
        original_len: signal.len(),
        coefficients,
    }
}

/// Root-mean-square error between a signal and its approximation (compared
/// over the shorter length; missing samples count as zero in the longer one).
pub fn rms_error(original: &[f64], approximation: &[f64]) -> f64 {
    let n = original.len().max(approximation.len());
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = (0..n)
        .map(|i| {
            let a = original.get(i).copied().unwrap_or(0.0);
            let b = approximation.get(i).copied().unwrap_or(0.0);
            (a - b) * (a - b)
        })
        .sum();
    (sum / n as f64).sqrt()
}

/// RMS error normalized by the RMS magnitude of the original signal
/// (0 = perfect, 1 ≈ as wrong as predicting zero everywhere).
pub fn normalized_rms_error(original: &[f64], approximation: &[f64]) -> f64 {
    let magnitude = rms_error(original, &vec![0.0; original.len()]);
    // lint:allow(float_eq) -- exact zero guard against dividing by zero
    if magnitude == 0.0 {
        rms_error(original, approximation)
    } else {
        rms_error(original, approximation) / magnitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn keeping_all_coefficients_is_lossless() {
        let signal = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for kind in [WaveletKind::Average, WaveletKind::Haar, WaveletKind::Cdf97] {
            let compressed = compress_top_k(&signal, kind, signal.len());
            let rebuilt = compressed.reconstruct();
            assert!(
                rms_error(&signal, &rebuilt) < 1e-9,
                "{kind:?}: {rebuilt:?} != {signal:?}"
            );
        }
    }

    #[test]
    fn error_decreases_as_more_coefficients_are_kept() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.3).sin() * 100.0 + i as f64)
            .collect();
        for kind in [WaveletKind::Haar, WaveletKind::Cdf97] {
            let mut previous = f64::INFINITY;
            for keep in [2usize, 8, 16, 64] {
                let compressed = compress_top_k(&signal, kind, keep);
                let err = rms_error(&signal, &compressed.reconstruct());
                assert!(
                    err <= previous + 1e-9,
                    "{kind:?}: error {err} at keep={keep} exceeds {previous}"
                );
                previous = err;
            }
        }
    }

    #[test]
    fn cdf97_compresses_smooth_signals_better_than_haar() {
        // The motivating property from Gamblin et al.: for smooth load
        // curves, the 9/7 filters concentrate energy in fewer coefficients.
        let signal = ramp(64);
        let keep = 8;
        let haar = compress_top_k(&signal, WaveletKind::Haar, keep);
        let cdf = compress_top_k(&signal, WaveletKind::Cdf97, keep);
        let haar_err = rms_error(&signal, &haar.reconstruct());
        let cdf_err = rms_error(&signal, &cdf.reconstruct());
        assert!(
            cdf_err <= haar_err,
            "CDF 9/7 error {cdf_err} should not exceed Haar error {haar_err} on a smooth ramp"
        );
    }

    #[test]
    fn compression_ratio_and_retained_counts() {
        let signal = ramp(32);
        let compressed = compress_top_k(&signal, WaveletKind::Haar, 4);
        assert!(compressed.retained() <= 4);
        assert!(compressed.compression_ratio() >= 8.0);
        let empty = compress_top_k(&signal, WaveletKind::Haar, 0);
        assert_eq!(empty.retained(), 0);
        assert!(empty.compression_ratio().is_infinite());
        assert_eq!(empty.reconstruct().len(), 32);
    }

    #[test]
    fn constant_signals_compress_to_one_coefficient() {
        let signal = vec![42.0; 16];
        // The average and Haar transforms produce exactly-zero details for a
        // constant signal, so only the overall approximation survives.
        for kind in [WaveletKind::Average, WaveletKind::Haar] {
            let compressed = compress_top_k(&signal, kind, 3);
            assert_eq!(compressed.retained(), 1, "{kind:?}");
            let rebuilt = compressed.reconstruct();
            assert!(rms_error(&signal, &rebuilt) < 1e-9, "{kind:?}");
        }
        // The lifting arithmetic of CDF 9/7 leaves rounding-noise details, so
        // only near-losslessness (not an exact coefficient count) is checked.
        let compressed = compress_top_k(&signal, WaveletKind::Cdf97, 3);
        assert!(compressed.retained() <= 3);
        assert!(rms_error(&signal, &compressed.reconstruct()) < 1e-6);
    }

    #[test]
    fn rms_error_edge_cases() {
        assert_eq!(rms_error(&[], &[]), 0.0);
        assert_eq!(rms_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rms_error(&[3.0], &[]) - 3.0).abs() < 1e-12);
        assert!((normalized_rms_error(&[2.0, 2.0], &[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(normalized_rms_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn non_power_of_two_signals_round_trip_their_prefix() {
        let signal = ramp(11);
        let compressed = compress_top_k(&signal, WaveletKind::Cdf97, 16);
        let rebuilt = compressed.reconstruct();
        assert_eq!(rebuilt.len(), 11);
        assert!(rms_error(&signal, &rebuilt) < 1e-9);
    }
}
