//! The average and Haar discrete wavelet transforms.
//!
//! Both transforms repeatedly decompose a signal of length `L` (a power of
//! two) into `L/2` *trends* and `L/2* *fluctuations* computed from pairs of
//! adjacent values, and then recurse on the trends until a single overall
//! trend remains.  The output layout is
//!
//! ```text
//! [ overall trend | level-k fluctuations | ... | level-1 fluctuations ]
//! ```
//!
//! * Average transform: `trend = (a + b) / 2`, `fluctuation = (a - b) / 2`.
//! * Haar transform: the same values multiplied by `√2`
//!   (`trend = (a + b) / √2`, `fluctuation = (a - b) / √2`), which makes the
//!   transform orthonormal and therefore preserves Euclidean distances.

/// Which wavelet transform to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaveletKind {
    /// The plain averaging transform (`avgWave` in the paper).
    Average,
    /// The Haar transform (`haarWave` in the paper).
    Haar,
    /// The CDF 9/7 transform (extension; see [`crate::cdf97`]).
    Cdf97,
}

impl WaveletKind {
    /// Applies this transform to `values` (padding to a power of two first).
    pub fn transform(self, values: &[f64]) -> Vec<f64> {
        match self {
            WaveletKind::Average => average_transform(values),
            WaveletKind::Haar => haar_transform(values),
            WaveletKind::Cdf97 => crate::cdf97::cdf97_transform(values),
        }
    }

    /// Applies this transform writing the coefficients into `out` (cleared
    /// first), using `tmp` as level scratch.  Produces bit-identical output
    /// to [`WaveletKind::transform`] — every coefficient is computed with
    /// the exact same floating-point expression — but performs no
    /// allocations once the two buffers have grown to the padded length,
    /// which is what the similarity fast path relies on when it transforms
    /// one incoming segment per stored-segment *scan* instead of two per
    /// stored-segment *comparison*.
    pub fn transform_into(self, values: &[f64], out: &mut Vec<f64>, tmp: &mut Vec<f64>) {
        match self {
            WaveletKind::Average => transform_in_place(values, 0.5, out, tmp),
            WaveletKind::Haar => {
                transform_in_place(values, std::f64::consts::FRAC_1_SQRT_2, out, tmp)
            }
            WaveletKind::Cdf97 => {
                // The lifting-scheme transform keeps its own working set;
                // it is only reachable from the extended catalogue, not the
                // paper fast path.
                out.clear();
                out.extend(crate::cdf97::cdf97_transform(values));
            }
        }
    }

    /// Human-readable name matching the paper (and, for the extension
    /// transforms, the naming convention of the extended method catalogue).
    pub fn name(self) -> &'static str {
        match self {
            WaveletKind::Average => "avgWave",
            WaveletKind::Haar => "haarWave",
            WaveletKind::Cdf97 => "cdf97Wave",
        }
    }
}

/// One decomposition level: splits `values` (even length) into
/// `(trends, fluctuations)` scaled by `scale`.
fn decompose_level(values: &[f64], scale: f64) -> (Vec<f64>, Vec<f64>) {
    debug_assert!(values.len().is_multiple_of(2));
    let half = values.len() / 2;
    let mut trends = Vec::with_capacity(half);
    let mut fluctuations = Vec::with_capacity(half);
    for pair in values.chunks_exact(2) {
        trends.push((pair[0] + pair[1]) * scale);
        fluctuations.push((pair[0] - pair[1]) * scale);
    }
    (trends, fluctuations)
}

/// Full multi-level decomposition with the given per-level pair scale.
fn full_transform(values: &[f64], scale: f64) -> Vec<f64> {
    let padded = crate::pad::pad_to_power_of_two(values);
    let n = padded.len();
    if n == 1 {
        return padded;
    }
    // Collect fluctuations from the finest level to the coarsest, then put
    // the final trend first followed by coarsest..finest fluctuations.
    let mut levels: Vec<Vec<f64>> = Vec::new();
    let mut current = padded;
    while current.len() > 1 {
        let (trends, fluctuations) = decompose_level(&current, scale);
        levels.push(fluctuations);
        current = trends;
    }
    let mut out = Vec::with_capacity(n);
    out.push(current[0]);
    for fluctuations in levels.into_iter().rev() {
        out.extend(fluctuations);
    }
    out
}

/// Allocation-free multi-level decomposition into caller-provided buffers.
///
/// `out` ends up holding the padded signal length; each level reads the
/// current trends from `out[..len]`, writes `(a + b) * scale` trends and
/// `(a - b) * scale` fluctuations into `tmp`, and copies them back — so the
/// final layout `[trend | coarsest .. finest fluctuations]` and every
/// coefficient value match [`full_transform`] exactly.
fn transform_in_place(values: &[f64], scale: f64, out: &mut Vec<f64>, tmp: &mut Vec<f64>) {
    let n = crate::pad::next_power_of_two(values.len());
    out.clear();
    out.extend_from_slice(values);
    out.resize(n, 0.0);
    tmp.clear();
    tmp.resize(n, 0.0);
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = out[2 * i];
            let b = out[2 * i + 1];
            tmp[i] = (a + b) * scale;
            tmp[half + i] = (a - b) * scale;
        }
        out[..len].copy_from_slice(&tmp[..len]);
        len = half;
    }
}

/// The average wavelet transform (`avgWave`): pairwise averages and halved
/// differences, applied recursively.  The input is zero-padded to the next
/// power of two.
pub fn average_transform(values: &[f64]) -> Vec<f64> {
    full_transform(values, 0.5)
}

/// The Haar wavelet transform (`haarWave`): the average transform with every
/// level multiplied by `√2`, making it orthonormal.  The input is
/// zero-padded to the next power of two.
pub fn haar_transform(values: &[f64]) -> Vec<f64> {
    full_transform(values, std::f64::consts::FRAC_1_SQRT_2)
}

/// Inverts one reconstruction level.
fn reconstruct_level(trends: &[f64], fluctuations: &[f64], scale: f64) -> Vec<f64> {
    debug_assert_eq!(trends.len(), fluctuations.len());
    let mut out = Vec::with_capacity(trends.len() * 2);
    // decompose: t = (a+b)*s, f = (a-b)*s  =>  a = (t+f)/(2s), b = (t-f)/(2s)
    let inv = 1.0 / (2.0 * scale);
    for (t, f) in trends.iter().zip(fluctuations) {
        out.push((t + f) * inv);
        out.push((t - f) * inv);
    }
    out
}

fn full_inverse(coefficients: &[f64], scale: f64) -> Vec<f64> {
    assert!(
        coefficients.len().is_power_of_two(),
        "coefficient vectors have power-of-two lengths"
    );
    let mut trends = vec![coefficients[0]];
    let mut offset = 1;
    while offset < coefficients.len() {
        let fluctuations = &coefficients[offset..offset + trends.len()];
        trends = reconstruct_level(&trends, fluctuations, scale);
        offset += fluctuations.len();
    }
    trends
}

/// Inverse of [`average_transform`] (up to the zero padding).
pub fn inverse_average_transform(coefficients: &[f64]) -> Vec<f64> {
    full_inverse(coefficients, 0.5)
}

/// Inverse of [`haar_transform`] (up to the zero padding).
pub fn inverse_haar_transform(coefficients: &[f64]) -> Vec<f64> {
    full_inverse(coefficients, std::f64::consts::FRAC_1_SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coefficient_distance;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn single_level_average_example() {
        // [4, 6, 10, 12] -> trends [5, 11], fluctuations [-1, -1]
        //                -> overall trend 8, coarse fluctuation -3.
        let t = average_transform(&[4.0, 6.0, 10.0, 12.0]);
        assert_close(&t, &[8.0, -3.0, -1.0, -1.0], 1e-12);
    }

    #[test]
    fn haar_is_average_scaled_by_sqrt_two_per_level() {
        let avg = average_transform(&[4.0, 6.0, 10.0, 12.0]);
        let haar = haar_transform(&[4.0, 6.0, 10.0, 12.0]);
        // Two levels deep: overall trend and coarse fluctuation picked up
        // (√2)², the finest fluctuations picked up √2.
        assert!((haar[0] - avg[0] * 2.0).abs() < 1e-12);
        assert!((haar[1] - avg[1] * 2.0).abs() < 1e-12);
        assert!((haar[2] - avg[2] * std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((haar[3] - avg[3] * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn haar_preserves_euclidean_distance() {
        let a = [0.0, 1.0, 17.0, 18.0, 48.0, 49.0];
        let b = [0.0, 1.0, 40.0, 41.0, 50.0, 51.0];
        let direct = coefficient_distance(
            &crate::pad::pad_to_power_of_two(&a),
            &crate::pad::pad_to_power_of_two(&b),
        );
        let transformed = coefficient_distance(&haar_transform(&a), &haar_transform(&b));
        assert!(
            (direct - transformed).abs() < 1e-9,
            "Haar must preserve distances: {direct} vs {transformed}"
        );
    }

    #[test]
    fn average_coefficients_are_smaller_than_haar() {
        let v = [0.0, 1.0, 17.0, 18.0, 48.0, 49.0];
        let avg_max = crate::max_abs_coefficient(&average_transform(&v), &[]);
        let haar_max = crate::max_abs_coefficient(&haar_transform(&v), &[]);
        assert!(avg_max < haar_max);
    }

    #[test]
    fn constant_signal_has_zero_fluctuations() {
        let t = average_transform(&[7.0; 8]);
        assert!((t[0] - 7.0).abs() < 1e-12);
        for &f in &t[1..] {
            assert!(f.abs() < 1e-12);
        }
    }

    #[test]
    fn transforms_pad_to_power_of_two_lengths() {
        assert_eq!(average_transform(&[1.0, 2.0, 3.0]).len(), 4);
        assert_eq!(haar_transform(&[1.0; 6]).len(), 8);
        assert_eq!(average_transform(&[5.0]).len(), 1);
        assert_eq!(average_transform(&[]).len(), 1);
    }

    #[test]
    fn inverse_round_trips_power_of_two_inputs() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        assert_close(&inverse_average_transform(&average_transform(&v)), &v, 1e-9);
        assert_close(&inverse_haar_transform(&haar_transform(&v)), &v, 1e-9);
    }

    #[test]
    fn transform_into_is_bit_identical_to_the_allocating_transform() {
        let signals: Vec<Vec<f64>> = vec![
            vec![],
            vec![5.0],
            vec![0.0, 1.0, 17.0, 18.0, 48.0, 49.0],
            vec![4.0, 6.0, 10.0, 12.0],
            (0..37).map(|i| (i as f64) * 1.75 - 11.0).collect(),
        ];
        let mut out = Vec::new();
        let mut tmp = Vec::new();
        for kind in [WaveletKind::Average, WaveletKind::Haar, WaveletKind::Cdf97] {
            for signal in &signals {
                kind.transform_into(signal, &mut out, &mut tmp);
                let reference = kind.transform(signal);
                assert_eq!(out.len(), reference.len(), "{kind:?} {signal:?}");
                for (a, b) in out.iter().zip(&reference) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} {signal:?}");
                }
            }
        }
    }

    #[test]
    fn kind_dispatch_matches_free_functions() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(WaveletKind::Average.transform(&v), average_transform(&v));
        assert_eq!(WaveletKind::Haar.transform(&v), haar_transform(&v));
        assert_eq!(WaveletKind::Average.name(), "avgWave");
        assert_eq!(WaveletKind::Haar.name(), "haarWave");
    }
}
