#![forbid(unsafe_code)]
//! Discrete wavelet transforms used by the wavelet similarity metrics.
//!
//! The paper's `avgWave` and `haarWave` metrics transform the time-stamp
//! vector of each segment with a discrete wavelet transform and then compare
//! the transformed vectors with the Euclidean distance (Section 3.2.1,
//! *Wavelet transform*):
//!
//! * the **average transform** iteratively replaces pairs of values with
//!   their pairwise averages (trends) and differences (fluctuations), e.g.
//!   `[a, b] → trend (a+b)/2, fluctuation (a-b)/2`;
//! * the **Haar transform** does the same but multiplies both trends and
//!   fluctuations by `√2`, which preserves the Euclidean distance between
//!   input vectors.
//!
//! Input vectors are zero-padded to the next power of two, exactly as the
//! paper describes.

#![warn(missing_docs)]

pub mod cdf97;
pub mod compress;
pub mod pad;
pub mod transform;

pub use cdf97::{cdf97_transform, inverse_cdf97_transform};
pub use compress::{compress_top_k, normalized_rms_error, rms_error, CompressedSignal};
pub use pad::{next_power_of_two, pad_to_power_of_two};
pub use transform::{average_transform, haar_transform, WaveletKind};

/// Euclidean distance between two coefficient vectors.
///
/// The vectors may have different lengths (segments of different durations
/// pad to different powers of two); the shorter one is treated as
/// zero-extended, which mirrors comparing the zero-padded originals.
pub fn coefficient_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut sum = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        sum += (x - y) * (x - y);
    }
    sum.sqrt()
}

/// Largest absolute coefficient in either vector.  The wavelet metrics scale
/// their threshold by this value.
pub fn max_abs_coefficient(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .chain(b.iter())
        .map(|v| v.abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_handles_unequal_lengths() {
        let a = [3.0, 4.0];
        let b = [3.0];
        assert_eq!(coefficient_distance(&a, &b), 4.0);
        assert_eq!(coefficient_distance(&b, &a), 4.0);
    }

    #[test]
    fn distance_of_identical_vectors_is_zero() {
        let a = [1.0, -2.0, 5.5];
        assert_eq!(coefficient_distance(&a, &a), 0.0);
    }

    #[test]
    fn max_abs_considers_both_vectors_and_signs() {
        assert_eq!(max_abs_coefficient(&[1.0, -7.0], &[2.0]), 7.0);
        assert_eq!(max_abs_coefficient(&[], &[]), 0.0);
    }
}
