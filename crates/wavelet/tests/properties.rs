//! Property-based tests for the wavelet transforms.

use proptest::prelude::*;

use trace_wavelet::transform::{
    average_transform, haar_transform, inverse_average_transform, inverse_haar_transform,
};
use trace_wavelet::{
    cdf97_transform, coefficient_distance, inverse_cdf97_transform, max_abs_coefficient,
    pad_to_power_of_two,
};

fn signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, 1..64)
}

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transforms_produce_power_of_two_lengths(v in signal()) {
        prop_assert!(average_transform(&v).len().is_power_of_two());
        prop_assert!(haar_transform(&v).len().is_power_of_two());
        prop_assert!(average_transform(&v).len() >= v.len());
    }

    #[test]
    fn average_then_inverse_recovers_padded_signal(v in signal()) {
        let padded = pad_to_power_of_two(&v);
        let recovered = inverse_average_transform(&average_transform(&v));
        prop_assert!(close(&recovered, &padded, 1e-6 * (1.0 + max_abs_coefficient(&padded, &[]))));
    }

    #[test]
    fn haar_then_inverse_recovers_padded_signal(v in signal()) {
        let padded = pad_to_power_of_two(&v);
        let recovered = inverse_haar_transform(&haar_transform(&v));
        prop_assert!(close(&recovered, &padded, 1e-6 * (1.0 + max_abs_coefficient(&padded, &[]))));
    }

    #[test]
    fn haar_preserves_euclidean_distance(pair in (1usize..64).prop_flat_map(|len| (
        prop::collection::vec(-1.0e6..1.0e6f64, len),
        prop::collection::vec(-1.0e6..1.0e6f64, len),
    ))) {
        // Distance preservation holds for equal-length inputs, which is the
        // only case the similarity metric ever compares (segments must have
        // the same number of events to be eligible for a match).
        let (a, b) = pair;
        let direct = coefficient_distance(&pad_to_power_of_two(&a), &pad_to_power_of_two(&b));
        let transformed = coefficient_distance(&haar_transform(&a), &haar_transform(&b));
        let tol = 1e-6 * (1.0 + direct);
        prop_assert!((direct - transformed).abs() <= tol,
            "direct {direct} vs transformed {transformed}");
    }

    #[test]
    fn identical_signals_have_zero_distance(a in signal()) {
        prop_assert_eq!(coefficient_distance(&average_transform(&a), &average_transform(&a)), 0.0);
        prop_assert_eq!(coefficient_distance(&haar_transform(&a), &haar_transform(&a)), 0.0);
    }

    #[test]
    fn average_coefficients_never_exceed_haar(a in signal()) {
        let avg = max_abs_coefficient(&average_transform(&a), &[]);
        let haar = max_abs_coefficient(&haar_transform(&a), &[]);
        prop_assert!(avg <= haar + 1e-12);
    }

    #[test]
    fn cdf97_then_inverse_recovers_padded_signal(v in signal()) {
        let padded = pad_to_power_of_two(&v);
        let recovered = inverse_cdf97_transform(&cdf97_transform(&v));
        prop_assert!(close(&recovered, &padded, 1e-6 * (1.0 + max_abs_coefficient(&padded, &[]))));
    }

    #[test]
    fn cdf97_produces_power_of_two_lengths(v in signal()) {
        let t = cdf97_transform(&v);
        prop_assert!(t.len().is_power_of_two());
        prop_assert!(t.len() >= v.len());
    }

    #[test]
    fn transform_is_linear_in_the_signal(a in signal(), k in -4.0..4.0f64) {
        let scaled: Vec<f64> = a.iter().map(|v| v * k).collect();
        let t_scaled = average_transform(&scaled);
        let scaled_t: Vec<f64> = average_transform(&a).iter().map(|v| v * k).collect();
        let tol = 1e-6 * (1.0 + max_abs_coefficient(&scaled_t, &[]));
        prop_assert!(close(&t_scaled, &scaled_t, tol));
    }
}
