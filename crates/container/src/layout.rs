//! On-disk layout constants and chunk framing.
//!
//! The byte-level layout is specified in `docs/container-format.md` at the
//! repository root; this module is its executable counterpart.  A container
//! file is
//!
//! ```text
//! header  := magic "TRC2" | version u8 | kind u8
//! file    := header PREAMBLE section* INDEX trailer
//! chunk   := kind u8 | codec u8 | payload_len u32 LE | crc32 u32 LE | payload
//! section := RANK_BEGIN (RECORDS | STORED | EXECS)* RANK_END
//! trailer := index_offset u64 LE | "TRCX"
//! ```
//!
//! Every chunk payload is covered by an IEEE CRC-32 over the *stored*
//! bytes (after compression), so corruption is detected before any
//! decompression runs.  The codec byte names the `trace_compress` codec
//! the payload is stored under; decoded payloads use the varint record
//! codec from `trace_model::codec`, with the delta-time clock restarting
//! at zero in every chunk so chunks decode independently.

use std::io::{self, Read, Write};

use trace_compress::{decompress_observed, Codec, PayloadClass};

use crate::crc::crc32;
use crate::error::ContainerError;

/// Magic bytes opening a chunked container file (`.trc` v2).
pub const CONTAINER_MAGIC: [u8; 4] = *b"TRC2";
/// Magic bytes closing the 12-byte index trailer.
pub const INDEX_MAGIC: [u8; 4] = *b"TRCX";
/// Container layout version written by [`crate::ChunkWriter`].  Version 2
/// added the per-chunk codec byte; version-1 files (written before the
/// compression subsystem existed) are rejected with a typed
/// [`ContainerError::UnsupportedVersion`].
pub const CONTAINER_VERSION: u8 = 2;
/// Total size of the fixed file header (magic + version + kind).
pub const HEADER_LEN: u64 = 6;
/// Total size of the index trailer (offset + magic).
pub const TRAILER_LEN: u64 = 12;
/// Size of a chunk's framing header (kind + codec + payload length +
/// CRC-32).
pub const CHUNK_HEADER_LEN: u64 = 10;

/// What a container file carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// A full application trace (`RECORDS` chunks).
    App,
    /// A reduced trace (`STORED` and `EXECS` chunks).
    Reduced,
}

impl PayloadKind {
    /// The kind byte written to the file header.
    pub fn as_byte(self) -> u8 {
        match self {
            PayloadKind::App => 0,
            PayloadKind::Reduced => 1,
        }
    }

    /// Parses a header kind byte.
    pub fn from_byte(byte: u8) -> Result<Self, ContainerError> {
        match byte {
            0 => Ok(PayloadKind::App),
            1 => Ok(PayloadKind::Reduced),
            other => Err(ContainerError::BadPayloadKind(other)),
        }
    }
}

/// The kind byte opening every chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkKind {
    /// String tables, program name and declared rank count.
    Preamble,
    /// A rank section opens.
    RankBegin,
    /// Raw trace records (app payload).
    Records,
    /// Stored representative segments (reduced payload).
    Stored,
    /// Segment executions (reduced payload).
    Execs,
    /// A rank section closes, with its summary counts.
    RankEnd,
    /// The chunk index (also pointed to by the trailer).
    Index,
}

impl ChunkKind {
    /// The chunk-kind byte written to the framing header.
    pub fn as_byte(self) -> u8 {
        match self {
            ChunkKind::Preamble => 1,
            ChunkKind::RankBegin => 2,
            ChunkKind::Records => 3,
            ChunkKind::Stored => 4,
            ChunkKind::Execs => 5,
            ChunkKind::RankEnd => 6,
            ChunkKind::Index => 7,
        }
    }

    /// Parses a chunk-kind byte.
    pub fn from_byte(byte: u8) -> Result<Self, ContainerError> {
        Ok(match byte {
            1 => ChunkKind::Preamble,
            2 => ChunkKind::RankBegin,
            3 => ChunkKind::Records,
            4 => ChunkKind::Stored,
            5 => ChunkKind::Execs,
            6 => ChunkKind::RankEnd,
            7 => ChunkKind::Index,
            other => return Err(ContainerError::BadChunkKind(other)),
        })
    }

    /// Human-readable name used in [`ContainerError::UnexpectedChunk`].
    pub fn name(self) -> &'static str {
        match self {
            ChunkKind::Preamble => "PREAMBLE",
            ChunkKind::RankBegin => "RANK_BEGIN",
            ChunkKind::Records => "RECORDS",
            ChunkKind::Stored => "STORED",
            ChunkKind::Execs => "EXECS",
            ChunkKind::RankEnd => "RANK_END",
            ChunkKind::Index => "INDEX",
        }
    }

    /// The `trace_compress` payload class this chunk kind decompresses
    /// under: payload chunks carry trace structure the columnar transform
    /// understands, control chunks are opaque bytes.
    pub fn payload_class(self) -> PayloadClass {
        match self {
            ChunkKind::Records => PayloadClass::Records,
            ChunkKind::Stored => PayloadClass::Stored,
            ChunkKind::Execs => PayloadClass::Execs,
            ChunkKind::Preamble | ChunkKind::RankBegin | ChunkKind::RankEnd | ChunkKind::Index => {
                PayloadClass::Opaque
            }
        }
    }
}

/// Writes one framed chunk (header + CRC + payload) to `out`, returning the
/// number of bytes written.  `payload` is stored verbatim; `codec` must
/// name the codec those bytes are already encoded under (the writer's
/// compression step runs before framing).
pub fn write_chunk<W: Write>(
    out: &mut W,
    kind: ChunkKind,
    codec: Codec,
    payload: &[u8],
) -> io::Result<u64> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::other("chunk payload exceeds 4 GiB"))?;
    out.write_all(&[kind.as_byte(), codec.as_byte()])?;
    out.write_all(&len.to_le_bytes())?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    out.write_all(payload)?;
    Ok(CHUNK_HEADER_LEN + u64::from(len))
}

/// One framed chunk as read from the stream.
#[derive(Debug)]
pub struct RawChunk {
    /// The chunk kind.
    pub kind: ChunkKind,
    /// The codec the payload was stored under on disk (the `payload` field
    /// is already decompressed).
    pub codec: Codec,
    /// Byte offset of the chunk's framing header in the file.
    pub offset: u64,
    /// The verified, decompressed payload bytes.
    pub payload: Vec<u8>,
}

/// Sequentially reads framed chunks, verifying each payload's CRC-32 and
/// tracking byte offsets plus the largest payload buffered so far (the
/// reader's resident-memory high-water mark).
pub struct ChunkStream<R> {
    inner: R,
    offset: u64,
    peak_payload_bytes: usize,
    obs: trace_obs::ObsShard,
}

impl<R: Read> ChunkStream<R> {
    /// Wraps `inner`, which must be positioned at `offset` bytes into the
    /// container file.
    pub fn new(inner: R, offset: u64) -> Self {
        ChunkStream {
            inner,
            offset,
            peak_payload_bytes: 0,
            obs: trace_obs::ObsShard::disabled(),
        }
    }

    /// Attaches an observability shard: subsequent chunk reads record
    /// [`trace_obs::Stage::ChunkIo`]/[`trace_obs::Stage::Compress`] spans
    /// and `chunk.reads` counters.  The shard flushes to its recorder when
    /// the stream is dropped.
    pub fn set_obs(&mut self, obs: trace_obs::ObsShard) {
        self.obs = obs;
    }

    /// Current byte offset (start of the next chunk's framing header).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Largest chunk payload held in memory so far, in bytes.
    pub fn peak_payload_bytes(&self) -> usize {
        self.peak_payload_bytes
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), ContainerError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ContainerError::Truncated { what }
            } else {
                ContainerError::Io(e)
            }
        })?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Reads the next framing header, returning the chunk kind, the stored
    /// codec, the payload length and the declared CRC.  The payload is
    /// *not* consumed.
    fn read_frame(&mut self) -> Result<(ChunkKind, Codec, u64, u32), ContainerError> {
        let mut kind_codec = [0u8; 2];
        self.read_exact(&mut kind_codec, "chunk header")?;
        let [kind_byte, codec_byte] = kind_codec;
        let kind = ChunkKind::from_byte(kind_byte)?;
        let codec = Codec::from_byte(codec_byte)?;
        let mut len = [0u8; 4];
        self.read_exact(&mut len, "chunk header")?;
        let mut crc = [0u8; 4];
        self.read_exact(&mut crc, "chunk header")?;
        Ok((
            kind,
            codec,
            u64::from(u32::from_le_bytes(len)),
            u32::from_le_bytes(crc),
        ))
    }

    /// Reads, verifies and decompresses the next chunk in full.
    ///
    /// The payload buffer grows as bytes actually arrive, in bounded steps,
    /// so a corrupt length field costs a `Truncated` error — never a
    /// multi-gigabyte upfront allocation from untrusted input.  The CRC
    /// covers the stored bytes and is checked *before* decompression, so a
    /// flipped bit is a [`ContainerError::BadCrc`]; a crafted payload that
    /// passes the CRC but is not a valid codec stream is a typed
    /// [`ContainerError::Compress`].
    pub fn next_chunk(&mut self) -> Result<RawChunk, ContainerError> {
        const READ_STEP: u64 = 1 << 20;
        let offset = self.offset;
        let io_span = self.obs.start();
        let (kind, codec, len, expected) = self.read_frame()?;
        let mut payload = Vec::with_capacity(len.min(READ_STEP) as usize);
        while (payload.len() as u64) < len {
            let take = (len - payload.len() as u64).min(READ_STEP) as usize;
            let start = payload.len();
            payload.resize(start + take, 0);
            // lint:allow(indexing) -- start < payload.len() by the resize on the previous line
            self.read_exact(&mut payload[start..], "chunk payload")?;
        }
        let found = crc32(&payload);
        if found != expected {
            return Err(ContainerError::BadCrc {
                offset,
                expected,
                found,
            });
        }
        self.obs.end(trace_obs::Stage::ChunkIo, io_span);
        self.obs.add(trace_obs::names::CHUNK_READS, 1);
        self.peak_payload_bytes = self.peak_payload_bytes.max(payload.len());
        if codec != Codec::None {
            payload = decompress_observed(codec, kind.payload_class(), &payload, &mut self.obs)?;
            self.peak_payload_bytes = self.peak_payload_bytes.max(payload.len());
        }
        Ok(RawChunk {
            kind,
            codec,
            offset,
            payload,
        })
    }

    /// Reads the next chunk's framing header and discards its payload
    /// without CRC verification or decompression (used to pass over rank
    /// sections owned by other shards).  Returns the chunk kind.
    pub fn skip_chunk(&mut self) -> Result<ChunkKind, ContainerError> {
        let (kind, _, len, _) = self.read_frame()?;
        let mut remaining = len;
        let mut scratch = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(scratch.len() as u64) as usize;
            // lint:allow(indexing) -- take is clamped to scratch.len() on the previous line
            self.read_exact(&mut scratch[..take], "chunk payload")?;
            remaining -= take as u64;
        }
        Ok(kind)
    }

    /// Consumes and validates the 12-byte trailer that follows the INDEX
    /// chunk, checking that its offset field points at `index_offset`.
    pub fn finish_trailer(&mut self, index_offset: u64) -> Result<(), ContainerError> {
        let mut trailer = [0u8; TRAILER_LEN as usize];
        self.read_exact(&mut trailer, "index trailer")?;
        let (offset_bytes, magic) = trailer.split_at(8);
        if *magic != INDEX_MAGIC || *offset_bytes != index_offset.to_le_bytes() {
            return Err(ContainerError::BadTrailer);
        }
        // The trailer is the last 12 bytes of a container by definition;
        // anything after it means the trailer we just validated is not the
        // real one (spec invariant 5).
        let mut probe = [0u8; 1];
        match self.inner.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(ContainerError::BadTrailer),
            Err(e) => Err(ContainerError::Io(e)),
        }
    }
}

/// Reads and validates the 6-byte file header, returning the payload kind.
pub fn read_header<R: Read>(stream: &mut ChunkStream<R>) -> Result<PayloadKind, ContainerError> {
    let mut magic = [0u8; 4];
    stream.read_exact(&mut magic, "file header")?;
    if magic != CONTAINER_MAGIC {
        return Err(ContainerError::BadMagic { found: magic });
    }
    let mut rest = [0u8; 2];
    stream.read_exact(&mut rest, "file header")?;
    let [version, kind_byte] = rest;
    if version != CONTAINER_VERSION {
        return Err(ContainerError::UnsupportedVersion(version));
    }
    PayloadKind::from_byte(kind_byte)
}

/// Writes the 6-byte file header.
pub fn write_header<W: Write>(out: &mut W, kind: PayloadKind) -> io::Result<u64> {
    out.write_all(&CONTAINER_MAGIC)?;
    out.write_all(&[CONTAINER_VERSION, kind.as_byte()])?;
    Ok(HEADER_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_round_trip_and_offsets() {
        let mut file = Vec::new();
        let n = write_header(&mut file, PayloadKind::App).unwrap();
        assert_eq!(n, HEADER_LEN);
        let n = write_chunk(&mut file, ChunkKind::Records, Codec::None, b"payload").unwrap();
        assert_eq!(n, CHUNK_HEADER_LEN + 7);

        let mut stream = ChunkStream::new(&file[..], 0);
        assert_eq!(read_header(&mut stream).unwrap(), PayloadKind::App);
        let chunk = stream.next_chunk().unwrap();
        assert_eq!(chunk.kind, ChunkKind::Records);
        assert_eq!(chunk.codec, Codec::None);
        assert_eq!(chunk.offset, HEADER_LEN);
        assert_eq!(chunk.payload, b"payload");
        assert_eq!(stream.peak_payload_bytes(), 7);
    }

    #[test]
    fn compressed_control_chunk_round_trips_and_tracks_decoded_peak() {
        // Control chunks are opaque to the columnar transform, so LZ is the
        // only codec that changes their bytes.
        let payload = vec![42u8; 4096];
        let stored = trace_compress::lz_compress(&payload);
        assert!(stored.len() < payload.len());
        let mut file = Vec::new();
        write_header(&mut file, PayloadKind::App).unwrap();
        write_chunk(&mut file, ChunkKind::Preamble, Codec::Lz, &stored).unwrap();

        let mut stream = ChunkStream::new(&file[..], 0);
        read_header(&mut stream).unwrap();
        let chunk = stream.next_chunk().unwrap();
        assert_eq!(chunk.codec, Codec::Lz);
        assert_eq!(chunk.payload, payload);
        // The peak tracks the *decompressed* resident payload.
        assert_eq!(stream.peak_payload_bytes(), payload.len());
    }

    #[test]
    fn corrupt_payload_is_a_typed_crc_error() {
        let mut file = Vec::new();
        write_header(&mut file, PayloadKind::App).unwrap();
        write_chunk(&mut file, ChunkKind::Records, Codec::None, b"payload").unwrap();
        let last = file.len() - 1;
        file[last] ^= 0x40;

        let mut stream = ChunkStream::new(&file[..], 0);
        read_header(&mut stream).unwrap();
        match stream.next_chunk() {
            Err(ContainerError::BadCrc { offset, .. }) => assert_eq!(offset, HEADER_LEN),
            other => panic!("expected BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn unknown_codec_ids_are_typed_errors() {
        let mut file = Vec::new();
        write_header(&mut file, PayloadKind::App).unwrap();
        write_chunk(&mut file, ChunkKind::Records, Codec::None, b"payload").unwrap();
        // The codec byte is the second byte of the chunk framing.
        file[HEADER_LEN as usize + 1] = 9;
        let mut stream = ChunkStream::new(&file[..], 0);
        read_header(&mut stream).unwrap();
        match stream.next_chunk() {
            Err(ContainerError::Compress(trace_compress::CompressError::UnknownCodec(9))) => {}
            other => panic!("expected UnknownCodec, got {other:?}"),
        }
    }

    #[test]
    fn kind_bytes_round_trip() {
        for kind in [
            ChunkKind::Preamble,
            ChunkKind::RankBegin,
            ChunkKind::Records,
            ChunkKind::Stored,
            ChunkKind::Execs,
            ChunkKind::RankEnd,
            ChunkKind::Index,
        ] {
            assert_eq!(ChunkKind::from_byte(kind.as_byte()).unwrap(), kind);
        }
        assert!(ChunkKind::from_byte(0).is_err());
        assert!(ChunkKind::from_byte(99).is_err());
        assert!(PayloadKind::from_byte(7).is_err());
    }
}
